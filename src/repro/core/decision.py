"""The decision seam: context-carrying snoop policies.

Interface contract
==================

Every snooping algorithm is a *decision policy*: at each unsatisfied
read hop it maps a :class:`DecisionContext` - the supplier
prediction plus the requester-side urgency signals carried by the
transaction - to one of the three Table 2 primitives.  The historical
``choose(prediction: bool)`` contract is a special case (a context
whose only populated field is the prediction) and remains accepted at
every call site via :func:`as_context`.

The seam has two halves:

* :class:`DecisionContext` - a small frozen record built inline by the
  object core's :class:`~repro.sim.walker.RingWalker` at the decision
  site.  Fields beyond the prediction: the requester's retry count for
  the current access (squash/back-off cycles survived so far), the
  MSHR-waiter depth queued behind the requester on the same line, the
  message's ring age in request hops, and the access kind.
* :class:`DecisionTable` - the *static* form of a policy: a 2x2
  primitive table (calm/critical x negative/positive prediction) plus
  the integer thresholds that select the critical row.  A policy that
  publishes a table is a pure function of the context, so the fused
  cores (``core=soa`` / ``core=jit``) hoist the table and thresholds
  into plain integers at construction and never call back into Python
  on the per-hop path.  A policy whose decision depends on state
  outside the context (e.g. :class:`~repro.core.algorithms.SupersetHybrid`
  with an energy-pressure probe) publishes no table and is confined to
  the object core's dynamic path.

Counted outputs
===============

A table may declare one *counted output* (:attr:`DecisionTable.counts`):
the name of a decision subset the cores tally and report back through
:meth:`~repro.core.algorithms.SnoopingAlgorithm.fold_choice_counts`.
This is how ``SupersetHybrid.aggressive_choices`` and
``Criticality.critical_choices`` stay exact on the array cores without
any per-hop Python callback - the counter is part of the declared
policy, not a post-run reconstruction.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple, Union

from repro.core.primitives import Primitive

#: Threshold sentinel: a criticality condition that can never fire.
#: Large enough that no simulated retry count or waiter depth reaches
#: it, small enough to stay a fast native int in the compiled kernel.
NEVER = 1 << 30

#: Context field names, in the canonical ``decision_inputs`` order.
CONTEXT_FIELDS: Tuple[str, ...] = (
    "prediction",
    "retries",
    "waiters",
    "ring_age",
    "kind",
)

#: ``DecisionTable.counts`` values the cores know how to tally.
COUNTED_OUTPUTS: Tuple[str, ...] = ("pred_true", "critical")


class DecisionContext(NamedTuple):
    """One read-hop decision point, as seen by the policy.

    Attributes:
        prediction: the Supplier Predictor's answer at this node
            (``True`` for predictor-less algorithms).
        retries: how many times the requester's *current access* has
            been squashed and retried so far (0 on the first attempt).
        waiters: MSHR waiters queued behind the requester on the same
            line at this instant (same-CMP cores blocked on this
            transaction).
        ring_age: request hops the message has traveled from the
            requester to this node.
        is_write: access kind (``False``: the ordinary read decision
            site; ``True`` only for policies that opt into routing
            write snoops through ``choose``).
    """

    prediction: bool
    retries: int = 0
    waiters: int = 0
    ring_age: int = 0
    is_write: bool = False


def as_context(
    value: Union[DecisionContext, bool, int]
) -> DecisionContext:
    """Coerce a legacy ``choose(prediction)`` bool (or 0/1 int) into a
    :class:`DecisionContext`; contexts pass through unchanged."""
    if isinstance(value, DecisionContext):
        return value
    return DecisionContext(prediction=bool(value))


class DecisionTable(NamedTuple):
    """A policy as static data: 2x2 primitives + integer thresholds.

    The *calm* row (``on_true`` / ``on_false``) applies while the
    requester is below every criticality threshold; the *critical* row
    (``critical_true`` / ``critical_false``) applies as soon as the
    retry count or the MSHR-waiter depth reaches its threshold.
    Policies without a criticality axis leave the thresholds at
    :data:`NEVER` (the critical row is then unreachable and kept equal
    to the calm row by convention).

    ``counts`` optionally names the counted output (see module doc):
    ``"pred_true"`` tallies positive-prediction decisions,
    ``"critical"`` tallies critical-row decisions.
    """

    on_true: Primitive
    on_false: Primitive
    critical_true: Primitive
    critical_false: Primitive
    retry_threshold: int = NEVER
    waiter_threshold: int = NEVER
    counts: Optional[str] = None

    # ------------------------------------------------------------------
    # Pure evaluation (the reference semantics the cores transliterate)

    def has_criticality(self) -> bool:
        """Whether the critical row is reachable at all."""
        return (
            self.retry_threshold < NEVER or self.waiter_threshold < NEVER
        )

    def is_critical(self, ctx: DecisionContext) -> bool:
        """The criticality predicate: either threshold reached."""
        return (
            ctx.retries >= self.retry_threshold
            or ctx.waiters >= self.waiter_threshold
        )

    def decide(self, ctx: DecisionContext) -> Primitive:
        """Evaluate the table on ``ctx`` (the object-core reference
        path; the array cores run the same logic over hoisted ints)."""
        if self.has_criticality() and self.is_critical(ctx):
            return self.critical_true if ctx.prediction else (
                self.critical_false
            )
        return self.on_true if ctx.prediction else self.on_false

    # ------------------------------------------------------------------
    # Derived facts (registry metadata / correctness gating)

    def forwards_on_negative(self) -> bool:
        """Whether any reachable row filters (``FORWARD``) on a
        negative prediction - such a policy needs a predictor with no
        false negatives (superset/exact/perfect) or the single
        supplier could be skipped."""
        if self.on_false is Primitive.FORWARD:
            return True
        return (
            self.has_criticality()
            and self.critical_false is Primitive.FORWARD
        )

    def decision_inputs(self) -> Tuple[str, ...]:
        """Context fields this table actually reads, in
        :data:`CONTEXT_FIELDS` order."""
        inputs = ["prediction"]
        if self.retry_threshold < NEVER:
            inputs.append("retries")
        if self.waiter_threshold < NEVER:
            inputs.append("waiters")
        return tuple(inputs)

    def primitives_on(self, prediction: bool) -> Tuple[Primitive, ...]:
        """The set of primitives any reachable row may emit for
        ``prediction`` (the auditor's policy-guarantee alphabet)."""
        calm = self.on_true if prediction else self.on_false
        if not self.has_criticality():
            return (calm,)
        crit = self.critical_true if prediction else self.critical_false
        if crit is calm:
            return (calm,)
        return (calm, crit)


def uniform_table(
    on_true: Primitive,
    on_false: Primitive,
    counts: Optional[str] = None,
) -> DecisionTable:
    """A table with no criticality axis (the seven paper algorithms):
    the critical row mirrors the calm row and is unreachable."""
    return DecisionTable(
        on_true=on_true,
        on_false=on_false,
        critical_true=on_true,
        critical_false=on_false,
        counts=counts,
    )

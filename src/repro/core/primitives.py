"""The three primitive operations of Flexible Snooping (Table 2).

When a snoop request (or combined request/reply) arrives at a node,
the node executes one of:

* ``FORWARD_THEN_SNOOP`` - forward the snoop request immediately, then
  perform the snoop; the outcome leaves later in a (new or merged)
  snoop reply.  Splits a combined message.  The node always ends up
  emitting two messages: a request and a reply.
* ``SNOOP_THEN_FORWARD`` - perform the snoop first, then forward a
  single Combined Request/Reply carrying the outcome.  Recombines a
  split message (waiting for the trailing reply if necessary).
* ``FORWARD`` - pass the message(s) through untouched, without
  snooping.  This is the *filtering* primitive.

The timing semantics are implemented by
:meth:`apply_primitive`, shared by the full-system simulator and the
unit tests, so the Table 2 behaviour is encoded exactly once.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.ring.messages import MessageMode, RingMessage


class Primitive(enum.Enum):
    """Action a node takes on an incoming snoop message."""

    FORWARD_THEN_SNOOP = "forward_then_snoop"
    SNOOP_THEN_FORWARD = "snoop_then_forward"
    FORWARD = "forward"

    @property
    def snoops(self) -> bool:
        """True if the primitive performs a snoop operation."""
        return self is not Primitive.FORWARD


@dataclass
class PrimitiveOutcome:
    """Result of applying a primitive at one node.

    Attributes:
        request_departure: when the request/combined form leaves the
            node toward the downstream neighbour.
        reply_departure: when the trailing reply leaves the node, or
            ``None`` if the outgoing message is combined.
        snooped: whether a snoop operation was performed.
        snoop_done: completion time of the snoop, if performed.
        supplied: whether this node supplied the line.
    """

    request_departure: int
    reply_departure: Optional[int]
    snooped: bool
    snoop_done: Optional[int] = None
    supplied: bool = False


def apply_primitive(
    message: RingMessage,
    primitive: Primitive,
    *,
    now: int,
    snoop_time: int,
    predictor_latency: int,
    node_is_supplier: bool,
    node: int,
    snoop_queue_delay: int = 0,
) -> PrimitiveOutcome:
    """Apply one primitive to ``message`` at a node, per Table 2.

    ``message`` is mutated in place: its mode, satisfaction flags, and
    supplier field are updated.  Departure times are returned so the
    caller can schedule the arrival at the downstream node.

    Args:
        message: the logical message; ``message.request_time`` must be
            the arrival time at this node (== ``now``).
        primitive: the action selected by the snooping algorithm.
        now: current simulation time (request arrival at this node).
        snoop_time: CMP bus access + L2 snoop time.
        predictor_latency: Supplier Predictor access time, charged
            before the chosen action begins (0 for predictor-less
            algorithms).
        node_is_supplier: ground truth - whether this CMP holds the
            line in a supplier state *now* (evaluated by the caller at
            snoop time; supplier state cannot change mid-transaction
            because colliding transactions are squashed).
        node: this node's id, recorded if it supplies.
        snoop_queue_delay: extra cycles the snoop waits for the CMP's
            snoop port (0 unless snoop-port serialization is enabled).
            Under Forward-Then-Snoop the request still leaves
            immediately; only the snoop outcome is delayed.
    """
    arrival_reply = message.reply_time if message.mode is MessageMode.SPLIT else None
    start = now + predictor_latency

    if primitive is Primitive.FORWARD:
        # Both physical forms pass through unchanged.
        return PrimitiveOutcome(
            request_departure=start,
            reply_departure=arrival_reply,
            snooped=False,
        )

    snoop_done = start + snoop_queue_delay + snoop_time

    if primitive is Primitive.SNOOP_THEN_FORWARD:
        if node_is_supplier:
            # Supply: send combined R/R with the positive outcome; a
            # trailing reply, if any, is discarded here.
            message.mark_satisfied_combined(node)
            message.recombine()
            return PrimitiveOutcome(
                request_departure=snoop_done,
                reply_departure=None,
                snooped=True,
                snoop_done=snoop_done,
                supplied=True,
            )
        if message.mode is MessageMode.SPLIT:
            # Wait for the trailing reply, merge, forward combined.
            departure = max(snoop_done, arrival_reply)
            if message.satisfied_reply:
                # The trailing reply carried a positive outcome from an
                # upstream supplier; the recombined message is a reply.
                message.satisfied = True
            message.recombine()
            return PrimitiveOutcome(
                request_departure=departure,
                reply_departure=None,
                snooped=True,
                snoop_done=snoop_done,
            )
        # Combined arrival: forward a new combined R/R after snooping.
        return PrimitiveOutcome(
            request_departure=snoop_done,
            reply_departure=None,
            snooped=True,
            snoop_done=snoop_done,
        )

    # FORWARD_THEN_SNOOP: the request leaves immediately; the snoop
    # outcome leaves in a reply when both the local snoop and any
    # trailing reply are available.
    if message.mode is MessageMode.SPLIT:
        reply_departure = max(snoop_done, arrival_reply)
    else:
        reply_departure = snoop_done
    supplied = False
    if node_is_supplier:
        message.mark_satisfied_reply_only(node)
        supplied = True
    message.split(reply_departure)
    return PrimitiveOutcome(
        request_departure=start,
        reply_departure=reply_departure,
        snooped=True,
        snoop_done=snoop_done,
        supplied=supplied,
    )

"""Closed-form expectations behind Tables 1 and 3 of the paper.

The models assume, as the paper does, a perfectly uniform distribution
of accesses: when a supplier exists it is equally likely to sit at any
of the N-1 downstream positions on the ring.  The formulas generalize
the paper's entries with an explicit probability ``p_supplier`` that a
supplier exists at all (the paper's Table 1/3 assume it does), a false
negative rate ``fn`` and a false positive rate ``fp``.

These expectations are validated against the discrete-event simulator
in the integration test suite: for a synthetic workload engineered to
have uniform supplier placement, the simulator's measured snoop and
message counts match the closed forms.

Metric conventions:

* *snoops* - expected CMP snoop operations per read snoop request.
* *messages* - expected ring-segment crossings divided by N (so a
  single combined message travelling the whole ring counts as 1.0,
  the paper's unit).
* *latency* - expected unloaded time from request issue until the
  supplier's snoop completes (the data can then be sent), in cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class AnalyticalParams:
    """Inputs of the closed-form models.

    Attributes:
        num_nodes: N, the number of CMPs on the ring.
        hop_latency: ring segment latency (cycles).
        snoop_time: CMP snoop operation time (cycles).
        predictor_latency: Supplier Predictor access time charged to
            the request at every node for predictor-based algorithms.
        p_supplier: probability a read snoop request finds a supplier
            on the ring (1.0 reproduces the paper's tables).
        fn: false negative rate of the predictor (Subset).
        fp: false positive rate of the predictor (Superset).
        downgrade_rate: fraction of would-be suppliers lost to Exact's
            downgrades.
    """

    num_nodes: int = 8
    hop_latency: int = 39
    snoop_time: int = 55
    predictor_latency: int = 2
    p_supplier: float = 1.0
    fn: float = 0.0
    fp: float = 0.0
    downgrade_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("need at least 2 nodes")
        for name in ("p_supplier", "fn", "fp", "downgrade_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError("%s must be in [0, 1], got %r" % (name, value))

    @property
    def mean_distance(self) -> float:
        """E[d] for the supplier's position, uniform over 1..N-1."""
        return self.num_nodes / 2.0

    def distances(self):
        """Iterate (d, probability) over supplier positions."""
        n = self.num_nodes
        p = 1.0 / (n - 1)
        return ((d, p) for d in range(1, n))


# ----------------------------------------------------------------------
# Expected number of snoop operations per read snoop request


def snoops_lazy(p: AnalyticalParams) -> float:
    """Lazy snoops every node until the supplier (all N-1 if none)."""
    n = p.num_nodes
    return p.p_supplier * p.mean_distance + (1 - p.p_supplier) * (n - 1)


def snoops_eager(p: AnalyticalParams) -> float:
    """Eager always snoops all other nodes."""
    return float(p.num_nodes - 1)


def snoops_oracle(p: AnalyticalParams) -> float:
    """Oracle snoops exactly the supplier; nothing on memory reads."""
    return p.p_supplier * 1.0


def snoops_subset(p: AnalyticalParams) -> float:
    """Subset snoops every node up to the supplier (negative
    predictions still Forward-Then-Snoop); a false negative at the
    supplier lets the request snoop all remaining nodes too."""
    n = p.num_nodes
    with_supplier = (1 - p.fn) * p.mean_distance + p.fn * (n - 1)
    return p.p_supplier * with_supplier + (1 - p.p_supplier) * (n - 1)


def snoops_superset_con(p: AnalyticalParams) -> float:
    """Superset Con snoops the supplier plus false positives *before*
    it (the satisfied combined R/R suppresses later checks)."""
    n = p.num_nodes
    mean_before = p.mean_distance - 1  # E[d - 1]
    with_supplier = 1.0 + p.fp * mean_before
    return p.p_supplier * with_supplier + (1 - p.p_supplier) * p.fp * (n - 1)


def snoops_superset_agg(p: AnalyticalParams) -> float:
    """Superset Agg checks the predictor at all N-1 nodes, so false
    positives anywhere cost a snoop."""
    n = p.num_nodes
    with_supplier = 1.0 + p.fp * (n - 2)
    return p.p_supplier * with_supplier + (1 - p.p_supplier) * p.fp * (n - 1)


def snoops_exact(p: AnalyticalParams) -> float:
    """Exact snoops exactly the supplier, but downgrades divert some
    requests to memory entirely."""
    return p.p_supplier * (1 - p.downgrade_rate)


# ----------------------------------------------------------------------
# Expected ring messages per read snoop request (normalized: a single
# message covering the whole ring = 1.0)


def messages_lazy(p: AnalyticalParams) -> float:
    return 1.0


def messages_oracle(p: AnalyticalParams) -> float:
    return 1.0


def messages_superset_con(p: AnalyticalParams) -> float:
    """Con only ever uses STF/Forward, so the message stays combined."""
    return 1.0


def messages_exact(p: AnalyticalParams) -> float:
    return 1.0


def messages_eager(p: AnalyticalParams) -> float:
    """Request covers N segments; the reply, created at the first
    node, covers the remaining N-1: (2N-1)/N."""
    n = p.num_nodes
    return (2 * n - 1) / n


def messages_subset(p: AnalyticalParams) -> float:
    """Subset splits at the first (almost surely negative) node and
    recombines at the supplier on a true positive; a false negative
    (or no supplier) keeps it split the whole way."""
    n = p.num_nodes
    total = 0.0
    for d, prob in p.distances():
        # Request: N crossings always.  Trailing reply: created at
        # node 1, discarded at the supplier (true positive) after d-1
        # crossings, or carried to the requester (false negative)
        # after N-1 crossings.  d == 1 means the first node is the
        # supplier: a true positive recombines instantly (1 message).
        tp_crossings = n + max(d - 1, 0)
        fn_crossings = 2 * n - 1
        total += prob * ((1 - p.fn) * tp_crossings + p.fn * fn_crossings)
    no_supplier = 2 * n - 1
    return (
        p.p_supplier * total + (1 - p.p_supplier) * no_supplier
    ) / n


def messages_superset_agg(p: AnalyticalParams) -> float:
    """Agg stays combined until the first positive prediction (a false
    positive or the supplier), then stays split forever (Agg never
    recombines)."""
    n = p.num_nodes

    def crossings_given_first_positive(first: int) -> float:
        # Split at node ``first``: request then covers N crossings
        # total; the reply created at ``first`` covers N - first.
        return n + (n - first)

    total = 0.0
    for d, prob in p.distances():
        # First positive is the first false positive among nodes
        # 1..d-1, else the supplier at d (no false negatives).
        expected = 0.0
        p_no_fp_so_far = 1.0
        for k in range(1, d):
            expected += (
                p_no_fp_so_far * p.fp * crossings_given_first_positive(k)
            )
            p_no_fp_so_far *= 1 - p.fp
        expected += p_no_fp_so_far * crossings_given_first_positive(d)
        total += prob * expected

    # No supplier: split at the first false positive, if any.
    no_sup = 0.0
    p_no_fp_so_far = 1.0
    for k in range(1, n):
        no_sup += p_no_fp_so_far * p.fp * crossings_given_first_positive(k)
        p_no_fp_so_far *= 1 - p.fp
    no_sup += p_no_fp_so_far * n  # never split: 1 combined message

    return (p.p_supplier * total + (1 - p.p_supplier) * no_sup) / n


# ----------------------------------------------------------------------
# Expected unloaded latency until the supplier's snoop completes


def latency_lazy(p: AnalyticalParams) -> float:
    """Every hop pays the snoop before forwarding."""
    return p.mean_distance * (p.hop_latency + p.snoop_time)


def latency_eager(p: AnalyticalParams) -> float:
    return p.mean_distance * p.hop_latency + p.snoop_time


def latency_oracle(p: AnalyticalParams) -> float:
    return p.mean_distance * p.hop_latency + p.snoop_time


def latency_subset(p: AnalyticalParams) -> float:
    """The request is never delayed by snoops, only by predictor
    checks; the supplier's snoop completes one snoop-time after
    arrival whether predicted positive (STF) or negative (FTS)."""
    per_hop = p.hop_latency + p.predictor_latency
    return p.mean_distance * per_hop + p.snoop_time


def latency_superset_con(p: AnalyticalParams) -> float:
    """False positives before the supplier serialize snoops into the
    request's path."""
    per_hop = p.hop_latency + p.predictor_latency
    total = 0.0
    for d, prob in p.distances():
        fp_delay = p.fp * (d - 1) * p.snoop_time
        total += prob * (d * per_hop + fp_delay + p.snoop_time)
    return total


def latency_superset_agg(p: AnalyticalParams) -> float:
    per_hop = p.hop_latency + p.predictor_latency
    return p.mean_distance * per_hop + p.snoop_time


def latency_exact(p: AnalyticalParams) -> float:
    per_hop = p.hop_latency + p.predictor_latency
    return p.mean_distance * per_hop + p.snoop_time


# ----------------------------------------------------------------------
# Aggregate tables

_SNOOPS = {
    "lazy": snoops_lazy,
    "eager": snoops_eager,
    "oracle": snoops_oracle,
    "subset": snoops_subset,
    "superset_con": snoops_superset_con,
    "superset_agg": snoops_superset_agg,
    "exact": snoops_exact,
}

_MESSAGES = {
    "lazy": messages_lazy,
    "eager": messages_eager,
    "oracle": messages_oracle,
    "subset": messages_subset,
    "superset_con": messages_superset_con,
    "superset_agg": messages_superset_agg,
    "exact": messages_exact,
}

_LATENCY = {
    "lazy": latency_lazy,
    "eager": latency_eager,
    "oracle": latency_oracle,
    "subset": latency_subset,
    "superset_con": latency_superset_con,
    "superset_agg": latency_superset_agg,
    "exact": latency_exact,
}

ALGORITHM_NAMES = tuple(_SNOOPS)


def expected_snoops(algorithm: str, params: AnalyticalParams) -> float:
    """Expected snoop operations per read snoop request."""
    return _SNOOPS[algorithm](params)


def expected_messages(algorithm: str, params: AnalyticalParams) -> float:
    """Expected ring messages per read snoop request (Lazy = 1.0)."""
    return _MESSAGES[algorithm](params)


def expected_latency(algorithm: str, params: AnalyticalParams) -> float:
    """Expected unloaded latency until the supplier is found."""
    return _LATENCY[algorithm](params)


def table1(params: AnalyticalParams) -> Dict[str, Dict[str, float]]:
    """Reproduce Table 1: Lazy vs Eager vs Oracle."""
    rows = {}
    for name in ("lazy", "eager", "oracle"):
        rows[name] = {
            "latency": expected_latency(name, params),
            "snoops": expected_snoops(name, params),
            "messages": expected_messages(name, params),
        }
    return rows


def table3(params: AnalyticalParams) -> Dict[str, Dict[str, float]]:
    """Reproduce Table 3: the four Flexible Snooping algorithms."""
    rows = {}
    for name in ("subset", "superset_con", "superset_agg", "exact"):
        rows[name] = {
            "latency": expected_latency(name, params),
            "snoops": expected_snoops(name, params),
            "messages": expected_messages(name, params),
        }
    return rows

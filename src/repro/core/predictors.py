"""Supplier Predictor implementations (Section 4.3).

A Supplier Predictor sits in a CMP's gateway and predicts whether the
CMP holds the requested line in a *supplier* state (SG, E, D or T).
Four families are implemented:

* :class:`SubsetPredictor` - a set-associative cache of supplier-line
  addresses.  Capacity conflicts silently drop entries, so it keeps a
  strict *subset* of supplier lines: false negatives, never false
  positives.
* :class:`SupersetPredictor` - a counting Bloom filter optionally
  backed by a JETTY-style Exclude cache.  Aliasing creates false
  positives, never false negatives: a strict *superset*.
* :class:`ExactPredictor` - the subset cache enhanced so that on a
  conflict eviction the victim line is *downgraded* in the CMP
  (Section 4.3.3), eliminating false negatives at the cost of extra
  memory traffic.
* :class:`PerfectPredictor` - an oracle that inspects ground truth.

Predictors are trained by cache-state callbacks: ``insert`` when a
line enters a supplier state in the CMP, ``remove`` when it leaves
(eviction, invalidation or downgrade).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.config import PredictorConfig


class SupplierPredictor:
    """Interface shared by all Supplier Predictors.

    Concrete predictors override ``lookup``, ``insert`` and
    ``remove``.  Statistics counters are kept here so the energy model
    and the accuracy breakdown of Figure 11 can read them uniformly.
    """

    #: predictor family name, matching ``PredictorConfig.kind``
    kind = "abstract"
    #: whether the predictor can report a positive for an absent line
    may_false_positive = False
    #: whether the predictor can report a negative for a present line
    may_false_negative = False

    def __init__(self, config: PredictorConfig) -> None:
        self.config = config
        self.lookups = 0
        self.updates = 0

    def lookup(self, address: int) -> bool:
        """Predict whether the CMP holds ``address`` in supplier state."""
        raise NotImplementedError

    def insert(self, address: int) -> None:
        """Train: ``address`` entered a supplier state in the CMP."""
        raise NotImplementedError

    def remove(self, address: int) -> None:
        """Train: ``address`` left supplier state (evict/invalidate).

        Must be idempotent: removal of an absent address is a no-op.
        """
        raise NotImplementedError

    def observe_false_positive(self, address: int) -> None:
        """Feedback: a snoop triggered by a positive prediction found
        no supplier.  Used by the Exclude cache; default no-op."""

    def prewarm_snapshot(self) -> Optional[object]:
        """Capture the predictor's complete state for later restore.

        Used by the system's prewarm memo: training a predictor with a
        workload's prewarm stream is deterministic, so the resulting
        state can be captured once and copied into every later
        predictor built for the same trace.  Returns ``None`` when the
        predictor does not support snapshotting (then callers must
        replay the training stream instead).
        """
        return None

    def prewarm_restore(self, snapshot: object) -> None:
        """Restore state captured by :meth:`prewarm_snapshot`."""
        raise NotImplementedError(
            "%s does not support prewarm snapshots" % type(self).__name__
        )

    @property
    def latency(self) -> int:
        return self.config.access_latency


class NullPredictor(SupplierPredictor):
    """Predictor used by Lazy and Eager: it always answers "maybe"
    (positive), forcing the algorithm's unconditional behaviour, and
    costs neither time nor energy."""

    kind = "none"

    def lookup(self, address: int) -> bool:
        return True

    def insert(self, address: int) -> None:
        pass

    def remove(self, address: int) -> None:
        pass

    @property
    def latency(self) -> int:
        return 0


class _AddressCache:
    """A small set-associative LRU cache of line addresses.

    Used as the storage substrate of the Subset and Exact predictors
    and of the Exclude cache.  ``insert`` returns the victim address
    when a valid entry had to be overwritten (the conflict-eviction
    hook the Exact predictor needs).

    Each set is a plain list ordered LRU-first (victim at index 0, MRU
    at the end).  At predictor-scale associativities (a handful of
    ways) a linear scan of a small list beats an ``OrderedDict``'s
    hashing and node shuffling, and there is no per-set dict overhead.
    """

    __slots__ = ("entries", "associativity", "num_sets", "_sets")

    def __init__(self, entries: int, associativity: int) -> None:
        if entries % associativity != 0:
            raise ValueError(
                "entries (%d) must be a multiple of associativity (%d)"
                % (entries, associativity)
            )
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]

    def contains(self, address: int, touch: bool = True) -> bool:
        cache_set = self._sets[address % self.num_sets]
        if address in cache_set:
            if touch and cache_set[-1] != address:
                cache_set.remove(address)
                cache_set.append(address)
            return True
        return False

    def insert(self, address: int) -> Optional[int]:
        """Insert; return the evicted victim address, if any."""
        cache_set = self._sets[address % self.num_sets]
        if address in cache_set:
            if cache_set[-1] != address:
                cache_set.remove(address)
                cache_set.append(address)
            return None
        victim = None
        if len(cache_set) >= self.associativity:
            victim = cache_set.pop(0)
        cache_set.append(address)
        return victim

    def remove(self, address: int) -> bool:
        cache_set = self._sets[address % self.num_sets]
        if address in cache_set:
            cache_set.remove(address)
            return True
        return False

    def snapshot(self) -> List[List[int]]:
        """Copy of every set, preserving LRU order."""
        return [list(s) for s in self._sets]

    def restore(self, sets: List[List[int]]) -> None:
        self._sets = [list(s) for s in sets]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)


class SubsetPredictor(SupplierPredictor):
    """Set-associative cache of supplier lines (Section 4.3.1).

    No false positives: every tracked address is genuinely in supplier
    state (removals are synchronous with state loss).  False negatives
    arise when LRU replacement silently drops a valid entry.
    """

    kind = "subset"
    may_false_negative = True

    def __init__(self, config: PredictorConfig) -> None:
        super().__init__(config)
        self._table = _AddressCache(config.entries, config.associativity)
        self.conflict_drops = 0

    def lookup(self, address: int) -> bool:
        self.lookups += 1
        return self._table.contains(address)

    def insert(self, address: int) -> None:
        self.updates += 1
        victim = self._table.insert(address)
        if victim is not None:
            # The victim line is still a supplier in the CMP but is no
            # longer tracked: a future false negative.
            self.conflict_drops += 1

    def remove(self, address: int) -> None:
        self.updates += 1
        self._table.remove(address)

    def prewarm_snapshot(self) -> Optional[object]:
        return (
            self.lookups,
            self.updates,
            self.conflict_drops,
            self._table.snapshot(),
        )

    def prewarm_restore(self, snapshot: object) -> None:
        lookups, updates, conflict_drops, sets = snapshot  # type: ignore[misc]
        self.lookups = lookups
        self.updates = updates
        self.conflict_drops = conflict_drops
        self._table.restore(sets)

    def __contains__(self, address: int) -> bool:
        return self._table.contains(address, touch=False)


class ExactPredictor(SupplierPredictor):
    """Subset cache whose conflict evictions downgrade the victim line
    in the CMP (Section 4.3.3), so the tracked set stays *exact*.

    The downgrade itself (SG/E -> SL silently; D/T -> write back and
    keep in SL) is carried out by the system through the
    ``downgrade_callback``; the predictor only reports which address
    must be downgraded.
    """

    kind = "exact"

    def __init__(
        self,
        config: PredictorConfig,
        downgrade_callback: Optional[Callable[[int], None]] = None,
    ) -> None:
        super().__init__(config)
        self._table = _AddressCache(config.entries, config.associativity)
        self.downgrades = 0
        self._downgrade_callback = downgrade_callback

    def set_downgrade_callback(self, callback: Callable[[int], None]) -> None:
        self._downgrade_callback = callback

    def lookup(self, address: int) -> bool:
        self.lookups += 1
        return self._table.contains(address)

    def insert(self, address: int) -> None:
        self.updates += 1
        victim = self._table.insert(address)
        if victim is not None:
            self.downgrades += 1
            if self._downgrade_callback is not None:
                # The cache-state change will try to remove the victim
                # from this predictor again; remove() is idempotent.
                self._downgrade_callback(victim)

    def remove(self, address: int) -> None:
        self.updates += 1
        self._table.remove(address)

    def prewarm_snapshot(self) -> Optional[object]:
        return (
            self.lookups,
            self.updates,
            self.downgrades,
            self._table.snapshot(),
        )

    def prewarm_restore(self, snapshot: object) -> None:
        lookups, updates, downgrades, sets = snapshot  # type: ignore[misc]
        self.lookups = lookups
        self.updates = updates
        self.downgrades = downgrades
        self._table.restore(sets)

    def __contains__(self, address: int) -> bool:
        return self._table.contains(address, touch=False)


class CountingBloomFilter:
    """Counting Bloom filter over line addresses (Section 4.3.2).

    The line address is broken into ``len(field_bits)`` consecutive bit
    fields; field *i* indexes a table of ``2**field_bits[i]``
    counters.  An address is (possibly) present when all its counters
    are non-zero.  Counters saturate high enough that overflow is not
    a practical concern for simulation workloads.
    """

    def __init__(self, field_bits: Tuple[int, ...]) -> None:
        if not field_bits:
            raise ValueError("need at least one field")
        self.field_bits = tuple(field_bits)
        self._tables: List[List[int]] = [
            [0] * (1 << bits) for bits in self.field_bits
        ]
        self._shifts: List[int] = []
        shift = 0
        for bits in self.field_bits:
            self._shifts.append(shift)
            shift += bits
        self._fields = tuple(
            (shift, (1 << bits) - 1)
            for shift, bits in zip(self._shifts, self.field_bits)
        )
        # One "any counter non-zero?" bitmask int per table: bit i is
        # set iff table[i] > 0.  ``query`` then needs one shift+AND per
        # field instead of a list index and comparison.
        self._nonzero: List[int] = [0] * len(self._tables)
        # Both of the paper's filter shapes (y and n) use exactly three
        # fields; add/discard/query unroll that case because the
        # generic loop's per-field iteration overhead dominates the
        # actual arithmetic (prewarm alone performs hundreds of
        # thousands of adds).
        self._three = len(self.field_bits) == 3

    def _indices(self, address: int) -> List[int]:
        return [(address >> shift) & mask for shift, mask in self._fields]

    def add(self, address: int) -> None:
        tables = self._tables
        nonzero = self._nonzero
        if self._three:
            (s0, m0), (s1, m1), (s2, m2) = self._fields
            i0 = (address >> s0) & m0
            i1 = (address >> s1) & m1
            i2 = (address >> s2) & m2
            t0, t1, t2 = tables
            if t0[i0] == 0:
                nonzero[0] |= 1 << i0
            t0[i0] += 1
            if t1[i1] == 0:
                nonzero[1] |= 1 << i1
            t1[i1] += 1
            if t2[i2] == 0:
                nonzero[2] |= 1 << i2
            t2[i2] += 1
            return
        for i, index in enumerate(self._indices(address)):
            table = tables[i]
            if table[index] == 0:
                nonzero[i] |= 1 << index
            table[index] += 1

    def discard(self, address: int) -> None:
        tables = self._tables
        nonzero = self._nonzero
        for i, (shift, mask) in enumerate(self._fields):
            index = (address >> shift) & mask
            table = tables[i]
            count = table[index]
            if count <= 0:
                raise ValueError(
                    "bloom counter underflow for address %#x" % address
                )
            table[index] = count - 1
            if count == 1:
                nonzero[i] &= ~(1 << index)

    def query(self, address: int) -> bool:
        """True when the address *may* be present (no false negatives
        for addresses added and not discarded)."""
        nonzero = self._nonzero
        if self._three:
            (s0, m0), (s1, m1), (s2, m2) = self._fields
            return bool(
                (nonzero[0] >> ((address >> s0) & m0))
                & (nonzero[1] >> ((address >> s1) & m1))
                & (nonzero[2] >> ((address >> s2) & m2))
                & 1
            )
        for i, (shift, mask) in enumerate(self._fields):
            if not (nonzero[i] >> ((address >> shift) & mask)) & 1:
                return False
        return True

    def snapshot(self) -> Tuple[List[List[int]], List[int]]:
        """Copy of the counter tables and their non-zero bitmasks."""
        return [list(t) for t in self._tables], list(self._nonzero)

    def restore(self, snapshot: Tuple[List[List[int]], List[int]]) -> None:
        tables, nonzero = snapshot
        self._tables = [list(t) for t in tables]
        self._nonzero = list(nonzero)

    @property
    def total_counters(self) -> int:
        return sum(len(t) for t in self._tables)


class SupersetPredictor(SupplierPredictor):
    """Counting Bloom filter + Exclude cache (Section 4.3.2).

    The Bloom filter tracks a superset of the CMP's supplier lines.
    The Exclude cache remembers addresses recently proven *not* to be
    suppliers (false positives observed by actual snoops), masking
    repeat false positives.  Inserting a genuine supplier line
    invalidates any stale Exclude entry for it.
    """

    kind = "superset"
    may_false_positive = True

    def __init__(self, config: PredictorConfig) -> None:
        super().__init__(config)
        self.filter = CountingBloomFilter(config.bloom_fields)
        self.exclude = (
            _AddressCache(config.exclude_entries, config.exclude_associativity)
            if config.exclude_entries > 0
            else None
        )
        self.exclude_hits = 0
        self.exclude_inserts = 0
        # Reference counts let remove() be idempotent even though the
        # underlying Bloom counters are not.
        self._present: Dict[int, int] = {}

    def lookup(self, address: int) -> bool:
        self.lookups += 1
        if not self.filter.query(address):
            return False
        if self.exclude is not None and self.exclude.contains(address):
            self.exclude_hits += 1
            return False
        return True

    def insert(self, address: int) -> None:
        self.updates += 1
        self.filter.add(address)
        self._present[address] = self._present.get(address, 0) + 1
        if self.exclude is not None:
            self.exclude.remove(address)

    def remove(self, address: int) -> None:
        count = self._present.get(address, 0)
        if count <= 0:
            return
        self.updates += 1
        self.filter.discard(address)
        if count == 1:
            del self._present[address]
        else:
            self._present[address] = count - 1

    def observe_false_positive(self, address: int) -> None:
        if self.exclude is not None:
            self.exclude.insert(address)
            self.exclude_inserts += 1
            self.updates += 1

    def prewarm_snapshot(self) -> Optional[object]:
        return (
            self.lookups,
            self.updates,
            self.exclude_hits,
            self.exclude_inserts,
            self.filter.snapshot(),
            self.exclude.snapshot() if self.exclude is not None else None,
            dict(self._present),
        )

    def prewarm_restore(self, snapshot: object) -> None:
        (
            self.lookups,
            self.updates,
            self.exclude_hits,
            self.exclude_inserts,
            filter_snapshot,
            exclude_snapshot,
            present,
        ) = snapshot  # type: ignore[misc]
        self.filter.restore(filter_snapshot)
        if self.exclude is not None and exclude_snapshot is not None:
            self.exclude.restore(exclude_snapshot)
        self._present = dict(present)

    def __contains__(self, address: int) -> bool:
        return self._present.get(address, 0) > 0


class PerfectPredictor(SupplierPredictor):
    """Oracle: consults ground truth provided by the system.

    ``truth`` is a callable mapping an address to whether this CMP
    currently holds it in a supplier state.
    """

    kind = "perfect"

    def __init__(
        self,
        config: PredictorConfig,
        truth: Optional[Callable[[int], bool]] = None,
    ) -> None:
        super().__init__(config)
        self._truth = truth

    def set_truth(self, truth: Callable[[int], bool]) -> None:
        self._truth = truth

    def lookup(self, address: int) -> bool:
        self.lookups += 1
        if self._truth is None:
            raise RuntimeError("PerfectPredictor has no truth source")
        return self._truth(address)

    def insert(self, address: int) -> None:
        pass

    def remove(self, address: int) -> None:
        pass

    @property
    def latency(self) -> int:
        return 0


def build_predictor(config: PredictorConfig) -> SupplierPredictor:
    """Factory: build the predictor selected by ``config.kind``."""
    if config.kind == "none":
        return NullPredictor(config)
    if config.kind == "subset":
        return SubsetPredictor(config)
    if config.kind == "superset":
        return SupersetPredictor(config)
    if config.kind == "exact":
        return ExactPredictor(config)
    if config.kind == "perfect":
        return PerfectPredictor(config)
    raise ValueError("unknown predictor kind %r" % (config.kind,))

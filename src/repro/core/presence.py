"""Presence predictor: write-snoop filtering (extension).

Section 5.3 of the paper observes that write snoops cannot use the
Supplier Predictors - a write must invalidate *all* cached copies, so
it "would need a predictor of line presence, rather than one of line
in supplier state".  The paper leaves it there; this module builds
that predictor.

A :class:`PresencePredictor` is a per-CMP counting Bloom filter over
*all* resident lines (JETTY's original construction).  It has no
false negatives, so a negative prediction proves the CMP caches no
copy of the line and the invalidation snoop can be skipped safely; a
false positive merely costs one unnecessary snoop.

Enabled with ``MachineConfig.filter_write_snoops``; evaluated by
``benchmarks/test_ablation_write_filter.py``.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.predictors import CountingBloomFilter


class PresencePredictor:
    """Counting Bloom filter over the CMP's resident lines.

    Trained by the cache-residency callbacks (one increment per copy
    brought in, one decrement per copy displaced), so a line cached by
    several cores in the CMP is reference-counted and stays present
    until the last copy leaves.
    """

    #: The default fields give a 2^15 + 2^11 = 34816-counter filter.
    #: Presence filters must be sized against the CMP's full residency
    #: (up to 32k lines on the default machine), unlike the Supplier
    #: Predictors' Bloom filters which only track supplier sets; an
    #: undersized filter saturates and stops filtering.
    DEFAULT_FIELDS: Tuple[int, ...] = (15, 11)

    def __init__(
        self,
        fields: Tuple[int, ...] = DEFAULT_FIELDS,
        access_latency: int = 2,
    ) -> None:
        self.filter = CountingBloomFilter(fields)
        self.access_latency = access_latency
        self.lookups = 0
        self.updates = 0
        self.filtered = 0

    def line_added(self, address: int) -> None:
        """One cached copy of ``address`` entered the CMP."""
        self.filter.add(address)
        self.updates += 1

    def line_removed(self, address: int) -> None:
        """One cached copy of ``address`` left the CMP."""
        self.filter.discard(address)
        self.updates += 1

    def may_be_present(self, address: int) -> bool:
        """False only when the CMP provably holds no copy."""
        self.lookups += 1
        present = self.filter.query(address)
        if not present:
            self.filtered += 1
        return present

"""The paper's core contribution: Flexible Snooping.

* :mod:`repro.core.primitives` - the three primitive operations a node
  can take on an incoming snoop message (Table 2).
* :mod:`repro.core.predictors` - the Supplier Predictor
  implementations (Section 4.3).
* :mod:`repro.core.algorithms` - the snooping algorithms built from
  primitives plus predictors (Table 3), including the baselines Lazy,
  Eager and Oracle.
* :mod:`repro.core.analytical` - closed-form models behind Tables 1
  and 3.
"""

from repro.core.presence import PresencePredictor
from repro.core.primitives import Primitive
from repro.core.predictors import (
    SupplierPredictor,
    NullPredictor,
    SubsetPredictor,
    SupersetPredictor,
    ExactPredictor,
    PerfectPredictor,
    build_predictor,
)
from repro.core.algorithms import (
    SnoopingAlgorithm,
    Lazy,
    Eager,
    Oracle,
    Subset,
    SupersetCon,
    SupersetAgg,
    SupersetHybrid,
    Exact,
    ALGORITHMS,
    build_algorithm,
)

__all__ = [
    "PresencePredictor",
    "Primitive",
    "SupplierPredictor",
    "NullPredictor",
    "SubsetPredictor",
    "SupersetPredictor",
    "ExactPredictor",
    "PerfectPredictor",
    "build_predictor",
    "SnoopingAlgorithm",
    "Lazy",
    "Eager",
    "Oracle",
    "Subset",
    "SupersetCon",
    "SupersetAgg",
    "SupersetHybrid",
    "Exact",
    "ALGORITHMS",
    "build_algorithm",
]

"""The Flexible Snooping algorithms (Table 3) and the baselines.

An algorithm is a small policy object: given the Supplier Predictor's
prediction at a node, it selects one of the three primitives.  The
baselines Lazy and Eager ignore the prediction and always choose
Snoop Then Forward / Forward Then Snoop respectively; Oracle uses a
perfect predictor.

Write snoop requests cannot use supplier predictors (writes must
invalidate *all* copies, not find the single supplier - Section 5.3).
Algorithms that decouple read messages into request + reply (Eager,
Subset, Superset Agg, and Oracle by the paper's convention) also
decouple write snoops, enabling parallel invalidation; the others
(Lazy, Superset Con, Exact) keep write snoops coupled and serial.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Type

from repro.config import PredictorConfig
from repro.core.primitives import Primitive
from repro.registry import REGISTRY


class SnoopingAlgorithm:
    """Base class for ring snooping algorithms.

    Attributes:
        name: canonical lower-case name used in configs and results.
        display_name: name used in tables/figures (paper style).
        default_predictor_kind: predictor family the algorithm expects.
        decouple_writes: whether write snoops split into request +
            reply for parallel invalidation (Section 5.3).
    """

    name = "abstract"
    display_name = "Abstract"
    default_predictor_kind = "none"
    decouple_writes = False

    def choose(self, prediction: bool) -> Primitive:
        """Select the primitive for a read snoop given the prediction."""
        raise NotImplementedError

    def uses_predictor(self) -> bool:
        """Whether the algorithm consults a Supplier Predictor at all.

        Determines if predictor access latency and energy are charged
        on each ring message arrival.
        """
        return self.default_predictor_kind not in ("none",)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<%s>" % type(self).__name__


class Lazy(SnoopingAlgorithm):
    """Snoop at every node before forwarding (Section 3.1).

    One combined message all the way around; long latency, medium
    snoop count, minimal traffic.
    """

    name = "lazy"
    display_name = "Lazy"

    def choose(self, prediction: bool) -> Primitive:
        return Primitive.SNOOP_THEN_FORWARD


class Eager(SnoopingAlgorithm):
    """Forward immediately, then snoop, at every node (Barroso &
    Dubois' slotted-ring algorithm adapted to the embedded ring).

    Low latency, but snoops all N-1 nodes and nearly doubles traffic.
    """

    name = "eager"
    display_name = "Eager"
    decouple_writes = True

    def choose(self, prediction: bool) -> Primitive:
        return Primitive.FORWARD_THEN_SNOOP


class Oracle(SnoopingAlgorithm):
    """Magic lower bound: snoop only at the supplier node."""

    name = "oracle"
    display_name = "Oracle"
    default_predictor_kind = "perfect"
    decouple_writes = True

    def choose(self, prediction: bool) -> Primitive:
        if prediction:
            return Primitive.SNOOP_THEN_FORWARD
        return Primitive.FORWARD


class Subset(SnoopingAlgorithm):
    """Subset predictor (no false positives, false negatives possible).

    Positive prediction - the supplier is guaranteed local: Snoop Then
    Forward.  Negative prediction - the supplier may still be local:
    Forward Then Snoop (cannot skip the snoop).
    """

    name = "subset"
    display_name = "Subset"
    default_predictor_kind = "subset"
    decouple_writes = True

    def choose(self, prediction: bool) -> Primitive:
        if prediction:
            return Primitive.SNOOP_THEN_FORWARD
        return Primitive.FORWARD_THEN_SNOOP


class SupersetCon(SnoopingAlgorithm):
    """Superset predictor, conservative flavour.

    Negative prediction is trustworthy (no false negatives): Forward.
    Positive prediction assumes the supplier is local: Snoop Then
    Forward - false positives put snoops on the critical path, but the
    message count stays at one.
    """

    name = "superset_con"
    display_name = "SupersetCon"
    default_predictor_kind = "superset"

    def choose(self, prediction: bool) -> Primitive:
        if prediction:
            return Primitive.SNOOP_THEN_FORWARD
        return Primitive.FORWARD


class SupersetAgg(SnoopingAlgorithm):
    """Superset predictor, aggressive flavour.

    Negative prediction: Forward.  Positive prediction: Forward Then
    Snoop - the request is never delayed, at the cost of extra
    messages and predictor checks at all nodes.
    """

    name = "superset_agg"
    display_name = "SupersetAgg"
    default_predictor_kind = "superset"
    decouple_writes = True

    def choose(self, prediction: bool) -> Primitive:
        if prediction:
            return Primitive.FORWARD_THEN_SNOOP
        return Primitive.FORWARD


class Exact(SnoopingAlgorithm):
    """Exact predictor (downgrades on conflict evictions).

    Perfect prediction: Snoop Then Forward on positive, Forward on
    negative.  The hidden cost is the downgrade traffic (write-backs
    and memory re-reads) charged by the system.
    """

    name = "exact"
    display_name = "Exact"
    default_predictor_kind = "exact"

    def choose(self, prediction: bool) -> Primitive:
        if prediction:
            return Primitive.SNOOP_THEN_FORWARD
        return Primitive.FORWARD


class SupersetHybrid(SnoopingAlgorithm):
    """The adaptive Con/Agg switch the paper envisions (Section 6.1.5).

    Both Superset flavours share one predictor; only the action on a
    positive prediction differs.  The hybrid normally behaves like
    Superset Agg (performance), and falls back to Superset Con when
    the machine signals energy pressure.

    ``energy_pressure`` is a callable polled on each positive
    prediction; when it returns True the conservative action is used.
    By default the hybrid stays in aggressive mode.
    """

    name = "superset_hybrid"
    display_name = "SupersetHybrid"
    default_predictor_kind = "superset"
    # Write decoupling follows the currently dominant mode; we keep the
    # aggressive convention, matching its common case.
    decouple_writes = True

    def __init__(
        self, energy_pressure: Optional[Callable[[], bool]] = None
    ) -> None:
        self._energy_pressure = energy_pressure
        self.aggressive_choices = 0
        self.conservative_choices = 0

    def set_energy_pressure(self, probe: Callable[[], bool]) -> None:
        self._energy_pressure = probe

    def choose(self, prediction: bool) -> Primitive:
        if not prediction:
            return Primitive.FORWARD
        pressed = self._energy_pressure() if self._energy_pressure else False
        if pressed:
            self.conservative_choices += 1
            return Primitive.SNOOP_THEN_FORWARD
        self.aggressive_choices += 1
        return Primitive.FORWARD_THEN_SNOOP


#: All algorithms by canonical name (kept for direct class access;
#: name resolution goes through :data:`repro.registry.REGISTRY`).
ALGORITHMS: Dict[str, Type[SnoopingAlgorithm]] = {
    cls.name: cls
    for cls in (
        Lazy,
        Eager,
        Oracle,
        Subset,
        SupersetCon,
        SupersetAgg,
        SupersetHybrid,
        Exact,
    )
}

#: The paper's per-algorithm default predictor (Section 6.1's main
#: comparison), recorded as registry metadata below.
_DEFAULT_PREDICTORS: Dict[str, str] = {
    "lazy": "None",
    "eager": "None",
    "oracle": "Perfect",
    "subset": "Sub2k",
    "superset_con": "Supy2k",
    "superset_agg": "Supy2k",
    "superset_hybrid": "Supy2k",
    "exact": "Exa2k",
}

_ALGORITHM_ALIASES: Dict[str, Tuple[str, ...]] = {
    "superset_con": ("supersetcon", "supcon"),
    "superset_agg": ("supersetagg", "supagg"),
    "superset_hybrid": ("supersethybrid",),
}


def build_algorithm(name: str) -> SnoopingAlgorithm:
    """Instantiate an algorithm by canonical (or alias) name.

    Resolution goes through the component registry, so unknown names
    raise :class:`repro.registry.UnknownComponentError` (a
    ``ValueError`` listing the valid choices).
    """
    return REGISTRY.create("algorithm", name)


def compatible_predictor(
    algorithm: SnoopingAlgorithm, predictor_config: PredictorConfig
) -> bool:
    """Whether ``predictor_config`` provides the guarantees the
    algorithm relies on for correctness.

    An algorithm that issues ``Forward`` on a negative prediction
    (Oracle, Superset Con/Agg/Hybrid, Exact) must never see a false
    negative, or the single supplier would be skipped and the request
    wrongly serviced by memory.
    """
    forwards_on_negative = (
        algorithm.choose(False) is Primitive.FORWARD
        if not isinstance(algorithm, SupersetHybrid)
        else True
    )
    if not forwards_on_negative:
        return True
    return predictor_config.kind in ("superset", "exact", "perfect")


#: Predictor kinds safe for an algorithm that forwards on a negative
#: prediction: no false negatives allowed (see compatible_predictor).
_NO_FALSE_NEGATIVE_KINDS: Tuple[str, ...] = ("superset", "exact", "perfect")
_ANY_KIND: Tuple[str, ...] = PredictorConfig.VALID_KINDS

for _cls in ALGORITHMS.values():
    _forwards_on_negative = (
        True
        if _cls is SupersetHybrid
        else _cls().choose(False) is Primitive.FORWARD
    )
    REGISTRY.register(
        "algorithm",
        _cls.name,
        _cls,
        aliases=_ALGORITHM_ALIASES.get(_cls.name, ()),
        metadata={
            "display_name": _cls.display_name,
            "default_predictor": _DEFAULT_PREDICTORS[_cls.name],
            "default_predictor_kind": _cls.default_predictor_kind,
            "decouple_writes": _cls.decouple_writes,
            "compatible_predictor_kinds": (
                _NO_FALSE_NEGATIVE_KINDS
                if _forwards_on_negative
                else _ANY_KIND
            ),
        },
    )
del _cls, _forwards_on_negative

"""The Flexible Snooping algorithms (Table 3), the baselines, and the
criticality extension.

An algorithm is a small *decision policy* object: at each unsatisfied
read hop it receives a :class:`~repro.core.decision.DecisionContext`
(the Supplier Predictor's prediction plus the requester's urgency
signals) and selects one of the three primitives.  The paper's seven
algorithms read only the prediction; :class:`Criticality` - an eighth
algorithm beyond the paper - also reads the requester's retry count
and MSHR-waiter depth.  Every built-in publishes its policy as a
static :class:`~repro.core.decision.DecisionTable`, which is what the
fused simulation cores hoist into plain integers; ``choose`` accepts a
bare bool for backward compatibility (coerced to a prediction-only
context).

Write snoop requests cannot use supplier predictors (writes must
invalidate *all* copies, not find the single supplier - Section 5.3).
Algorithms that decouple read messages into request + reply (Eager,
Subset, Superset Agg, and Oracle by the paper's convention) also
decouple write snoops, enabling parallel invalidation; the others
(Lazy, Superset Con, Exact) keep write snoops coupled and serial.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Type, Union

from repro.config import PredictorConfig
from repro.core.decision import (
    DecisionContext,
    DecisionTable,
    as_context,
    uniform_table,
)
from repro.core.primitives import Primitive
from repro.registry import REGISTRY


class SnoopingAlgorithm:
    """Base class for ring snooping algorithms (decision policies).

    Attributes:
        name: canonical lower-case name used in configs and results.
        display_name: name used in tables/figures (paper style).
        default_predictor_kind: predictor family the algorithm expects.
        decouple_writes: whether write snoops split into request +
            reply for parallel invalidation (Section 5.3).
        table: the static :class:`DecisionTable` form of the policy,
            or ``None`` for a policy whose decision depends on state
            outside the context (object core only).
    """

    name = "abstract"
    display_name = "Abstract"
    default_predictor_kind = "none"
    decouple_writes = False
    table: Optional[DecisionTable] = None
    #: Resolved predictor kind, bound by the simulation cores from the
    #: machine config (``bind_predictor_kind``); ``None`` until bound,
    #: in which case ``default_predictor_kind`` is assumed.
    _predictor_kind: Optional[str] = None

    def decision_table(self) -> Optional[DecisionTable]:
        """The policy's static table, or ``None`` if the decision is
        dynamic (then only the object core can run it)."""
        return self.table

    def choose(
        self, ctx: Union[DecisionContext, bool]
    ) -> Primitive:
        """Select the primitive for a read snoop.

        ``ctx`` is a :class:`DecisionContext`; a bare bool prediction
        (the pre-seam contract) is accepted and coerced.
        """
        table = self.decision_table()
        if table is None:
            raise NotImplementedError(
                "algorithm %r publishes no decision table and does not "
                "override choose()" % self.name
            )
        return table.decide(as_context(ctx))

    def decision_inputs(self) -> Tuple[str, ...]:
        """Context fields (plus any out-of-context state) the policy
        reads - the registry metadata the CLI/core envelope checks
        cite when refusing a core/algorithm combination."""
        table = self.decision_table()
        if table is None:
            return ("prediction", "dynamic")
        return table.decision_inputs()

    def forwards_on_negative(self) -> bool:
        """Whether the policy may filter (``FORWARD``) on a negative
        prediction; dynamic policies conservatively answer True."""
        table = self.decision_table()
        if table is None:
            return True
        return table.forwards_on_negative()

    def fold_choice_counts(self, count: int) -> None:
        """Absorb the counted-output tally of an array-core run (see
        :attr:`DecisionTable.counts`); the base policy counts nothing."""

    def bind_predictor_kind(self, kind: str) -> None:
        """Record the machine's *resolved* predictor kind (called by
        the simulation cores at construction), so predictor overrides
        charge lookup latency/energy correctly."""
        self._predictor_kind = kind

    def uses_predictor(self) -> bool:
        """Whether the algorithm consults a Supplier Predictor at all.

        Determines if predictor access latency and energy are charged
        on each ring message arrival.  Consults the *instance's*
        resolved predictor kind when one was bound, falling back to
        the class default otherwise.
        """
        kind = self._predictor_kind
        if kind is None:
            kind = self.default_predictor_kind
        return kind not in ("none",)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<%s>" % type(self).__name__


class Lazy(SnoopingAlgorithm):
    """Snoop at every node before forwarding (Section 3.1).

    One combined message all the way around; long latency, medium
    snoop count, minimal traffic.
    """

    name = "lazy"
    display_name = "Lazy"
    table = uniform_table(
        Primitive.SNOOP_THEN_FORWARD, Primitive.SNOOP_THEN_FORWARD
    )


class Eager(SnoopingAlgorithm):
    """Forward immediately, then snoop, at every node (Barroso &
    Dubois' slotted-ring algorithm adapted to the embedded ring).

    Low latency, but snoops all N-1 nodes and nearly doubles traffic.
    """

    name = "eager"
    display_name = "Eager"
    decouple_writes = True
    table = uniform_table(
        Primitive.FORWARD_THEN_SNOOP, Primitive.FORWARD_THEN_SNOOP
    )


class Oracle(SnoopingAlgorithm):
    """Magic lower bound: snoop only at the supplier node."""

    name = "oracle"
    display_name = "Oracle"
    default_predictor_kind = "perfect"
    decouple_writes = True
    table = uniform_table(
        Primitive.SNOOP_THEN_FORWARD, Primitive.FORWARD
    )


class Subset(SnoopingAlgorithm):
    """Subset predictor (no false positives, false negatives possible).

    Positive prediction - the supplier is guaranteed local: Snoop Then
    Forward.  Negative prediction - the supplier may still be local:
    Forward Then Snoop (cannot skip the snoop).
    """

    name = "subset"
    display_name = "Subset"
    default_predictor_kind = "subset"
    decouple_writes = True
    table = uniform_table(
        Primitive.SNOOP_THEN_FORWARD, Primitive.FORWARD_THEN_SNOOP
    )


class SupersetCon(SnoopingAlgorithm):
    """Superset predictor, conservative flavour.

    Negative prediction is trustworthy (no false negatives): Forward.
    Positive prediction assumes the supplier is local: Snoop Then
    Forward - false positives put snoops on the critical path, but the
    message count stays at one.
    """

    name = "superset_con"
    display_name = "SupersetCon"
    default_predictor_kind = "superset"
    table = uniform_table(
        Primitive.SNOOP_THEN_FORWARD, Primitive.FORWARD
    )


class SupersetAgg(SnoopingAlgorithm):
    """Superset predictor, aggressive flavour.

    Negative prediction: Forward.  Positive prediction: Forward Then
    Snoop - the request is never delayed, at the cost of extra
    messages and predictor checks at all nodes.
    """

    name = "superset_agg"
    display_name = "SupersetAgg"
    default_predictor_kind = "superset"
    decouple_writes = True
    table = uniform_table(
        Primitive.FORWARD_THEN_SNOOP, Primitive.FORWARD
    )


class Exact(SnoopingAlgorithm):
    """Exact predictor (downgrades on conflict evictions).

    Perfect prediction: Snoop Then Forward on positive, Forward on
    negative.  The hidden cost is the downgrade traffic (write-backs
    and memory re-reads) charged by the system.
    """

    name = "exact"
    display_name = "Exact"
    default_predictor_kind = "exact"
    table = uniform_table(
        Primitive.SNOOP_THEN_FORWARD, Primitive.FORWARD
    )


class SupersetHybrid(SnoopingAlgorithm):
    """The adaptive Con/Agg switch the paper envisions (Section 6.1.5).

    Both Superset flavours share one predictor; only the action on a
    positive prediction differs.  The hybrid normally behaves like
    Superset Agg (performance), and falls back to Superset Con when
    the machine signals energy pressure.

    ``energy_pressure`` is a callable polled on each positive
    prediction; when it returns True the conservative action is used.
    Without a pressure source the policy is the static aggressive
    table (with ``aggressive_choices`` as its declared counted
    output), so it runs on all three cores; binding a pressure probe
    makes the decision dynamic and confines it to the object core.
    """

    name = "superset_hybrid"
    display_name = "SupersetHybrid"
    default_predictor_kind = "superset"
    # Write decoupling follows the currently dominant mode; we keep the
    # aggressive convention, matching its common case.
    decouple_writes = True
    table = uniform_table(
        Primitive.FORWARD_THEN_SNOOP,
        Primitive.FORWARD,
        counts="pred_true",
    )

    def __init__(
        self, energy_pressure: Optional[Callable[[], bool]] = None
    ) -> None:
        self._energy_pressure = energy_pressure
        self.aggressive_choices = 0
        self.conservative_choices = 0

    def set_energy_pressure(self, probe: Callable[[], bool]) -> None:
        self._energy_pressure = probe

    def decision_table(self) -> Optional[DecisionTable]:
        if self._energy_pressure is not None:
            return None
        return self.table

    def decision_inputs(self) -> Tuple[str, ...]:
        if self._energy_pressure is not None:
            return ("prediction", "energy_pressure")
        return self.table.decision_inputs()  # type: ignore[union-attr]

    def fold_choice_counts(self, count: int) -> None:
        self.aggressive_choices += count

    def choose(
        self, ctx: Union[DecisionContext, bool]
    ) -> Primitive:
        if not as_context(ctx).prediction:
            return Primitive.FORWARD
        pressed = self._energy_pressure() if self._energy_pressure else False
        if pressed:
            self.conservative_choices += 1
            return Primitive.SNOOP_THEN_FORWARD
        self.aggressive_choices += 1
        return Primitive.FORWARD_THEN_SNOOP


class Criticality(SnoopingAlgorithm):
    """Criticality-aware snooping: an eighth algorithm beyond the
    paper's seven ("Criticality Aware Multiprocessors" applied to the
    embedded ring).

    The requester's urgency - carried in the decision context as its
    retry count and the MSHR-waiter depth queued behind it - selects
    the flavour per message: a *critical* requester (either count at
    or above its threshold) gets the aggressive Forward-Then-Snoop on
    a positive prediction, so its request is never delayed by snoops;
    a calm requester gets the conservative Snoop-Then-Forward, keeping
    ring traffic at one message.  The supplier predictor is the
    tiebreak in both rows: a trustworthy negative filters the snoop
    entirely, so the predictor must have no false negatives
    (superset/exact/perfect, like the Superset family).

    Under the unloaded regime retries and waiter queues are rare and
    the policy degenerates to Superset Con; under load it spends extra
    snoop bandwidth exactly where stalls pile up.
    ``critical_choices`` counts critical-row decisions (a declared
    counted output, exact on all three cores).
    """

    name = "criticality"
    display_name = "Criticality"
    default_predictor_kind = "superset"
    decouple_writes = True

    #: Default urgency thresholds: any survived squash/retry, or any
    #: same-CMP core already queued behind the request, marks the
    #: requester critical.
    DEFAULT_RETRY_THRESHOLD = 1
    DEFAULT_WAITER_THRESHOLD = 1

    def __init__(
        self,
        retry_threshold: int = DEFAULT_RETRY_THRESHOLD,
        waiter_threshold: int = DEFAULT_WAITER_THRESHOLD,
    ) -> None:
        if retry_threshold < 1 or waiter_threshold < 1:
            raise ValueError("criticality thresholds must be >= 1")
        self.table = DecisionTable(
            on_true=Primitive.SNOOP_THEN_FORWARD,
            on_false=Primitive.FORWARD,
            critical_true=Primitive.FORWARD_THEN_SNOOP,
            critical_false=Primitive.FORWARD,
            retry_threshold=retry_threshold,
            waiter_threshold=waiter_threshold,
            counts="critical",
        )
        self.critical_choices = 0

    def fold_choice_counts(self, count: int) -> None:
        self.critical_choices += count

    def choose(
        self, ctx: Union[DecisionContext, bool]
    ) -> Primitive:
        context = as_context(ctx)
        table = self.table
        assert table is not None
        if table.is_critical(context):
            self.critical_choices += 1
            return (
                table.critical_true
                if context.prediction
                else table.critical_false
            )
        return table.on_true if context.prediction else table.on_false


#: All algorithms by canonical name (kept for direct class access;
#: name resolution goes through :data:`repro.registry.REGISTRY`).
ALGORITHMS: Dict[str, Type[SnoopingAlgorithm]] = {
    cls.name: cls
    for cls in (
        Lazy,
        Eager,
        Oracle,
        Subset,
        SupersetCon,
        SupersetAgg,
        SupersetHybrid,
        Exact,
        Criticality,
    )
}

#: The paper's per-algorithm default predictor (Section 6.1's main
#: comparison), recorded as registry metadata below.  Criticality
#: filters on trusted negatives, so it takes the Superset family's
#: predictor.
_DEFAULT_PREDICTORS: Dict[str, str] = {
    "lazy": "None",
    "eager": "None",
    "oracle": "Perfect",
    "subset": "Sub2k",
    "superset_con": "Supy2k",
    "superset_agg": "Supy2k",
    "superset_hybrid": "Supy2k",
    "exact": "Exa2k",
    "criticality": "Supy2k",
}

_ALGORITHM_ALIASES: Dict[str, Tuple[str, ...]] = {
    "superset_con": ("supersetcon", "supcon"),
    "superset_agg": ("supersetagg", "supagg"),
    "superset_hybrid": ("supersethybrid",),
    "criticality": ("crit", "critical"),
}


def build_algorithm(name: str) -> SnoopingAlgorithm:
    """Instantiate an algorithm by canonical (or alias) name.

    Resolution goes through the component registry, so unknown names
    raise :class:`repro.registry.UnknownComponentError` (a
    ``ValueError`` listing the valid choices).
    """
    return REGISTRY.create("algorithm", name)


def compatible_predictor(
    algorithm: SnoopingAlgorithm, predictor_config: PredictorConfig
) -> bool:
    """Whether ``predictor_config`` provides the guarantees the
    algorithm relies on for correctness.

    An algorithm whose decision table may issue ``Forward`` on a
    negative prediction (Oracle, Superset Con/Agg/Hybrid, Exact,
    Criticality) must never see a false negative, or the single
    supplier would be skipped and the request wrongly serviced by
    memory.  Dynamic policies (no table) conservatively require the
    same guarantee.
    """
    if not algorithm.forwards_on_negative():
        return True
    return predictor_config.kind in ("superset", "exact", "perfect")


#: Predictor kinds safe for an algorithm that forwards on a negative
#: prediction: no false negatives allowed (see compatible_predictor).
_NO_FALSE_NEGATIVE_KINDS: Tuple[str, ...] = ("superset", "exact", "perfect")
_ANY_KIND: Tuple[str, ...] = PredictorConfig.VALID_KINDS

for _cls in ALGORITHMS.values():
    _instance = _cls()
    _table = _instance.decision_table()
    REGISTRY.register(
        "algorithm",
        _cls.name,
        _cls,
        aliases=_ALGORITHM_ALIASES.get(_cls.name, ()),
        metadata={
            "display_name": _cls.display_name,
            "default_predictor": _DEFAULT_PREDICTORS[_cls.name],
            "default_predictor_kind": _cls.default_predictor_kind,
            "decouple_writes": _cls.decouple_writes,
            "compatible_predictor_kinds": (
                _NO_FALSE_NEGATIVE_KINDS
                if _instance.forwards_on_negative()
                else _ANY_KIND
            ),
            "decision_inputs": _instance.decision_inputs(),
            "dynamic_choose": _table is None,
        },
    )
del _cls, _instance, _table

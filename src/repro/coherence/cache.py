"""Set-associative cache model with LRU replacement.

The cache tracks line addresses (integers, already divided by the line
size) and their coherence state.  Data values are modeled as integer
*versions* so the test suite can check that readers always observe the
most recent completed write (see ``MachineConfig.track_versions``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator, List, Optional

from repro.config import CacheConfig
from repro.coherence.states import LineState


class CacheLine:
    """One resident cache line.

    Attributes:
        address: line address (block address, no offset bits).
        state: coherence state; never ``I`` while resident (invalid
            lines are simply absent from the cache).
        version: monotonically increasing data version, used by the
            optional coherence-correctness checker.

    A plain ``__slots__`` class rather than a dataclass: one instance
    is allocated per fill and simulations perform millions of fills,
    so the per-instance ``__dict__`` would dominate the allocation
    profile.
    """

    __slots__ = ("address", "state", "version")

    def __init__(
        self, address: int, state: LineState, version: int = 0
    ) -> None:
        self.address = address
        self.state = state
        self.version = version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CacheLine(address=%#x, state=%s, version=%d)" % (
            self.address,
            self.state,
            self.version,
        )


class EvictionRecord:
    """Describes a line evicted to make room for a fill."""

    __slots__ = ("address", "state", "version", "dirty")

    def __init__(
        self, address: int, state: LineState, version: int
    ) -> None:
        self.address = address
        self.state = state
        self.version = version
        self.dirty = state.dirty

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "EvictionRecord(address=%#x, state=%s, dirty=%r)" % (
            self.address,
            self.state,
            self.dirty,
        )


class SetAssociativeCache:
    """An LRU set-associative cache keyed by line address.

    ``on_state_loss`` is invoked whenever a line leaves the cache or is
    invalidated/downgraded out of a supplier state; the supplier
    predictors subscribe to it to stay synchronized with the cache
    (Section 4.3.1: "when any of these lines is evicted or invalidated,
    the hardware removes the address from the Supplier Predictor").
    """

    def __init__(
        self,
        config: CacheConfig,
        on_state_loss: Optional[Callable[[int], None]] = None,
        on_state_gain: Optional[Callable[[int], None]] = None,
        on_line_added: Optional[Callable[[int], None]] = None,
        on_line_removed: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.config = config
        # num_sets/associativity are dataclass properties; hoisting them
        # to plain ints keeps the per-access set-index computation free
        # of descriptor lookups.
        self._num_sets = config.num_sets
        self._associativity = config.associativity
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        self._on_state_loss = on_state_loss
        self._on_state_gain = on_state_gain
        self._on_line_added = on_line_added
        self._on_line_removed = on_line_removed
        self.fills = 0
        self.evictions = 0
        self.dirty_evictions = 0

    # ------------------------------------------------------------------
    # Lookup

    def _set_for(self, address: int) -> "OrderedDict[int, CacheLine]":
        return self._sets[address % self._num_sets]

    def lookup(self, address: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line, updating LRU order on a hit."""
        cache_set = self._sets[address % self._num_sets]
        line = cache_set.get(address)
        if line is not None and touch:
            cache_set.move_to_end(address)
        return line

    def state_of(self, address: int) -> LineState:
        """Return the line's state, ``I`` if not resident (no LRU touch)."""
        line = self.lookup(address, touch=False)
        return line.state if line is not None else LineState.I

    def __contains__(self, address: int) -> bool:
        return self.lookup(address, touch=False) is not None

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def iter_lines(self) -> Iterator[CacheLine]:
        """Iterate over all resident lines (test/diagnostic use)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    # ------------------------------------------------------------------
    # Mutation

    def fill(
        self, address: int, state: LineState, version: int = 0
    ) -> Optional[EvictionRecord]:
        """Insert a line, evicting the LRU line of the set if full.

        Returns the eviction record of the victim, or ``None`` if no
        eviction was needed.  Filling an already-resident line updates
        its state in place (callers should normally use
        ``set_state`` for that, but fill is tolerant).
        """
        if state is LineState.I:
            raise ValueError("cannot fill a line in state I")
        cache_set = self._sets[address % self._num_sets]
        existing = cache_set.get(address)
        if existing is not None:
            self._change_state(existing, state)
            existing.version = version
            cache_set.move_to_end(address)
            return None

        victim_record: Optional[EvictionRecord] = None
        if len(cache_set) >= self._associativity:
            victim_address, victim = cache_set.popitem(last=False)
            victim_record = EvictionRecord(
                victim_address, victim.state, victim.version
            )
            self.evictions += 1
            if victim_record.dirty:
                self.dirty_evictions += 1
            if victim.state.supplier and self._on_state_loss:
                self._on_state_loss(victim_address)
            if self._on_line_removed:
                self._on_line_removed(victim_address)

        cache_set[address] = CacheLine(address, state, version)
        self.fills += 1
        if self._on_line_added:
            self._on_line_added(address)
        if state.supplier and self._on_state_gain:
            self._on_state_gain(address)
        return victim_record

    def set_state(self, address: int, state: LineState) -> None:
        """Transition a resident line to a new state.

        Transitioning to ``I`` removes the line.  Supplier-state gains
        and losses fire the predictor-synchronization callbacks.
        """
        cache_set = self._sets[address % self._num_sets]
        line = cache_set.get(address)
        if line is None:
            raise KeyError("line %#x not resident" % address)
        if state is LineState.I:
            del cache_set[address]
            if line.state.supplier and self._on_state_loss:
                self._on_state_loss(address)
            if self._on_line_removed:
                self._on_line_removed(address)
            return
        self._change_state(line, state)

    def _change_state(self, line: CacheLine, state: LineState) -> None:
        was_supplier = line.state.supplier
        now_supplier = state.supplier
        line.state = state
        if was_supplier and not now_supplier and self._on_state_loss:
            self._on_state_loss(line.address)
        if now_supplier and not was_supplier and self._on_state_gain:
            self._on_state_gain(line.address)

    def invalidate(self, address: int) -> Optional[CacheLine]:
        """Remove the line if resident; return the removed line."""
        cache_set = self._sets[address % self._num_sets]
        line = cache_set.pop(address, None)
        if line is not None:
            if line.state.supplier and self._on_state_loss:
                self._on_state_loss(address)
            if self._on_line_removed:
                self._on_line_removed(address)
        return line

    def touch(self, address: int) -> None:
        """Mark a line most-recently-used without changing it."""
        cache_set = self._sets[address % self._num_sets]
        if address in cache_set:
            cache_set.move_to_end(address)

    # ------------------------------------------------------------------
    # Diagnostics

    def occupancy_of_set(self, set_index: int) -> int:
        return len(self._sets[set_index])

    def lru_order(self, set_index: int) -> List[int]:
        """Addresses of one set from least- to most-recently used."""
        return list(self._sets[set_index].keys())

"""Coherence line states and the compatibility matrix of Figure 2(b).

The protocol is MESI enhanced with two qualifiers on the Shared state
and a Tagged state:

* ``S``  - plain shared copy; cannot supply data.
* ``SL`` - Shared, Local Master: the one cache per CMP that brought the
  line into the CMP; supplies data to reads from cores in the same CMP.
* ``SG`` - Shared, Global Master: the one cache in the machine that
  brought the line from memory; supplies data to ring snoop requests.
* ``T``  - Tagged: the line is dirty but coherent copies exist in other
  caches; on eviction, a T line is written back to memory.

The *supplier states* - those that answer a read snoop request on the
ring - are SG, E, D and T.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class LineState(enum.Enum):
    """State of one line in one cache."""

    I = "I"  # noqa: E741 - the paper's name for Invalid
    S = "S"
    SL = "SL"
    SG = "SG"
    E = "E"
    D = "D"
    T = "T"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "LineState.%s" % self.name


#: States in which a cache answers a ring read snoop request.
SUPPLIER_STATES: FrozenSet[LineState] = frozenset(
    {LineState.SG, LineState.E, LineState.D, LineState.T}
)

#: States in which a cache supplies data to a read from its own CMP.
LOCAL_MASTER_STATES: FrozenSet[LineState] = frozenset(
    {LineState.SL, LineState.SG, LineState.E, LineState.D, LineState.T}
)

#: States denoting a valid cached copy.
CACHED_STATES: FrozenSet[LineState] = frozenset(
    {
        LineState.S,
        LineState.SL,
        LineState.SG,
        LineState.E,
        LineState.D,
        LineState.T,
    }
)

#: States whose data differs from memory and must be written back.
DIRTY_STATES: FrozenSet[LineState] = frozenset({LineState.D, LineState.T})


# Precomputed classification flags, attached directly to the enum
# members.  ``state in SUPPLIER_STATES`` hashes the enum member through
# ``Enum.__hash__`` (a Python-level call) on every membership test; the
# cache fill/eviction path performs millions of these per simulation,
# so the hot code reads ``state.supplier`` (a plain attribute) instead.
for _state in LineState:
    _state.supplier = _state in SUPPLIER_STATES
    _state.local_master = _state in LOCAL_MASTER_STATES
    _state.dirty = _state in DIRTY_STATES
    _state.cached = _state in CACHED_STATES
del _state


def is_supplier(state: LineState) -> bool:
    """True if a cache in ``state`` answers ring read snoop requests."""
    return state.supplier


def is_local_master(state: LineState) -> bool:
    """True if a cache in ``state`` supplies reads within its CMP."""
    return state.local_master


def is_dirty(state: LineState) -> bool:
    """True if the line's data is newer than memory's copy."""
    return state.dirty


# Compatibility matrix of Figure 2(b).  ``_COMPATIBLE_ANY[a]`` is the
# set of states another cache *in a different CMP* may hold while some
# cache holds the line in state ``a``.  ``_COMPATIBLE_SAME_CMP[a]`` is
# the same for a cache in the *same* CMP; the paper marks with ``*``
# the states that are only compatible across CMPs.
_COMPATIBLE_ANY = {
    LineState.I: CACHED_STATES | {LineState.I},
    LineState.S: frozenset(
        {LineState.I, LineState.S, LineState.SL, LineState.SG, LineState.T}
    ),
    LineState.SL: frozenset(
        {LineState.I, LineState.S, LineState.SL, LineState.SG, LineState.T}
    ),
    LineState.SG: frozenset({LineState.I, LineState.S, LineState.SL}),
    LineState.E: frozenset({LineState.I}),
    LineState.D: frozenset({LineState.I}),
    LineState.T: frozenset({LineState.I, LineState.S, LineState.SL}),
}

_COMPATIBLE_SAME_CMP = {
    LineState.I: CACHED_STATES | {LineState.I},
    LineState.S: frozenset(
        {LineState.I, LineState.S, LineState.SL, LineState.SG, LineState.T}
    ),
    # SL is compatible with SL, SG and T only if they are in a
    # different CMP (one local master per CMP; T implies mastership).
    LineState.SL: frozenset({LineState.I, LineState.S}),
    LineState.SG: frozenset({LineState.I, LineState.S}),
    LineState.E: frozenset({LineState.I}),
    LineState.D: frozenset({LineState.I}),
    LineState.T: frozenset({LineState.I, LineState.S}),
}


def compatible(a: LineState, b: LineState, same_cmp: bool) -> bool:
    """True if two caches may simultaneously hold a line in states
    ``a`` and ``b``, given whether the caches sit in the same CMP.

    This encodes the matrix of Figure 2(b); it is symmetric.
    """
    table = _COMPATIBLE_SAME_CMP if same_cmp else _COMPATIBLE_ANY
    return b in table[a]

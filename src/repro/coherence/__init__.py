"""Cache-coherence substrate: line states, caches, and protocol rules.

This package implements the enhanced MESI protocol of Section 2.2 of
the paper: the usual Invalid (I), Shared (S), Exclusive (E) and Dirty
(D) states, plus the Global Master (SG) and Local Master (SL)
qualifiers of the Shared state and the Tagged (T) state used to share
dirty data.
"""

from repro.coherence.states import (
    LineState,
    SUPPLIER_STATES,
    LOCAL_MASTER_STATES,
    CACHED_STATES,
    is_supplier,
    is_local_master,
    compatible,
)
from repro.coherence.cache import CacheLine, SetAssociativeCache
from repro.coherence.protocol import (
    CoherenceError,
    ProtocolTables,
    supplier_next_state_on_read,
    requester_state_from_cache,
    requester_state_from_memory,
)

__all__ = [
    "LineState",
    "SUPPLIER_STATES",
    "LOCAL_MASTER_STATES",
    "CACHED_STATES",
    "is_supplier",
    "is_local_master",
    "compatible",
    "CacheLine",
    "SetAssociativeCache",
    "CoherenceError",
    "ProtocolTables",
    "supplier_next_state_on_read",
    "requester_state_from_cache",
    "requester_state_from_memory",
]

"""Protocol-level transition rules of the enhanced MESI protocol.

These pure functions encode the state-transition conventions of
Section 2.2 of the paper:

* The cache that brought a line from memory retains the *Global
  Master* qualifier (SG) until eviction or invalidation, so a supplier
  in E or SG keeps global mastership after supplying a read.
* A dirty supplier (D) that supplies a read transitions to Tagged (T):
  the data stays dirty but coherent copies now exist elsewhere.
* The cache that brings a line into a CMP from outside retains the
  *Local Master* qualifier (SL).

The :class:`ProtocolTables` helper validates a global snapshot of all
cache states against the compatibility matrix, and is used by tests
and the optional runtime invariant checker.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.coherence.states import (
    LineState,
    SUPPLIER_STATES,
    LOCAL_MASTER_STATES,
    compatible,
)


class CoherenceError(Exception):
    """Raised when a coherence invariant is violated."""


def supplier_next_state_on_read(state: LineState) -> LineState:
    """State of the supplier cache after it services a ring read.

    The supplier keeps mastership: SG stays SG, E (clean exclusive)
    becomes SG once a second copy exists, D becomes T (dirty shared),
    and T stays T.
    """
    if state == LineState.SG:
        return LineState.SG
    if state == LineState.E:
        return LineState.SG
    if state == LineState.D:
        return LineState.T
    if state == LineState.T:
        return LineState.T
    raise CoherenceError("state %s cannot supply a ring read" % state.name)


def requester_state_from_cache() -> LineState:
    """State acquired by a requester whose read was satisfied by a
    cache in another CMP.

    The requester brought the line into its CMP from outside, so it
    becomes the CMP's Local Master (SL).  Global mastership stays with
    the supplier.
    """
    return LineState.SL


def requester_state_from_memory(other_copies_exist: bool) -> LineState:
    """State acquired by a requester whose read was satisfied by memory.

    With no other cached copies the line is Exclusive (E).  If plain
    shared copies survive somewhere (the previous global master was
    evicted), the requester becomes the new Global Master (SG).
    """
    return LineState.SG if other_copies_exist else LineState.E


def local_reader_state() -> LineState:
    """State acquired by a core whose read hit a local master in its
    own CMP: a plain shared copy (the local master keeps SL)."""
    return LineState.S


def writer_state() -> LineState:
    """State acquired by a writer after its invalidation completes."""
    return LineState.D


def downgrade_state(state: LineState) -> Tuple[LineState, bool]:
    """Downgrade used by the Exact predictor on conflict evictions
    (Section 4.3.3).

    Returns ``(new_state, needs_writeback)``: SG and E are silently
    downgraded to SL; D and T are written back to memory and kept in
    SL.
    """
    if state in (LineState.SG, LineState.E):
        return LineState.SL, False
    if state in (LineState.D, LineState.T):
        return LineState.SL, True
    raise CoherenceError("cannot downgrade non-supplier state %s" % state.name)


class ProtocolTables:
    """Validation helpers over a global snapshot of cache states.

    A snapshot maps ``(cmp_id, core_id) -> LineState`` for one line.
    """

    @staticmethod
    def check_line(
        states: Dict[Tuple[int, int], LineState], address: int = 0
    ) -> None:
        """Raise :class:`CoherenceError` if the snapshot violates the
        compatibility matrix or the mastership invariants."""
        holders: List[Tuple[Tuple[int, int], LineState]] = [
            (key, state)
            for key, state in states.items()
            if state != LineState.I
        ]

        suppliers = [k for k, s in holders if s in SUPPLIER_STATES]
        if len(suppliers) > 1:
            raise CoherenceError(
                "line %#x has %d global suppliers: %s"
                % (address, len(suppliers), suppliers)
            )

        masters_per_cmp: Dict[int, List[Tuple[int, int]]] = {}
        for key, state in holders:
            if state in LOCAL_MASTER_STATES:
                masters_per_cmp.setdefault(key[0], []).append(key)
        for cmp_id, masters in masters_per_cmp.items():
            if len(masters) > 1:
                raise CoherenceError(
                    "line %#x has %d local masters in CMP %d: %s"
                    % (address, len(masters), cmp_id, masters)
                )

        for i, (key_a, state_a) in enumerate(holders):
            for key_b, state_b in holders[i + 1 :]:
                same_cmp = key_a[0] == key_b[0]
                if not compatible(state_a, state_b, same_cmp=same_cmp):
                    raise CoherenceError(
                        "line %#x: incompatible states %s@%s and %s@%s"
                        % (address, state_a.name, key_a, state_b.name, key_b)
                    )

    @staticmethod
    def is_consistent(states: Dict[Tuple[int, int], LineState]) -> bool:
        """Boolean form of :meth:`check_line`."""
        try:
            ProtocolTables.check_line(states)
        except CoherenceError:
            return False
        return True

"""Converters from external simulator trace formats.

The paper's evaluation is trace-driven; related infrastructures dump
per-access text traces (gem5's ``--debug-flags=MemoryAccess`` style
CSV, ChampSim's decoded LLC access logs).  This module converts those
dumps into the native ``flexsnoop-trace`` format so the simulator can
replay real-application streams through :class:`FileReplaySource`.

Supported input formats (one access per line, ``#`` comments and
blank lines ignored):

``gem5``
    ``tick,cpu,r|w,address`` - e.g. ``1000,0,r,0x1a2b40``.  Ticks
    are converted to cycles via ``ticks_per_cycle`` (gem5's default
    resolution is 1 ps, i.e. 1000 ticks per cycle at 1 GHz); the gap
    between a CPU's consecutive accesses becomes the think time.

``champsim``
    ``cpu instr_id r|w address`` (whitespace-separated) - the
    instruction-count gap between a CPU's consecutive accesses
    approximates the think time in cycles.

Byte addresses (``0x`` or decimal) are converted to line addresses
with ``line_bytes`` (default 64).  Conversion is two-pass and
bounded-memory: pass 1 counts cores and accesses, pass 2 streams
chunked v2 records with at most one chunk buffered per core.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.workloads.io import (
    DEFAULT_CHUNK_ACCESSES,
    FORMAT_NAME,
    FORMAT_VERSION,
    TraceFormatError,
)
from repro.workloads.trace import Access, WorkloadTrace

__all__ = [
    "EXTERNAL_FORMATS",
    "iter_external_accesses",
    "convert_trace",
    "load_external_trace",
    "external_trace_source",
]

#: Formats :func:`convert_trace` understands.
EXTERNAL_FORMATS = ("gem5", "champsim")

#: gem5's default tick resolution is 1 ps; at a 1 GHz core clock one
#: cycle is 1000 ticks.
DEFAULT_TICKS_PER_CYCLE = 1000


def _parse_address(text: str) -> int:
    return int(text, 16) if text.lower().startswith("0x") else int(text)


def _parse_rw(text: str) -> bool:
    kind = text.strip().lower()
    if kind in ("r", "read", "ld", "load"):
        return False
    if kind in ("w", "write", "st", "store"):
        return True
    raise ValueError("unknown access kind %r" % text)


def iter_external_accesses(
    path: Union[str, Path],
    fmt: str,
    line_bytes: int = 64,
    ticks_per_cycle: int = DEFAULT_TICKS_PER_CYCLE,
) -> Iterator[Tuple[int, Access]]:
    """Yield ``(cpu, access)`` pairs from an external trace file.

    Single streaming pass; think times are derived from per-cpu time
    gaps, so each cpu's first access has think time 0.  Malformed
    lines raise ``path:line``-positioned :class:`TraceFormatError`.
    """
    if fmt not in EXTERNAL_FORMATS:
        raise ValueError(
            "unknown external trace format %r; known: %s"
            % (fmt, ", ".join(EXTERNAL_FORMATS))
        )
    if line_bytes <= 0:
        raise ValueError("line_bytes must be positive")
    if ticks_per_cycle <= 0:
        raise ValueError("ticks_per_cycle must be positive")
    divisor = ticks_per_cycle if fmt == "gem5" else 1
    path_str = str(path)
    last_time: Dict[int, int] = {}
    with open(path_str, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            fields = (
                [f.strip() for f in text.split(",")]
                if fmt == "gem5"
                else text.split()
            )
            if len(fields) != 4:
                raise TraceFormatError(
                    "%s:%d: expected 4 %s fields, got %d"
                    % (path_str, lineno, fmt, len(fields))
                )
            try:
                if fmt == "gem5":
                    time_text, cpu_text, kind_text, addr_text = fields
                else:
                    cpu_text, time_text, kind_text, addr_text = fields
                when = int(time_text)
                cpu = int(cpu_text)
                is_write = _parse_rw(kind_text)
                address = _parse_address(addr_text) // line_bytes
                if cpu < 0:
                    raise ValueError("negative cpu %d" % cpu)
                previous = last_time.get(cpu)
                think = (
                    0
                    if previous is None
                    else max(0, (when - previous) // divisor)
                )
                last_time[cpu] = when
                yield cpu, Access(
                    address=address,
                    is_write=is_write,
                    think_time=think,
                )
            except (TypeError, ValueError) as exc:
                raise TraceFormatError(
                    "%s:%d: bad %s record %r: %s"
                    % (path_str, lineno, fmt, text, exc)
                ) from exc


def _shape(
    path: Union[str, Path],
    fmt: str,
    line_bytes: int,
    ticks_per_cycle: int,
    cores_per_cmp: int,
) -> Tuple[int, List[int]]:
    """Pass 1: (padded core count, per-core access counts)."""
    counts: Dict[int, int] = {}
    for cpu, _access in iter_external_accesses(
        path, fmt, line_bytes=line_bytes, ticks_per_cycle=ticks_per_cycle
    ):
        counts[cpu] = counts.get(cpu, 0) + 1
    if not counts:
        raise TraceFormatError(
            "no accesses found in %s trace %s" % (fmt, path)
        )
    num_cores = max(counts) + 1
    # Pad to a whole number of CMPs; the extra cores are idle.
    remainder = num_cores % cores_per_cmp
    if remainder:
        num_cores += cores_per_cmp - remainder
    return num_cores, [counts.get(i, 0) for i in range(num_cores)]


def convert_trace(
    src: Union[str, Path],
    dst: Union[str, Path],
    fmt: str,
    *,
    cores_per_cmp: int = 1,
    line_bytes: int = 64,
    ticks_per_cycle: int = DEFAULT_TICKS_PER_CYCLE,
    name: Optional[str] = None,
    chunk_size: int = DEFAULT_CHUNK_ACCESSES,
) -> Tuple[int, int]:
    """Convert an external trace file to ``flexsnoop-trace`` v2.

    Two streaming passes over ``src``; peak memory is one
    ``chunk_size`` buffer per core regardless of trace length.
    Returns ``(num_cores, total_accesses)``.
    """
    if cores_per_cmp <= 0:
        raise ValueError("cores_per_cmp must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    num_cores, counts = _shape(
        src, fmt, line_bytes, ticks_per_cycle, cores_per_cmp
    )
    total = sum(counts)
    if name is None:
        name = "%s:%s" % (fmt, Path(src).name)
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": name,
        "cores_per_cmp": cores_per_cmp,
        "num_cores": num_cores,
        "total_accesses": total,
    }
    buffers: List[List[List[int]]] = [[] for _ in range(num_cores)]
    with open(str(dst), "w", encoding="utf-8") as out:
        out.write(json.dumps(header) + "\n")

        def flush(core: int) -> None:
            if buffers[core]:
                out.write(
                    json.dumps(
                        {"core": core, "accesses": buffers[core]}
                    )
                    + "\n"
                )
                buffers[core] = []

        for cpu, access in iter_external_accesses(
            src,
            fmt,
            line_bytes=line_bytes,
            ticks_per_cycle=ticks_per_cycle,
        ):
            buffers[cpu].append(
                [access.address, int(access.is_write), access.think_time]
            )
            if len(buffers[cpu]) >= chunk_size:
                flush(cpu)
        for core in range(num_cores):
            flush(core)
    return num_cores, total


def load_external_trace(
    path: Union[str, Path],
    fmt: str,
    *,
    cores_per_cmp: int = 1,
    line_bytes: int = 64,
    ticks_per_cycle: int = DEFAULT_TICKS_PER_CYCLE,
    name: Optional[str] = None,
) -> WorkloadTrace:
    """Materialize an external trace as a :class:`WorkloadTrace`.

    Convenient for small traces (``--workload gem5:<path>``); convert
    large files once with ``flexsnoop trace convert`` and replay the
    result via ``file:`` to stay in bounded memory.
    """
    traces: List[List[Access]] = []
    for cpu, access in iter_external_accesses(
        path, fmt, line_bytes=line_bytes, ticks_per_cycle=ticks_per_cycle
    ):
        while len(traces) <= cpu:
            traces.append([])
        traces[cpu].append(access)
    if not traces:
        raise TraceFormatError(
            "no accesses found in %s trace %s" % (fmt, path)
        )
    while len(traces) % cores_per_cmp:
        traces.append([])
    if name is None:
        name = "%s:%s" % (fmt, Path(path).name)
    workload = WorkloadTrace(
        name=name, cores_per_cmp=cores_per_cmp, traces=traces
    )
    workload.validate()
    return workload


def external_trace_source(
    path: Union[str, Path], fmt: str, **kwargs: object
):
    """Build a source for a ``gem5:``/``champsim:`` workload spec.

    The descriptor hashes the *source file's* bytes plus the
    conversion parameters, so converted runs share result-cache
    entries with later runs of the same input.
    """
    import hashlib

    from repro.workloads.source import TraceSource

    digest = hashlib.sha256()
    with open(str(path), "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    trace = load_external_trace(path, fmt, **kwargs)  # type: ignore[arg-type]
    descriptor = {
        "kind": fmt,
        "sha256": digest.hexdigest(),
        "cores_per_cmp": trace.cores_per_cmp,
        "num_cores": trace.num_cores,
        "params": {
            key: kwargs[key]
            for key in sorted(kwargs)
            if key != "name"
        },
    }
    return TraceSource(trace, descriptor=descriptor)

"""Per-application SPLASH-2 profiles.

The paper simulates 11 SPLASH-2 applications (all but Volrend) and
reports SPLASH-2 bars as means over them.  The aggregate profile in
:mod:`repro.workloads.profiles` stands in for that mean; this module
additionally provides one profile per application, parameterized to
each program's published sharing characterization (Woo et al.,
ISCA 1995, plus the coherence-traffic folklore those kernels
established):

========  ==========================================================
barnes    irregular octree sharing; migratory bodies, high reuse
cholesky  task-queue factorization; producer-consumer panels
fft       all-to-all transpose; producer-consumer, streaming, low reuse
fmm       barnes-like but with better locality
lu        blocked factorization; one-writer many-reader panels
ocean     nearest-neighbour grids; big working set, capacity misses
radiosity task stealing; heavily migratory scene patches
radix     permutation phase writes; streaming + producer-consumer
raytrace  read-mostly shared scene; task queue
water-ns  migratory molecule records, all-pairs interactions
water-sp  water with spatial decomposition: more locality
========  ==========================================================

Each runs the paper's SPLASH-2 configuration: 32 cores, 4 per CMP.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.synthetic import SharingProfile
from repro.workloads.trace import WorkloadTrace
from repro.workloads.synthetic import generate_workload

#: Paper configuration for SPLASH-2 runs.
_CORES = 32
_CORES_PER_CMP = 4


def _app(
    name: str,
    seed: int,
    *,
    p_shared: float,
    p_cold: float,
    shared_lines: int,
    private_lines: int,
    write_fraction_shared: float,
    migratory_fraction: float,
    producer_consumer_fraction: float,
    zipf_exponent: float,
    burst_mean: float,
    accesses_per_core: int,
) -> SharingProfile:
    return SharingProfile(
        name="splash2/%s" % name,
        num_cores=_CORES,
        cores_per_cmp=_CORES_PER_CMP,
        accesses_per_core=accesses_per_core,
        p_shared=p_shared,
        p_cold=p_cold,
        shared_lines=shared_lines,
        private_lines=private_lines,
        write_fraction_shared=write_fraction_shared,
        write_fraction_private=0.3,
        migratory_fraction=migratory_fraction,
        producer_consumer_fraction=producer_consumer_fraction,
        zipf_exponent=zipf_exponent,
        private_zipf_exponent=1.5,
        burst_mean=burst_mean,
        prewarm_fraction=0.35,
        think_mean=140.0,
        seed=seed,
    )


def barnes(
    accesses_per_core: int = 1500, seed: int = 101
) -> SharingProfile:
    return _app(
        "barnes", seed,
        p_shared=0.45, p_cold=0.02, shared_lines=2048,
        private_lines=1500, write_fraction_shared=0.12,
        migratory_fraction=0.12, producer_consumer_fraction=0.08,
        zipf_exponent=1.0, burst_mean=6.0,
        accesses_per_core=accesses_per_core,
    )


def cholesky(
    accesses_per_core: int = 1500, seed: int = 102
) -> SharingProfile:
    return _app(
        "cholesky", seed,
        p_shared=0.35, p_cold=0.05, shared_lines=2048,
        private_lines=2000, write_fraction_shared=0.10,
        migratory_fraction=0.05, producer_consumer_fraction=0.25,
        zipf_exponent=0.8, burst_mean=5.0,
        accesses_per_core=accesses_per_core,
    )


def fft(
    accesses_per_core: int = 1500, seed: int = 103
) -> SharingProfile:
    return _app(
        "fft", seed,
        p_shared=0.30, p_cold=0.10, shared_lines=4096,
        private_lines=2500, write_fraction_shared=0.08,
        migratory_fraction=0.0, producer_consumer_fraction=0.35,
        zipf_exponent=0.4, burst_mean=3.0,
        accesses_per_core=accesses_per_core,
    )


def fmm(
    accesses_per_core: int = 1500, seed: int = 104
) -> SharingProfile:
    return _app(
        "fmm", seed,
        p_shared=0.35, p_cold=0.02, shared_lines=2048,
        private_lines=2000, write_fraction_shared=0.10,
        migratory_fraction=0.08, producer_consumer_fraction=0.10,
        zipf_exponent=1.0, burst_mean=7.0,
        accesses_per_core=accesses_per_core,
    )


def lu(
    accesses_per_core: int = 1500, seed: int = 105
) -> SharingProfile:
    return _app(
        "lu", seed,
        p_shared=0.40, p_cold=0.02, shared_lines=2048,
        private_lines=1500, write_fraction_shared=0.06,
        migratory_fraction=0.0, producer_consumer_fraction=0.30,
        zipf_exponent=0.7, burst_mean=8.0,
        accesses_per_core=accesses_per_core,
    )


def ocean(
    accesses_per_core: int = 1500, seed: int = 106
) -> SharingProfile:
    return _app(
        "ocean", seed,
        p_shared=0.30, p_cold=0.12, shared_lines=4096,
        private_lines=4000, write_fraction_shared=0.15,
        migratory_fraction=0.04, producer_consumer_fraction=0.15,
        zipf_exponent=0.5, burst_mean=4.0,
        accesses_per_core=accesses_per_core,
    )


def radiosity(
    accesses_per_core: int = 1500, seed: int = 107
) -> SharingProfile:
    return _app(
        "radiosity", seed,
        p_shared=0.45, p_cold=0.02, shared_lines=1536,
        private_lines=1500, write_fraction_shared=0.15,
        migratory_fraction=0.22, producer_consumer_fraction=0.08,
        zipf_exponent=1.0, burst_mean=5.0,
        accesses_per_core=accesses_per_core,
    )


def radix(
    accesses_per_core: int = 1500, seed: int = 108
) -> SharingProfile:
    return _app(
        "radix", seed,
        p_shared=0.25, p_cold=0.15, shared_lines=4096,
        private_lines=3000, write_fraction_shared=0.30,
        migratory_fraction=0.0, producer_consumer_fraction=0.30,
        zipf_exponent=0.3, burst_mean=2.0,
        accesses_per_core=accesses_per_core,
    )


def raytrace(
    accesses_per_core: int = 1500, seed: int = 109
) -> SharingProfile:
    return _app(
        "raytrace", seed,
        p_shared=0.50, p_cold=0.03, shared_lines=3072,
        private_lines=1500, write_fraction_shared=0.03,
        migratory_fraction=0.04, producer_consumer_fraction=0.05,
        zipf_exponent=0.9, burst_mean=6.0,
        accesses_per_core=accesses_per_core,
    )


def water_nsquared(
    accesses_per_core: int = 1500, seed: int = 110
) -> SharingProfile:
    return _app(
        "water-nsquared", seed,
        p_shared=0.40, p_cold=0.02, shared_lines=1536,
        private_lines=1500, write_fraction_shared=0.12,
        migratory_fraction=0.25, producer_consumer_fraction=0.05,
        zipf_exponent=0.8, burst_mean=5.0,
        accesses_per_core=accesses_per_core,
    )


def water_spatial(
    accesses_per_core: int = 1500, seed: int = 111
) -> SharingProfile:
    return _app(
        "water-spatial", seed,
        p_shared=0.32, p_cold=0.02, shared_lines=1536,
        private_lines=1500, write_fraction_shared=0.10,
        migratory_fraction=0.15, producer_consumer_fraction=0.08,
        zipf_exponent=0.9, burst_mean=7.0,
        accesses_per_core=accesses_per_core,
    )


#: The 11 applications of the paper's SPLASH-2 runs.
SPLASH2_APPS: Dict[str, Callable[..., SharingProfile]] = {
    "barnes": barnes,
    "cholesky": cholesky,
    "fft": fft,
    "fmm": fmm,
    "lu": lu,
    "ocean": ocean,
    "radiosity": radiosity,
    "radix": radix,
    "raytrace": raytrace,
    "water-nsquared": water_nsquared,
    "water-spatial": water_spatial,
}


def build_app_workload(
    app: str, accesses_per_core: int = 0, seed: int = 0
) -> WorkloadTrace:
    """Generate the trace for one SPLASH-2 application profile."""
    if app not in SPLASH2_APPS:
        raise ValueError(
            "unknown SPLASH-2 app %r; known: %s"
            % (app, ", ".join(sorted(SPLASH2_APPS)))
        )
    factory = SPLASH2_APPS[app]
    kwargs = {}
    if accesses_per_core:
        kwargs["accesses_per_core"] = accesses_per_core
    if seed:
        kwargs["seed"] = seed
    return generate_workload(factory(**kwargs))


def geometric_mean(values: List[float]) -> float:
    """Geometric mean, as the paper uses for its SPLASH-2 bars."""
    if not values:
        raise ValueError("nothing to average")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))

"""Workload traces and synthetic generators.

The paper evaluates SPLASH-2, SPECjbb 2000 and SPECweb 2005.  Those
binaries (and the execution-driven SESC/Simics infrastructure that ran
them) are not available, so this package provides a parameterised
synthetic generator plus per-workload *profiles* calibrated to the
sharing behaviour the paper reports (see DESIGN.md, "Substitutions").
"""

from repro.workloads.trace import Access, CoreTrace, WorkloadTrace
from repro.workloads.synthetic import SharingProfile, generate_workload
from repro.workloads.profiles import (
    WORKLOAD_PROFILES,
    splash2_profile,
    specjbb_profile,
    specweb_profile,
    build_workload,
)
from repro.workloads.io import load_trace, save_trace
from repro.workloads.splash2_apps import (
    SPLASH2_APPS,
    build_app_workload,
)

__all__ = [
    "Access",
    "CoreTrace",
    "WorkloadTrace",
    "SharingProfile",
    "generate_workload",
    "WORKLOAD_PROFILES",
    "splash2_profile",
    "specjbb_profile",
    "specweb_profile",
    "build_workload",
    "load_trace",
    "save_trace",
    "SPLASH2_APPS",
    "build_app_workload",
]

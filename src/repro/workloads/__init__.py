"""Workload traces and synthetic generators.

The paper evaluates SPLASH-2, SPECjbb 2000 and SPECweb 2005.  Those
binaries (and the execution-driven SESC/Simics infrastructure that ran
them) are not available, so this package provides a parameterised
synthetic generator plus per-workload *profiles* calibrated to the
sharing behaviour the paper reports (see DESIGN.md, "Substitutions").

Every consumer of a workload goes through the :class:`WorkloadSource`
seam (:mod:`repro.workloads.source`): synthetic profiles, saved JSONL
trace files and converted external (gem5/ChampSim) traces all resolve
to the same lazily-streamed per-core access interface.
"""

from repro.workloads.trace import Access, CoreTrace, WorkloadTrace
from repro.workloads.synthetic import SharingProfile, generate_workload
from repro.workloads.profiles import (
    WORKLOAD_PROFILES,
    splash2_profile,
    specjbb_profile,
    specweb_profile,
    build_workload,
)
from repro.workloads.io import (
    TraceFormatError,
    load_trace,
    read_header,
    save_trace,
    scan_trace,
)
from repro.workloads.source import (
    FileReplaySource,
    SyntheticSource,
    TraceSource,
    WorkloadSource,
    as_source,
    descriptor_key,
    resolve_source,
)
from repro.workloads.convert import (
    convert_trace,
    external_trace_source,
    load_external_trace,
)
from repro.workloads.splash2_apps import (
    SPLASH2_APPS,
    build_app_workload,
)

__all__ = [
    "Access",
    "CoreTrace",
    "WorkloadTrace",
    "SharingProfile",
    "generate_workload",
    "WORKLOAD_PROFILES",
    "splash2_profile",
    "specjbb_profile",
    "specweb_profile",
    "build_workload",
    "TraceFormatError",
    "load_trace",
    "read_header",
    "save_trace",
    "scan_trace",
    "WorkloadSource",
    "TraceSource",
    "SyntheticSource",
    "FileReplaySource",
    "as_source",
    "descriptor_key",
    "resolve_source",
    "convert_trace",
    "external_trace_source",
    "load_external_trace",
    "SPLASH2_APPS",
    "build_app_workload",
]

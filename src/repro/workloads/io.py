"""Trace file I/O: the ``flexsnoop-trace`` JSONL format.

Serializes :class:`WorkloadTrace` objects so traces can be generated
once and replayed across many simulator configurations - or produced
by external tools (a Pin tool, gem5, ChampSim via ``flexsnoop trace
convert``) and fed to this package.

Format v2 (one JSON document per line)::

    {"format": "flexsnoop-trace", "version": 2, "name": ...,
     "cores_per_cmp": ..., "num_cores": ..., "total_accesses": ...}
    {"core": 0, "accesses": [[address, w, think], ...]}   # <= chunk
    {"core": 0, "accesses": [...]}                        # ... more
    {"core": 1, "accesses": [...]}
    {"core": 0, "prewarm": [...]}                         # optional

``w`` is 0/1; addresses are line addresses (byte address divided by
the line size).  A core's accesses are split across *chunk* records
(:data:`DEFAULT_CHUNK_ACCESSES` each) so readers never need one giant
line per core: :func:`scan_trace` indexes the chunk offsets in one
bounded-memory pass and :func:`iter_core_accesses` replays a core by
seeking chunk to chunk.  The header's ``total_accesses`` makes
truncation detectable.  Version 1 files (one combined record per
core, no totals) remain fully readable.

All malformed-input errors are :class:`TraceFormatError` and carry
``path:line`` positions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple, Union

from repro.workloads.trace import Access, WorkloadTrace

FORMAT_NAME = "flexsnoop-trace"
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

#: Accesses per chunk record written by :func:`save_trace`.
DEFAULT_CHUNK_ACCESSES = 4096


class TraceFormatError(ValueError):
    """Raised when a trace file does not match the expected format."""


def save_trace(
    workload: WorkloadTrace,
    path: Union[str, Path],
    chunk_size: int = DEFAULT_CHUNK_ACCESSES,
) -> None:
    """Write a workload trace to ``path`` (JSON-lines, format v2)."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    workload.validate()
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": workload.name,
            "cores_per_cmp": workload.cores_per_cmp,
            "num_cores": workload.num_cores,
            "total_accesses": workload.total_accesses,
        }
        handle.write(json.dumps(header) + "\n")
        for core, trace in enumerate(workload.traces):
            for start in range(0, len(trace), chunk_size):
                record = {
                    "core": core,
                    "accesses": [
                        [a.address, int(a.is_write), a.think_time]
                        for a in trace[start:start + chunk_size]
                    ],
                }
                handle.write(json.dumps(record) + "\n")
        if workload.prewarm:
            for core, lines in enumerate(workload.prewarm):
                handle.write(
                    json.dumps({"core": core, "prewarm": list(lines)})
                    + "\n"
                )


# ----------------------------------------------------------------------
# Streaming reader infrastructure


def _error(path: object, lineno: int, message: str) -> TraceFormatError:
    return TraceFormatError("%s:%d: %s" % (path, lineno, message))


def _parse_header(path: object, raw: bytes) -> Dict[str, Any]:
    try:
        header = json.loads(raw)
    except ValueError as exc:
        raise _error(path, 1, "bad trace header: %s" % exc) from exc
    if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
        raise _error(path, 1, "not a %s file" % FORMAT_NAME)
    version = header.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise _error(
            path,
            1,
            "unsupported trace version %r (supported: %s)"
            % (version, ", ".join(str(v) for v in SUPPORTED_VERSIONS)),
        )
    for key in ("name", "cores_per_cmp", "num_cores"):
        if key not in header:
            raise _error(path, 1, "header is missing %r" % key)
    num_cores = header["num_cores"]
    cores_per_cmp = header["cores_per_cmp"]
    if (
        not isinstance(num_cores, int)
        or not isinstance(cores_per_cmp, int)
        or num_cores <= 0
        or cores_per_cmp <= 0
        or num_cores % cores_per_cmp
    ):
        raise _error(
            path,
            1,
            "bad geometry: num_cores=%r cores_per_cmp=%r"
            % (num_cores, cores_per_cmp),
        )
    return header


def _parse_record(
    path: object, lineno: int, raw: bytes, num_cores: int
) -> Dict[str, Any]:
    try:
        record = json.loads(raw)
    except ValueError as exc:
        raise _error(
            path, lineno, "bad trace record: %s" % exc
        ) from exc
    if not isinstance(record, dict):
        raise _error(path, lineno, "trace record is not an object")
    core = record.get("core")
    if not isinstance(core, int) or not 0 <= core < num_cores:
        raise _error(
            path,
            lineno,
            "core %r out of range (trace has %d cores)"
            % (core, num_cores),
        )
    return record


def _record_accesses(
    path: object, lineno: int, record: Dict[str, Any]
) -> Iterator[Access]:
    items = record.get("accesses", ())
    if not isinstance(items, list):
        raise _error(path, lineno, "accesses is not a list")
    for item in items:
        try:
            address, is_write, think = item
            yield Access(
                address=address,
                is_write=bool(is_write),
                think_time=think,
            )
        except (TypeError, ValueError) as exc:
            raise _error(
                path, lineno, "bad access %r: %s" % (item, exc)
            ) from exc


@dataclass
class TraceScan:
    """Everything one streaming pass over a trace file learns.

    ``chunks[core]`` lists the ``(byte_offset, lineno)`` of each of
    the core's access records, in file order, so a replay can seek
    straight to them; nothing access-sized is retained.
    """

    path: str
    version: int
    name: str
    cores_per_cmp: int
    num_cores: int
    total_accesses: int
    sha256: str
    chunks: List[List[Tuple[int, int]]] = field(default_factory=list)
    prewarm: List[List[int]] = field(default_factory=list)


def scan_trace(path: Union[str, Path]) -> TraceScan:
    """Index a trace file in one bounded-memory pass.

    Validates the header and every record's shape, counts accesses
    per core (checking the v2 header total), collects the prewarm
    lists and hashes the raw bytes.  Per-access values are validated
    lazily during replay; the scan only touches record structure, so
    it stays cheap relative to simulation.
    """
    path_str = str(path)
    digest = hashlib.sha256()
    with open(path_str, "rb") as handle:
        offset = 0
        raw = handle.readline()
        digest.update(raw)
        if not raw:
            raise TraceFormatError("empty trace file: %s" % path_str)
        header = _parse_header(path_str, raw)
        num_cores = header["num_cores"]
        chunks: List[List[Tuple[int, int]]] = [
            [] for _ in range(num_cores)
        ]
        prewarm: List[List[int]] = [[] for _ in range(num_cores)]
        saw_prewarm = False
        counted = 0
        lineno = 1
        offset += len(raw)
        while True:
            raw = handle.readline()
            if not raw:
                break
            digest.update(raw)
            lineno += 1
            if not raw.strip():
                raise _error(path_str, lineno, "blank line in trace")
            record = _parse_record(path_str, lineno, raw, num_cores)
            core = record["core"]
            if "accesses" in record:
                items = record["accesses"]
                if not isinstance(items, list):
                    raise _error(
                        path_str, lineno, "accesses is not a list"
                    )
                chunks[core].append((offset, lineno))
                counted += len(items)
            if "prewarm" in record:
                lines = record["prewarm"]
                if not isinstance(lines, list):
                    raise _error(
                        path_str, lineno, "prewarm is not a list"
                    )
                saw_prewarm = True
                prewarm[core].extend(lines)
            offset += len(raw)
    declared = header.get("total_accesses")
    if declared is not None and declared != counted:
        raise _error(
            path_str,
            lineno,
            "trace is truncated: header declares %s accesses, found %d"
            % (declared, counted),
        )
    return TraceScan(
        path=path_str,
        version=header["version"],
        name=header["name"],
        cores_per_cmp=header["cores_per_cmp"],
        num_cores=num_cores,
        total_accesses=counted,
        sha256=digest.hexdigest(),
        chunks=chunks,
        prewarm=prewarm if saw_prewarm else [],
    )


def iter_core_accesses(
    scan: TraceScan, core: int
) -> Iterator[Access]:
    """Stream one core's accesses from a scanned trace file.

    Opens its own handle (many cores stream concurrently during a
    simulation) and holds at most one decoded chunk at a time.
    """
    offsets = scan.chunks[core]
    if not offsets:
        return
    with open(scan.path, "rb") as handle:
        for offset, lineno in offsets:
            handle.seek(offset)
            raw = handle.readline()
            record = _parse_record(scan.path, lineno, raw, scan.num_cores)
            yield from _record_accesses(scan.path, lineno, record)


def read_header(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and validate just the header line (cheap geometry peek)."""
    path_str = str(path)
    with open(path_str, "rb") as handle:
        raw = handle.readline()
    if not raw:
        raise TraceFormatError("empty trace file: %s" % path_str)
    return _parse_header(path_str, raw)


def load_trace(path: Union[str, Path]) -> WorkloadTrace:
    """Read a workload trace written by :func:`save_trace` (v1 or v2).

    Streams record by record, validating incrementally - a malformed
    line raises a ``path:line``-positioned :class:`TraceFormatError`
    immediately, before later records are even parsed.
    """
    path_str = str(path)
    with open(path_str, "rb") as handle:
        raw = handle.readline()
        if not raw:
            raise TraceFormatError("empty trace file: %s" % path_str)
        header = _parse_header(path_str, raw)
        num_cores = header["num_cores"]
        traces: List[List[Access]] = [[] for _ in range(num_cores)]
        prewarm: List[List[int]] = [[] for _ in range(num_cores)]
        saw_prewarm = False
        counted = 0
        lineno = 1
        while True:
            raw = handle.readline()
            if not raw:
                break
            lineno += 1
            if not raw.strip():
                raise _error(path_str, lineno, "blank line in trace")
            record = _parse_record(path_str, lineno, raw, num_cores)
            core = record["core"]
            if "accesses" in record:
                before = len(traces[core])
                traces[core].extend(
                    _record_accesses(path_str, lineno, record)
                )
                counted += len(traces[core]) - before
            if "prewarm" in record:
                lines = record["prewarm"]
                if not isinstance(lines, list):
                    raise _error(
                        path_str, lineno, "prewarm is not a list"
                    )
                saw_prewarm = True
                prewarm[core].extend(lines)
    declared = header.get("total_accesses")
    if declared is not None and declared != counted:
        raise _error(
            path_str,
            lineno,
            "trace is truncated: header declares %s accesses, found %d"
            % (declared, counted),
        )
    workload = WorkloadTrace(
        name=header["name"],
        cores_per_cmp=header["cores_per_cmp"],
        traces=traces,
        prewarm=prewarm if saw_prewarm else [],
    )
    workload.validate()
    return workload

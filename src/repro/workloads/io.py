"""Trace file I/O.

Serializes :class:`WorkloadTrace` objects to a compact JSON-lines
format so traces can be generated once and replayed across many
simulator configurations - or produced by external tools (e.g. a Pin
tool or a full-system simulator) and fed to this package.

Format (one JSON document per line):

* line 1 - header: ``{"format": "flexsnoop-trace", "version": 1,
  "name": ..., "cores_per_cmp": ..., "num_cores": ...}``
* one line per core - ``{"core": i, "accesses": [[address, w, think],
  ...], "prewarm": [...]}`` where ``w`` is 0/1.

Addresses are line addresses (byte address divided by the line size).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.workloads.trace import Access, WorkloadTrace

FORMAT_NAME = "flexsnoop-trace"
FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """Raised when a trace file does not match the expected format."""


def save_trace(workload: WorkloadTrace, path: Union[str, Path]) -> None:
    """Write a workload trace to ``path`` (JSON-lines)."""
    workload.validate()
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": workload.name,
            "cores_per_cmp": workload.cores_per_cmp,
            "num_cores": workload.num_cores,
        }
        handle.write(json.dumps(header) + "\n")
        for core, trace in enumerate(workload.traces):
            record = {
                "core": core,
                "accesses": [
                    [a.address, int(a.is_write), a.think_time]
                    for a in trace
                ],
            }
            if workload.prewarm:
                record["prewarm"] = workload.prewarm[core]
            handle.write(json.dumps(record) + "\n")


def load_trace(path: Union[str, Path]) -> WorkloadTrace:
    """Read a workload trace written by :func:`save_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise TraceFormatError("empty trace file: %s" % path)
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError("bad trace header: %s" % exc) from exc
        if header.get("format") != FORMAT_NAME:
            raise TraceFormatError(
                "not a %s file: %s" % (FORMAT_NAME, path)
            )
        if header.get("version") != FORMAT_VERSION:
            raise TraceFormatError(
                "unsupported trace version %r" % header.get("version")
            )

        num_cores = header["num_cores"]
        traces: List[List[Access]] = [[] for _ in range(num_cores)]
        prewarm: List[List[int]] = [[] for _ in range(num_cores)]
        saw_prewarm = False
        for line in handle:
            record = json.loads(line)
            core = record["core"]
            if not 0 <= core < num_cores:
                raise TraceFormatError("core %r out of range" % core)
            traces[core] = [
                Access(
                    address=address,
                    is_write=bool(is_write),
                    think_time=think,
                )
                for address, is_write, think in record["accesses"]
            ]
            if "prewarm" in record:
                saw_prewarm = True
                prewarm[core] = list(record["prewarm"])

    workload = WorkloadTrace(
        name=header["name"],
        cores_per_cmp=header["cores_per_cmp"],
        traces=traces,
        prewarm=prewarm if saw_prewarm else [],
    )
    workload.validate()
    return workload

"""The workload-source seam: lazy per-core access streams.

Every consumer of workload input - the simulator facade, the warmup
controller, the harness, the CLI - speaks :class:`WorkloadSource`
instead of a materialized :class:`~repro.workloads.trace.WorkloadTrace`.
A source knows its geometry (cores, CMP population) and can

* stream one core's accesses lazily (:meth:`WorkloadSource.core_stream`),
* report a **stable descriptor**: a JSON-able payload that identifies
  the access stream *content* independently of any in-memory object,
  so result-cache keys and prewarm memos survive process boundaries,
* materialize the full trace when a consumer genuinely needs it.

Three built-in sources cover the pipeline:

* :class:`SyntheticSource` - wraps a
  :class:`~repro.workloads.synthetic.SharingProfile`; generation is
  deferred until the first consumer asks.  Descriptor: the profile's
  full field dict (generation is deterministic given the profile).
* :class:`FileReplaySource` - streams a ``flexsnoop-trace`` JSONL file
  (v1 or v2) from disk in bounded memory.  Descriptor: the file's
  SHA-256, so two copies of the same trace share cache entries.
* :class:`TraceSource` - wraps an already-materialized trace object
  (the pre-existing API).  No stable descriptor by default: identity
  of an anonymous in-memory trace is the object itself.

Spec strings accepted by :func:`resolve_source` (the single entry
point the harness, ``RunSpec`` and the CLI use):

* a registry workload name (``splash2``, ``specjbb``,
  ``splash2/barnes``, or any ``flexsnoop.workloads`` plugin) - the
  factory may return a profile, a trace, or a source;
* ``file:<path>`` - replay a saved ``flexsnoop-trace`` file;
* ``gem5:<path>`` / ``champsim:<path>`` - convert an external
  simulator trace on the fly (in memory; convert large files once
  with ``flexsnoop trace convert`` and replay via ``file:`` instead).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.registry import REGISTRY
from repro.workloads.synthetic import SharingProfile, generate_workload
from repro.workloads.trace import Access, WorkloadTrace

__all__ = [
    "WorkloadSource",
    "TraceSource",
    "SyntheticSource",
    "FileReplaySource",
    "as_source",
    "resolve_source",
    "descriptor_key",
]


def descriptor_key(descriptor: Dict[str, Any]) -> str:
    """SHA-256 hex digest of a source descriptor (canonical JSON)."""
    canonical = json.dumps(
        descriptor, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class WorkloadSource:
    """Base class: a named, shaped, lazily-streamable workload.

    Subclasses must provide the geometry properties and
    :meth:`materialize`; the default stream/prewarm/total
    implementations go through the materialized trace, so a minimal
    plugin source only implements one method.  ``streaming`` sources
    override :meth:`core_stream` (and friends) to avoid ever holding
    the whole trace in memory; the simulator facade checks the flag
    and feeds cores iterators instead of lists.
    """

    #: True when :meth:`core_stream` is bounded-memory and consumers
    #: should avoid :meth:`materialize` (the facade honours this).
    streaming: bool = False

    @property
    def name(self) -> str:
        raise NotImplementedError

    @property
    def num_cores(self) -> int:
        raise NotImplementedError

    @property
    def cores_per_cmp(self) -> int:
        raise NotImplementedError

    @property
    def num_cmps(self) -> int:
        return self.num_cores // self.cores_per_cmp

    def descriptor(self) -> Optional[Dict[str, Any]]:
        """Stable JSON-able identity of the access-stream content.

        ``None`` means "no stable identity": consumers fall back to
        object identity (prewarm memos) or spec-field fingerprints
        (result cache).
        """
        return None

    def total_accesses(self) -> int:
        return self.materialize().total_accesses

    def prewarm(self) -> List[List[int]]:
        """Per-core prewarm line lists (may be empty)."""
        return self.materialize().prewarm

    def core_stream(self, core: int) -> Iterator[Access]:
        """Yield core ``core``'s accesses in issue order."""
        return iter(self.materialize().traces[core])

    def materialize(self) -> WorkloadTrace:
        raise NotImplementedError


class TraceSource(WorkloadSource):
    """A source wrapping an already-materialized trace.

    ``descriptor`` is ``None`` unless the caller supplies one (the
    external-trace converters do: they know the source file's hash).
    """

    def __init__(
        self,
        trace: WorkloadTrace,
        descriptor: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._trace = trace
        self._descriptor = descriptor

    @property
    def name(self) -> str:
        return self._trace.name

    @property
    def num_cores(self) -> int:
        return self._trace.num_cores

    @property
    def cores_per_cmp(self) -> int:
        return self._trace.cores_per_cmp

    def descriptor(self) -> Optional[Dict[str, Any]]:
        return self._descriptor

    def materialize(self) -> WorkloadTrace:
        return self._trace

    def __repr__(self) -> str:
        return "TraceSource(%r)" % (self._trace.name,)


class SyntheticSource(WorkloadSource):
    """Deferred synthetic generation from a :class:`SharingProfile`.

    The profile fully determines the generated trace (generation is
    seeded), so the descriptor is simply the profile's field dict and
    two sources built from equal profiles are interchangeable - the
    result cache and the prewarm memo treat them as the same workload
    without either ever generating just to compare.
    """

    def __init__(self, profile: SharingProfile) -> None:
        self.profile = profile
        self._trace: Optional[WorkloadTrace] = None

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def num_cores(self) -> int:
        return self.profile.num_cores

    @property
    def cores_per_cmp(self) -> int:
        return self.profile.cores_per_cmp

    def descriptor(self) -> Dict[str, Any]:
        import dataclasses

        profile = dataclasses.asdict(self.profile)
        if profile.get("think_scale") == 1.0:
            # The default pacing generates a bit-identical trace, so
            # eliding the field keeps every pre-existing cache and
            # prewarm key stable.
            del profile["think_scale"]
        return {"kind": "synthetic", "profile": profile}

    def materialize(self) -> WorkloadTrace:
        if self._trace is None:
            self._trace = generate_workload(self.profile)
        return self._trace

    def __repr__(self) -> str:
        return "SyntheticSource(%r)" % (self.profile.name,)


class FileReplaySource(WorkloadSource):
    """Bounded-memory replay of a saved ``flexsnoop-trace`` file.

    Construction performs one streaming scan of the file
    (:func:`repro.workloads.io.scan_trace`): it validates the format,
    indexes each core's record offsets, collects the prewarm lists and
    hashes the content - everything later consumers need - without
    ever building the access lists.  :meth:`core_stream` then opens
    its own handle and decodes one record chunk at a time, so peak
    memory is O(chunk), independent of trace length.
    """

    streaming = True

    def __init__(self, path: Union[str, Path]) -> None:
        from repro.workloads.io import scan_trace

        self._scan = scan_trace(path)

    @property
    def path(self) -> str:
        return self._scan.path

    @property
    def name(self) -> str:
        return self._scan.name

    @property
    def num_cores(self) -> int:
        return self._scan.num_cores

    @property
    def cores_per_cmp(self) -> int:
        return self._scan.cores_per_cmp

    def descriptor(self) -> Dict[str, Any]:
        return {
            "kind": "file",
            "name": self._scan.name,
            "cores_per_cmp": self._scan.cores_per_cmp,
            "num_cores": self._scan.num_cores,
            "sha256": self._scan.sha256,
        }

    def total_accesses(self) -> int:
        return self._scan.total_accesses

    def prewarm(self) -> List[List[int]]:
        return self._scan.prewarm

    def core_stream(self, core: int) -> Iterator[Access]:
        from repro.workloads.io import iter_core_accesses

        return iter_core_accesses(self._scan, core)

    def materialize(self) -> WorkloadTrace:
        from repro.workloads.io import load_trace

        return load_trace(self._scan.path)

    def __repr__(self) -> str:
        return "FileReplaySource(%r)" % (self._scan.path,)


def as_source(
    workload: Union[WorkloadSource, WorkloadTrace, SharingProfile],
) -> WorkloadSource:
    """Normalize any accepted workload value to a source."""
    if isinstance(workload, WorkloadSource):
        return workload
    if isinstance(workload, WorkloadTrace):
        return TraceSource(workload)
    if isinstance(workload, SharingProfile):
        return SyntheticSource(workload)
    raise TypeError(
        "expected WorkloadSource, WorkloadTrace or SharingProfile, "
        "got %r" % type(workload).__name__
    )


#: Spec-string schemes handled before registry lookup.
_SOURCE_SCHEMES = ("file", "gem5", "champsim")


def resolve_source(
    spec: Union[str, WorkloadSource, WorkloadTrace, SharingProfile],
    accesses_per_core: int = 0,
    seed: int = 0,
    num_cmps: int = 0,
    think_scale: float = 1.0,
) -> WorkloadSource:
    """Resolve a workload spec to a :class:`WorkloadSource`.

    Cheap for synthetic workloads - no trace is generated - so callers
    that only need geometry (``cores_per_cmp`` for a cache key) pay
    nothing.  ``file:`` specs pay one streaming scan of the file.
    Unknown registry names raise
    :class:`repro.registry.UnknownComponentError`.

    ``num_cmps`` re-spans a synthetic workload over that many CMPs
    (see :func:`repro.workloads.profiles.reshape_profile`);
    ``think_scale`` re-paces a synthetic workload's think times (the
    loaded-regime injection axis, see
    :attr:`repro.workloads.synthetic.SharingProfile.think_scale`).
    Recorded traces carry fixed geometry and pacing, so combining
    either with a ``file:`` / ``gem5:`` / ``champsim:`` spec or a
    pre-built trace is an error.
    """
    if num_cmps and not isinstance(spec, (str, SharingProfile)):
        raise ValueError(
            "num_cmps only reshapes synthetic workloads; %r carries "
            "its own geometry" % type(spec).__name__
        )
    if think_scale != 1.0 and not isinstance(spec, (str, SharingProfile)):
        raise ValueError(
            "think_scale only re-paces synthetic workloads; %r "
            "carries its own timing" % type(spec).__name__
        )
    if isinstance(spec, SharingProfile):
        if num_cmps:
            from repro.workloads.profiles import reshape_profile

            spec = reshape_profile(spec, num_cmps)
        if think_scale != 1.0:
            spec = spec.with_think_scale(think_scale)
        return as_source(spec)
    if not isinstance(spec, str):
        return as_source(spec)
    scheme, sep, arg = spec.partition(":")
    if sep and scheme in _SOURCE_SCHEMES:
        if num_cmps:
            raise ValueError(
                "num_cmps only reshapes synthetic workloads; %r "
                "replays a recorded trace" % spec
            )
        if think_scale != 1.0:
            raise ValueError(
                "think_scale only re-paces synthetic workloads; %r "
                "replays a recorded trace" % spec
            )
        if not arg:
            raise ValueError("workload spec %r needs a path" % spec)
        if scheme == "file":
            return FileReplaySource(arg)
        from repro.workloads.convert import external_trace_source

        return external_trace_source(arg, scheme)
    kwargs: Dict[str, Any] = {}
    if accesses_per_core:
        kwargs["accesses_per_core"] = accesses_per_core
    if seed:
        kwargs["seed"] = seed
    created = REGISTRY.create("workload", spec, **kwargs)
    if isinstance(created, SharingProfile):
        if num_cmps:
            from repro.workloads.profiles import reshape_profile

            created = reshape_profile(created, num_cmps)
        if think_scale != 1.0:
            created = created.with_think_scale(think_scale)
    else:
        if num_cmps:
            raise ValueError(
                "num_cmps only reshapes synthetic workloads; workload "
                "%r resolved to %r" % (spec, type(created).__name__)
            )
        if think_scale != 1.0:
            raise ValueError(
                "think_scale only re-paces synthetic workloads; "
                "workload %r resolved to %r"
                % (spec, type(created).__name__)
            )
    return as_source(created)

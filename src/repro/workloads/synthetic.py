"""Parameterised synthetic workload generator.

The generator produces per-core access streams from a
:class:`SharingProfile` describing how the workload uses memory:

* a **private** pool per core (stack/heap data nobody else touches),
* a **shared** pool accessed by all cores, with a Zipf-like popularity
  skew and an optional *migratory* subset that cores access with
  read-modify-write pairs (the classic lock-protected data pattern),
* a **cold** pool of streaming lines that are touched once and never
  reused - these always miss to memory and model the workload's
  DRAM-bound fraction.

The knobs let the profiles in :mod:`repro.workloads.profiles` match
the coherence behaviour the paper reports for each workload class:
how often a ring read finds a supplier, how far away the supplier is,
and what fraction of requests fall through to memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.workloads.trace import Access, WorkloadTrace

#: Address-space bases keeping the pools disjoint (logical layout;
#: physical line addresses are scrambled, see :func:`scramble`).
_SHARED_BASE = 0
_PRIVATE_BASE = 1 << 30
_COLD_BASE = 1 << 32
#: Span reserved for each core's private pool.
_PRIVATE_SPAN = 1 << 24

#: Physical line-address width after scrambling.
_PHYSICAL_BITS = 36
_PHYSICAL_MASK = (1 << _PHYSICAL_BITS) - 1


def scramble(logical: int) -> int:
    """Map a logical line id to a pseudo-random physical line address.

    Real operating systems spread a process's pages over the physical
    address space; without this, the generator's contiguous pool
    layout would alias systematically in the Bloom-filter bit fields
    (every core's private pool sharing the same low bits), which no
    real machine exhibits.  The mix is splitmix64, deterministic, and
    collision-free for all practical pool sizes within 36 bits.
    """
    z = (logical + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (z ^ (z >> 31)) & _PHYSICAL_MASK


@dataclass(frozen=True)
class SharingProfile:
    """Knobs of the synthetic generator.

    Attributes:
        name: label carried into results tables.
        num_cores: total cores (must be a multiple of ``cores_per_cmp``).
        cores_per_cmp: CMP population (the paper uses 4 for SPLASH-2
            and 1 for the SPEC workloads).
        accesses_per_core: trace length per core.
        p_shared: probability an access targets the shared pool.
        p_cold: probability an access targets the cold streaming pool.
        shared_lines: size of the shared pool (lines).
        private_lines: size of each core's private pool (lines).
        write_fraction_shared: write probability within shared accesses.
        write_fraction_private: write probability within private
            accesses.
        migratory_fraction: fraction of the shared pool whose accesses
            are read-modify-write pairs.
        producer_consumer_fraction: fraction of the shared pool with a
            single-writer / many-readers discipline: one owner core
            writes the line, every other core only reads it.  The
            write-to-read gaps are long (the owner visits the line at
            random times), which is the pattern that exposes the Exact
            predictor's downgrades: the dirty line is downgraded and
            written back before the next reader arrives, turning a
            cache-to-cache transfer into a memory access.
        zipf_exponent: popularity skew of the shared pool (0 =
            uniform).
        private_zipf_exponent: popularity skew of each core's private
            pool; higher values concentrate reuse on a hot subset.
        burst_mean: mean number of back-to-back accesses a core makes
            to a shared line once it touches it (temporal locality).
            Only the first access of a burst can miss; the rest hit the
            core's own cache, which keeps the ring-transaction rate at
            realistic levels (a few percent of accesses, not tens).
        prewarm_fraction: fraction of each core's private pool
            (hottest lines first) pre-installed in its cache in E
            state before the run.  Models the resident working set of
            a long-running application, giving the CMPs realistic
            supplier-state footprints (which is what pressures the
            Supplier Predictors).
        think_mean: mean CPU think time between accesses (geometric).
        think_scale: injection-rate control: every generated think
            time is multiplied by this factor (floored at 1 cycle).
            Cores are closed-loop - they block on outstanding misses -
            so shrinking think times is how the loaded-regime harness
            raises the offered ring-transaction rate per core without
            touching the access pattern: the drawn addresses and
            read/write mix are identical at every scale, only the
            pacing changes.  1.0 (the default) reproduces the base
            trace bit-identically.
        seed: RNG seed; traces are fully deterministic given the seed.
    """

    name: str = "synthetic"
    num_cores: int = 8
    cores_per_cmp: int = 1
    accesses_per_core: int = 4000
    p_shared: float = 0.3
    p_cold: float = 0.1
    shared_lines: int = 2048
    private_lines: int = 2048
    write_fraction_shared: float = 0.25
    write_fraction_private: float = 0.3
    migratory_fraction: float = 0.0
    producer_consumer_fraction: float = 0.0
    zipf_exponent: float = 0.6
    private_zipf_exponent: float = 0.4
    burst_mean: float = 1.0
    prewarm_fraction: float = 0.0
    think_mean: float = 12.0
    think_scale: float = 1.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.think_scale <= 0.0:
            raise ValueError(
                "think_scale must be positive, got %r" % (self.think_scale,)
            )
        if self.num_cores % self.cores_per_cmp != 0:
            raise ValueError(
                "num_cores (%d) must be a multiple of cores_per_cmp (%d)"
                % (self.num_cores, self.cores_per_cmp)
            )
        if not 0.0 <= self.p_shared + self.p_cold <= 1.0:
            raise ValueError("p_shared + p_cold must be within [0, 1]")
        if self.private_lines >= _PRIVATE_SPAN:
            raise ValueError("private pool too large for its address span")
        for prob_name in (
            "p_shared",
            "p_cold",
            "write_fraction_shared",
            "write_fraction_private",
            "migratory_fraction",
            "producer_consumer_fraction",
            "prewarm_fraction",
        ):
            value = getattr(self, prob_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError("%s must be in [0, 1]" % prob_name)

    def scaled(self, accesses_per_core: int) -> "SharingProfile":
        """Copy of this profile with a different trace length."""
        import dataclasses

        return dataclasses.replace(
            self, accesses_per_core=accesses_per_core
        )

    def with_think_scale(self, think_scale: float) -> "SharingProfile":
        """Copy of this profile at a different injection pacing."""
        import dataclasses

        return dataclasses.replace(self, think_scale=think_scale)


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalized Zipf weights over ranks 1..n."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent) if exponent > 0 else np.ones(n)
    return weights / weights.sum()


def generate_workload(profile: SharingProfile) -> WorkloadTrace:
    """Generate a deterministic multi-core trace from a profile."""
    rng = np.random.default_rng(profile.seed)
    shared_weights = _zipf_weights(profile.shared_lines, profile.zipf_exponent)
    # Spread the migratory subset across the popularity distribution
    # (selecting the top-ranked lines would make every hot line a
    # lock-like RMW target and serialize the whole machine on a few
    # addresses, which real workloads do not do).
    migratory_stride = (
        max(1, round(1.0 / profile.migratory_fraction))
        if profile.migratory_fraction > 0
        else 0
    )
    pc_stride = (
        max(1, round(1.0 / profile.producer_consumer_fraction))
        if profile.producer_consumer_fraction > 0
        else 0
    )

    workload = WorkloadTrace(
        name=profile.name, cores_per_cmp=profile.cores_per_cmp
    )
    for core in range(profile.num_cores):
        workload.traces.append(
            _generate_core_trace(
                profile, core, rng, shared_weights, migratory_stride,
                pc_stride,
            )
        )
    if profile.prewarm_fraction > 0:
        count = int(profile.private_lines * profile.prewarm_fraction)
        for core in range(profile.num_cores):
            base = _PRIVATE_BASE + core * _PRIVATE_SPAN
            # Hottest (lowest zipf rank) lines first; the simulator
            # fills them in reverse so they end up most recently used.
            workload.prewarm.append(
                [scramble(base + i) for i in range(count)]
            )
    workload.validate()
    return workload


def _generate_core_trace(
    profile: SharingProfile,
    core: int,
    rng: np.random.Generator,
    shared_weights: np.ndarray,
    migratory_stride: int,
    pc_stride: int,
) -> List[Access]:
    n = profile.accesses_per_core
    pool_draw = rng.random(n)
    # Pools: 0 = shared, 1 = cold, 2 = private.
    shared_mask = pool_draw < profile.p_shared
    cold_mask = (~shared_mask) & (
        pool_draw < profile.p_shared + profile.p_cold
    )

    shared_choices = rng.choice(
        profile.shared_lines, size=n, p=shared_weights
    )
    # Private reuse: Zipf-like skew over the private pool gives each
    # core a hot subset (cache resident) and a long tail (capacity
    # misses when the pool exceeds the cache).
    private_weights = _zipf_weights(
        profile.private_lines, profile.private_zipf_exponent
    )
    private_choices = rng.choice(
        profile.private_lines, size=n, p=private_weights
    )
    write_draw = rng.random(n)
    thinks = rng.geometric(1.0 / max(profile.think_mean, 1.0), size=n)

    private_base = _PRIVATE_BASE + core * _PRIVATE_SPAN
    cold_base = _COLD_BASE + core * _PRIVATE_SPAN
    cold_counter = 0

    bursts = (
        rng.geometric(1.0 / profile.burst_mean, size=n)
        if profile.burst_mean > 1.0
        else None
    )

    scale = profile.think_scale
    trace: List[Access] = []
    for i in range(n):
        think = int(thinks[i])
        if scale != 1.0:
            # Applied after the draw so every scale shares the same
            # RNG stream: identical addresses, different pacing.
            think = max(1, int(round(think * scale)))
        if shared_mask[i]:
            address = scramble(_SHARED_BASE + int(shared_choices[i]))
            if migratory_stride and (
                int(shared_choices[i]) % migratory_stride
                == migratory_stride - 1
            ):
                # Migratory data: read-modify-write pair.
                trace.append(
                    Access(address=address, is_write=False, think_time=think)
                )
                trace.append(
                    Access(address=address, is_write=True, think_time=2)
                )
                continue
            shared_index = int(shared_choices[i])
            if pc_stride and shared_index % pc_stride == (
                pc_stride // 2
            ):
                # Producer-consumer line: a deterministic hash picks
                # the single writer; everyone else only reads.
                owner = (shared_index * 2654435761) % profile.num_cores
                is_write = core == owner
                trace.append(
                    Access(
                        address=address,
                        is_write=bool(is_write),
                        think_time=think,
                    )
                )
                continue
            is_write = write_draw[i] < profile.write_fraction_shared
            if bursts is not None:
                # Temporal locality: re-use the line before moving on.
                trace.append(
                    Access(
                        address=address,
                        is_write=bool(is_write),
                        think_time=think,
                    )
                )
                for _ in range(int(bursts[i]) - 1):
                    trace.append(
                        Access(
                            address=address,
                            is_write=False,
                            think_time=max(think // 2, 1),
                        )
                    )
                continue
        elif cold_mask[i]:
            address = scramble(cold_base + cold_counter)
            cold_counter += 1
            is_write = False
        else:
            address = scramble(private_base + int(private_choices[i]))
            is_write = write_draw[i] < profile.write_fraction_private
        trace.append(
            Access(address=address, is_write=bool(is_write), think_time=think)
        )
    return trace

"""Workload profiles standing in for SPLASH-2, SPECjbb and SPECweb.

The paper characterizes the three workload classes through their
coherence behaviour (Figures 6 and 11):

* **SPLASH-2** (32 cores, 4 per CMP): plenty of cache-to-cache
  transfers; the perfect predictor sees roughly four negative
  predictions per positive one, i.e. a ring read finds its supplier
  about five hops away and finds one most of the time.  Lazy averages
  about 4.5 snoops per request.
* **SPECjbb** (8 cores, 1 per CMP): threads share very little; most
  ring reads find no supplier and fall through to memory, so Lazy
  snoops almost all 7 remote CMPs.
* **SPECweb** (8 cores, 1 per CMP): between the two - substantial
  sharing, but also a large DRAM-bound fraction.

The profiles below are calibrated so the *simulated* coherence
behaviour matches that characterization; the calibration is asserted
by the integration test suite (``tests/integration``) and shown in
EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict

from repro.registry import REGISTRY
from repro.workloads.synthetic import SharingProfile, generate_workload
from repro.workloads.trace import WorkloadTrace


def reshape_profile(
    profile: SharingProfile, num_cmps: int
) -> SharingProfile:
    """Re-span ``profile`` across ``num_cmps`` CMPs.

    Synthetic workloads carry their machine geometry (the paper's
    profiles all populate 8 CMPs); larger topologies - e.g. a 16-CMP
    two-level hier_ring machine - need the same sharing behaviour
    spread over more CMPs.  Scales ``num_cores`` keeping the profile's
    cores-per-CMP, so per-core trace length and sharing knobs are
    untouched; the reshaped core count lands in the source descriptor,
    giving the workload its own cache/prewarm keys.
    """
    if num_cmps < 2:
        raise ValueError("need at least 2 CMPs, got %d" % num_cmps)
    if num_cmps * profile.cores_per_cmp == profile.num_cores:
        return profile
    return dataclasses.replace(
        profile, num_cores=num_cmps * profile.cores_per_cmp
    )


def splash2_profile(
    accesses_per_core: int = 3000, seed: int = 42
) -> SharingProfile:
    """SPLASH-2-like scientific workload: 32 cores, heavy sharing.

    A moderate shared working set that stays cache resident gives a
    high cache-to-cache transfer rate; the migratory subset models the
    lock-protected read-modify-write data typical of these kernels.
    """
    return SharingProfile(
        name="SPLASH-2",
        num_cores=32,
        cores_per_cmp=4,
        accesses_per_core=accesses_per_core,
        p_shared=0.40,
        p_cold=0.04,
        shared_lines=2048,
        private_lines=2000,
        write_fraction_shared=0.10,
        write_fraction_private=0.30,
        migratory_fraction=0.06,
        producer_consumer_fraction=0.15,
        zipf_exponent=0.9,
        private_zipf_exponent=1.5,
        burst_mean=6.0,
        prewarm_fraction=0.35,
        think_mean=140.0,
        seed=seed,
    )


def specjbb_profile(
    accesses_per_core: int = 6000, seed: int = 43
) -> SharingProfile:
    """SPECjbb-like server workload: 8 cores, almost no sharing.

    Each warehouse thread works on its own objects; the large private
    pool and the cold streaming fraction push most ring reads to
    memory, reproducing the paper's observation that Lazy snoops close
    to all 7 CMPs and that the Exclude cache thrashes.
    """
    return SharingProfile(
        name="SPECjbb",
        num_cores=8,
        cores_per_cmp=1,
        accesses_per_core=accesses_per_core,
        p_shared=0.02,
        p_cold=0.08,
        shared_lines=512,
        private_lines=20000,
        write_fraction_shared=0.20,
        write_fraction_private=0.15,
        migratory_fraction=0.10,
        zipf_exponent=0.3,
        private_zipf_exponent=1.0,
        prewarm_fraction=1.0,
        think_mean=340.0,
        seed=seed,
    )


def specweb_profile(
    accesses_per_core: int = 6000, seed: int = 44
) -> SharingProfile:
    """SPECweb-like e-commerce workload: 8 cores, moderate sharing.

    Worker threads share session and content caches (supplier usually
    exists) but also stream request/response buffers (DRAM-bound
    fraction larger than SPLASH-2's).
    """
    return SharingProfile(
        name="SPECweb",
        num_cores=8,
        cores_per_cmp=1,
        accesses_per_core=accesses_per_core,
        p_shared=0.30,
        p_cold=0.04,
        shared_lines=1536,
        private_lines=1500,
        write_fraction_shared=0.15,
        write_fraction_private=0.25,
        migratory_fraction=0.08,
        producer_consumer_fraction=0.10,
        zipf_exponent=0.9,
        private_zipf_exponent=1.2,
        burst_mean=8.0,
        prewarm_fraction=1.0,
        think_mean=520.0,
        seed=seed,
    )


#: Profile factories by workload name (kept for direct access; name
#: resolution goes through :data:`repro.registry.REGISTRY`).
WORKLOAD_PROFILES: Dict[str, Callable[..., SharingProfile]] = {
    "splash2": splash2_profile,
    "specjbb": specjbb_profile,
    "specweb": specweb_profile,
}

_WORKLOAD_ALIASES: Dict[str, tuple] = {
    "splash2": ("splash",),
    "specjbb": ("jbb",),
    "specweb": ("web",),
}


def resolve_profile(
    name: str,
    accesses_per_core: int = 0,
    seed: int = 0,
    num_cmps: int = 0,
    think_scale: float = 1.0,
) -> SharingProfile:
    """Resolve a workload name (with aliases) to its profile.

    Cheap - no trace is generated - so callers that only need profile
    metadata (e.g. ``cores_per_cmp`` for a cache key) can use this
    without paying for trace synthesis.  Unknown names raise
    :class:`repro.registry.UnknownComponentError` (a ``ValueError``
    listing the valid choices).

    Args:
        name: registered workload name or alias.
        accesses_per_core: trace length override (0 = profile default).
        seed: RNG seed override (0 = profile default).
        num_cmps: machine-span override (0 = profile default); see
            :func:`reshape_profile`.
        think_scale: think-time multiplier (1.0 = profile default);
            the loaded-regime injection axis.
    """
    kwargs = {}
    if accesses_per_core:
        kwargs["accesses_per_core"] = accesses_per_core
    if seed:
        kwargs["seed"] = seed
    profile = REGISTRY.create("workload", name, **kwargs)
    if num_cmps:
        profile = reshape_profile(profile, num_cmps)
    if think_scale != 1.0:
        profile = profile.with_think_scale(think_scale)
    return profile


def build_workload(
    name: str,
    accesses_per_core: int = 0,
    seed: int = 0,
    num_cmps: int = 0,
) -> WorkloadTrace:
    """Generate the named workload's trace.

    Args:
        name: one of ``splash2``, ``specjbb``, ``specweb``.
        accesses_per_core: trace length override (0 = profile default).
        seed: RNG seed override (0 = profile default).
        num_cmps: machine-span override (0 = profile default).
    """
    return generate_workload(
        resolve_profile(name, accesses_per_core, seed, num_cmps)
    )


for _name, _factory in WORKLOAD_PROFILES.items():
    REGISTRY.register(
        "workload",
        _name,
        _factory,
        aliases=_WORKLOAD_ALIASES.get(_name, ()),
        metadata={"display_name": _factory().name},
    )
del _name, _factory

# Per-application SPLASH-2 profiles ride the same registry kind, under
# a "splash2/" prefix (the workload normalizer preserves "/"), so
# `--workload splash2/barnes` resolves everywhere a workload name does.
from repro.workloads import splash2_apps as _splash2_apps  # noqa: E402

for _name, _factory in _splash2_apps.SPLASH2_APPS.items():
    REGISTRY.register(
        "workload",
        "splash2/%s" % _name,
        _factory,
        metadata={"display_name": _factory().name},
    )
del _name, _factory

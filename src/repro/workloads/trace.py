"""Trace containers: the simulator's input format.

A trace is a per-core sequence of L2-level memory accesses.  Each
access carries the CPU *think time* since the previous access (cycles
of computation the core performs before issuing it), whether it is a
read or a write, and the line address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass(frozen=True)
class Access:
    """One memory access in a core's trace."""

    address: int
    is_write: bool
    think_time: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")


#: One core's access sequence.
CoreTrace = List[Access]


@dataclass
class WorkloadTrace:
    """A complete multi-core workload trace.

    Attributes:
        name: workload label (shown in result tables).
        cores_per_cmp: CMP population the trace was generated for;
            core ``i`` runs on CMP ``i // cores_per_cmp``.
        traces: one access list per core.
        prewarm: optional per-core lists of line addresses installed
            in the core's cache (state E, as if read from memory long
            ago) before the simulation starts.  This models the
            checkpoint state of a long-running application: resident
            private data whose compulsory misses happened long before
            the measured window.
    """

    name: str
    cores_per_cmp: int
    traces: List[CoreTrace] = field(default_factory=list)
    prewarm: List[List[int]] = field(default_factory=list)

    @property
    def num_cores(self) -> int:
        return len(self.traces)

    @property
    def num_cmps(self) -> int:
        return self.num_cores // self.cores_per_cmp

    @property
    def total_accesses(self) -> int:
        return sum(len(t) for t in self.traces)

    def cmp_of_core(self, core: int) -> int:
        return core // self.cores_per_cmp

    def iter_accesses(self) -> Iterator[Access]:
        for trace in self.traces:
            yield from trace

    def address_footprint(self) -> int:
        """Number of distinct lines touched by the whole trace."""
        return len({a.address for a in self.iter_accesses()})

    def stats(self) -> Dict[str, float]:
        """Descriptive statistics, used by tests and examples."""
        total = self.total_accesses
        writes = sum(1 for a in self.iter_accesses() if a.is_write)
        return {
            "cores": self.num_cores,
            "accesses": total,
            "write_fraction": writes / total if total else 0.0,
            "footprint_lines": self.address_footprint(),
        }

    def validate(self) -> None:
        """Sanity-check trace shape; raises ValueError on problems."""
        if not self.traces:
            raise ValueError("workload has no cores")
        if self.num_cores % self.cores_per_cmp != 0:
            raise ValueError(
                "core count %d not divisible by cores_per_cmp %d"
                % (self.num_cores, self.cores_per_cmp)
            )
        if self.prewarm and len(self.prewarm) != self.num_cores:
            raise ValueError(
                "prewarm has %d entries for %d cores"
                % (len(self.prewarm), self.num_cores)
            )

"""Flexible Snooping - reproduction of Strauss, Shen & Torrellas,
"Flexible Snooping: Adaptive Forwarding and Filtering of Snoops in
Embedded-Ring Multiprocessors", ISCA 2006.

Public API quick-tour::

    from repro import (
        default_machine, build_algorithm, build_workload,
        RingMultiprocessor,
    )

    machine = default_machine(algorithm="superset_agg")
    workload = build_workload("splash2", accesses_per_core=1000)
    system = RingMultiprocessor(machine, build_algorithm("superset_agg"),
                                workload)
    result = system.run()
    print(result.stats.snoops_per_read_request, result.total_energy)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.config import (
    CacheConfig,
    DataNetworkConfig,
    EnergyConfig,
    MachineConfig,
    MemoryConfig,
    NAMED_PREDICTORS,
    PredictorConfig,
    ProcessorConfig,
    RingConfig,
    default_machine,
)
from repro.core import (
    ALGORITHMS,
    Eager,
    Exact,
    Lazy,
    Oracle,
    Primitive,
    SnoopingAlgorithm,
    Subset,
    SupersetAgg,
    SupersetCon,
    SupersetHybrid,
    build_algorithm,
    build_predictor,
)
from repro.sim import RingMultiprocessor, SimulationResult
from repro.workloads import (
    FileReplaySource,
    SharingProfile,
    SyntheticSource,
    TraceSource,
    WorkloadSource,
    WorkloadTrace,
    as_source,
    build_workload,
    generate_workload,
    resolve_source,
)

__version__ = "1.3.0"

__all__ = [
    "CacheConfig",
    "DataNetworkConfig",
    "EnergyConfig",
    "MachineConfig",
    "MemoryConfig",
    "NAMED_PREDICTORS",
    "PredictorConfig",
    "ProcessorConfig",
    "RingConfig",
    "default_machine",
    "ALGORITHMS",
    "Eager",
    "Exact",
    "Lazy",
    "Oracle",
    "Primitive",
    "SnoopingAlgorithm",
    "Subset",
    "SupersetAgg",
    "SupersetCon",
    "SupersetHybrid",
    "build_algorithm",
    "build_predictor",
    "RingMultiprocessor",
    "SimulationResult",
    "SharingProfile",
    "WorkloadTrace",
    "WorkloadSource",
    "TraceSource",
    "SyntheticSource",
    "FileReplaySource",
    "as_source",
    "resolve_source",
    "build_workload",
    "generate_workload",
    "__version__",
]

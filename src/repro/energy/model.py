"""Per-event energy accounting (Section 6.1.4).

The model charges the energy consumed *by the coherence machinery*:
snooping nodes other than the requester, accessing and updating the
Supplier Predictors, and transmitting request/reply messages on the
ring links.  For Exact, it additionally charges the downgrade
operations and the extra main-memory write-backs and re-reads they
cause - the paper counts these "because they are a direct result of
Exact's operation".  Baseline memory traffic (reads that would go to
memory under any algorithm) is deliberately *not* charged, matching
the paper's methodology.

The calibration constants come straight from the paper: 3.17 nJ per
ring-link message, 0.69 nJ per CMP snoop, 24 nJ per memory line
access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import EnergyConfig


@dataclass
class EnergyBreakdown:
    """Energy totals in nanojoules, by category."""

    ring_links: float = 0.0
    snoops: float = 0.0
    predictor_lookups: float = 0.0
    predictor_updates: float = 0.0
    downgrade_ops: float = 0.0
    downgrade_memory: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.ring_links
            + self.snoops
            + self.predictor_lookups
            + self.predictor_updates
            + self.downgrade_ops
            + self.downgrade_memory
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "ring_links": self.ring_links,
            "snoops": self.snoops,
            "predictor_lookups": self.predictor_lookups,
            "predictor_updates": self.predictor_updates,
            "downgrade_ops": self.downgrade_ops,
            "downgrade_memory": self.downgrade_memory,
            "total": self.total,
        }


class EnergyModel:
    """Accumulates snoop-traffic energy for one simulation run."""

    def __init__(self, config: EnergyConfig, predictor_kind: str) -> None:
        self.config = config
        self.predictor_kind = predictor_kind
        self.breakdown = EnergyBreakdown()

    # --- ring -----------------------------------------------------------

    def charge_ring_crossing(self, count: int = 1) -> None:
        """One snoop message crossing one ring link."""
        self.breakdown.ring_links += self.config.ring_link_message * count

    # --- snoops -----------------------------------------------------------

    def charge_snoop(self, count: int = 1) -> None:
        """One CMP snoop operation (all on-chip L2s snooped in
        parallel count as one operation, as in the paper)."""
        self.breakdown.snoops += self.config.cmp_snoop * count

    # --- predictor ---------------------------------------------------------

    def _lookup_cost(self) -> float:
        return {
            "subset": self.config.subset_lookup,
            "superset": self.config.superset_lookup,
            "exact": self.config.exact_lookup,
        }.get(self.predictor_kind, 0.0)

    def _update_cost(self) -> float:
        return {
            "subset": self.config.subset_update,
            "superset": self.config.superset_update,
            "exact": self.config.exact_update,
        }.get(self.predictor_kind, 0.0)

    def charge_predictor_lookup(self, count: int = 1) -> None:
        self.breakdown.predictor_lookups += self._lookup_cost() * count

    def charge_predictor_update(self, count: int = 1) -> None:
        self.breakdown.predictor_updates += self._update_cost() * count

    # --- Exact's downgrade costs --------------------------------------------

    def charge_downgrade(self) -> None:
        """Cache access that downgrades a line (Section 4.3.3)."""
        self.breakdown.downgrade_ops += self.config.downgrade_cache_access

    def charge_downgrade_writeback(self) -> None:
        """Write-back of a D/T line forced by a downgrade."""
        self.breakdown.downgrade_memory += self.config.memory_line_access

    def charge_downgrade_reread(self) -> None:
        """Memory re-read of a line that a cache would have supplied
        had it not been downgraded."""
        self.breakdown.downgrade_memory += self.config.memory_line_access

    @property
    def total(self) -> float:
        return self.breakdown.total

"""Energy accounting for snoop traffic."""

from repro.energy.model import EnergyBreakdown, EnergyModel

__all__ = ["EnergyBreakdown", "EnergyModel"]

"""Report generation: one self-contained text/markdown document with
every figure of the paper's evaluation, rendered as tables and ASCII
bar charts.

Used by ``flexsnoop report`` and by notebook users who want the whole
evaluation in one call::

    from repro.harness.experiments import ExperimentMatrix
    from repro.harness.report import render_report
    print(render_report(ExperimentMatrix(accesses_per_core=1000)))
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.harness.experiments import (
    ExperimentMatrix,
    format_accuracy_table,
)
from repro.registry import REGISTRY

#: Width of the ASCII bars.
BAR_WIDTH = 36


def ascii_bar(value: float, maximum: float, width: int = BAR_WIDTH) -> str:
    """Render one horizontal bar, scaled so ``maximum`` fills
    ``width`` characters."""
    if maximum <= 0:
        return ""
    filled = int(round(width * value / maximum))
    filled = max(0, min(width, filled))
    return "#" * filled


def bar_chart(
    title: str,
    table: Dict[str, Dict[str, float]],
    fmt: str = "%.2f",
) -> str:
    """Render a {workload: {algorithm: value}} mapping as grouped
    ASCII bars, one group per workload (the paper's figure layout)."""
    lines = [title, "=" * len(title)]
    maximum = max(
        value for row in table.values() for value in row.values()
    )
    for workload, row in table.items():
        lines.append("")
        lines.append("[%s]" % workload)
        for algorithm, value in row.items():
            lines.append(
                "  %-14s %8s |%s"
                % (algorithm, fmt % value, ascii_bar(value, maximum))
            )
    return "\n".join(lines)


def _section(title: str, body: str) -> str:
    return "## %s\n\n```\n%s\n```\n" % (title, body)


def render_report(
    matrix: ExperimentMatrix,
    figures: Optional[Iterable[int]] = None,
) -> str:
    """Render the evaluation report.

    Args:
        matrix: the experiment matrix (results are computed lazily and
            cached, so rendering twice is cheap).
        figures: which figures to include (default: 6, 7, 8, 9, 11;
            Figure 10 adds ~24 extra simulations and is opt-in).
    """
    selected = set(figures) if figures is not None else {6, 7, 8, 9, 11}
    topology = matrix.topology or "ring"
    try:
        topology = REGISTRY.canonical("topology", topology)
    except ValueError:
        pass  # surfaced with the uniform error when the matrix runs
    shape = (
        "embedded unidirectional ring"
        if topology == "ring"
        else "%s snoop topology" % topology
    )
    parts: List[str] = [
        "# Flexible Snooping - evaluation report",
        "",
        "Machine: %d CMPs, %s "
        "(39-cycle hops, 55-cycle snoops), workloads at %d "
        "accesses/core."
        % (matrix.num_cmps or 8, shape, matrix.accesses_per_core),
        "",
    ]

    if 6 in selected:
        parts.append(
            _section(
                "Figure 6 - snoop operations per read snoop request",
                bar_chart(
                    "snoops per request (absolute)",
                    matrix.fig6_snoops_per_request(),
                ),
            )
        )
    if 7 in selected:
        parts.append(
            _section(
                "Figure 7 - ring read messages (normalized to Lazy)",
                bar_chart(
                    "read requests + replies vs Lazy",
                    matrix.fig7_read_messages(),
                    fmt="%.3f",
                ),
            )
        )
    if 8 in selected:
        parts.append(
            _section(
                "Figure 8 - execution time (normalized to Lazy)",
                bar_chart(
                    "execution time vs Lazy",
                    matrix.fig8_execution_time(),
                    fmt="%.3f",
                ),
            )
        )
    if 9 in selected:
        parts.append(
            _section(
                "Figure 9 - snoop-traffic energy (normalized to Lazy)",
                bar_chart(
                    "energy vs Lazy",
                    matrix.fig9_energy(),
                    fmt="%.3f",
                ),
            )
        )
    if 10 in selected:
        sensitivity = matrix.fig10_sensitivity()
        lines = ["exec time vs the 2k-entry configuration"]
        for workload, by_algorithm in sensitivity.items():
            for algorithm, by_predictor in by_algorithm.items():
                for predictor, value in by_predictor.items():
                    lines.append(
                        "%-9s %-13s %-9s %6.3f"
                        % (workload, algorithm, predictor, value)
                    )
        parts.append(
            _section("Figure 10 - predictor-size sensitivity",
                      "\n".join(lines))
        )
    if 11 in selected:
        parts.append(
            _section(
                "Figure 11 - Supplier Predictor accuracy",
                format_accuracy_table(matrix.fig11_accuracy()),
            )
        )

    parts.append(_headline_summary(matrix))
    return "\n".join(parts)


def _headline_summary(matrix: ExperimentMatrix) -> str:
    """The Section 6.1.5 headline, computed from this run."""
    energy = matrix.fig9_energy()
    time = matrix.fig8_execution_time()
    lines = ["## Headline (Section 6.1.5)", ""]
    for workload in matrix.workloads:
        agg_vs_eager_energy = 100 * (
            1 - energy[workload]["superset_agg"] / energy[workload]["eager"]
        )
        con_vs_agg_energy = 100 * (
            1
            - energy[workload]["superset_con"]
            / energy[workload]["superset_agg"]
        )
        con_vs_agg_time = 100 * (
            time[workload]["superset_con"] / time[workload]["superset_agg"]
            - 1
        )
        lines.append(
            "* %s: SupersetAgg uses %.0f%% less energy than Eager; "
            "SupersetCon is %.0f%% slower than Agg but uses %.0f%% "
            "less energy."
            % (
                workload,
                agg_vs_eager_energy,
                con_vs_agg_time,
                con_vs_agg_energy,
            )
        )
    return "\n".join(lines) + "\n"

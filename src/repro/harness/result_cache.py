"""Persistent on-disk cache of simulation results.

The paper derives every figure (6-11) and both analytical tables from
*one* matrix of simulations.  This module gives the harness the same
economics: a completed :class:`~repro.sim.system.SimulationResult` is
written to disk keyed by a stable fingerprint of everything that
determines it - the full :class:`~repro.config.MachineConfig`, the
algorithm, the workload, the predictor override, the trace scale and
seed, the warmup fraction, and the code version.  Re-running
``flexsnoop figure 8`` after a figure-6 run then costs zero
simulations.

Layout::

    <root>/v<schema>/<key[:2]>/<key>.pkl

where ``key`` is a SHA-256 over the canonical JSON fingerprint.  Each
entry is an independent pickle file, so concurrent writers (parallel
workers, multiple harness processes) never contend on shared state;
writes go through a temp file plus :func:`os.replace`, so readers
never observe a torn entry.

The cache root defaults to ``$FLEXSNOOP_CACHE_DIR`` when set, else
``~/.cache/flexsnoop``.  Corrupt or unreadable entries are treated as
misses and deleted.  Bumping :data:`CACHE_SCHEMA_VERSION` (or the
package version) invalidates every old entry, since both are folded
into the key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro import __version__
from repro.config import MachineConfig, TopologyConfig
from repro.sim.system import SimulationResult

#: Bump when the semantics of cached results change (new counters,
#: changed simulator behaviour that is not reflected in the package
#: version, ...).  Folded into every cache key.
#: v2: MachineConfig grew the ``tracing`` field, which changes every
#: config fingerprint.
#: v3: RunSpec fingerprints are keyed on the workload source
#: descriptor (content hash for file replays, parameter snapshot for
#: synthetic profiles) instead of the literal spec fields.
CACHE_SCHEMA_VERSION = 3

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "FLEXSNOOP_CACHE_DIR"


def default_cache_root() -> Path:
    """Resolve the cache directory: env override, else XDG-ish home."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "flexsnoop"


#: Snapshot of the stock topology; computed once at import.
_DEFAULT_TOPOLOGY = dataclasses.asdict(TopologyConfig())


def config_fingerprint(config: MachineConfig) -> Dict[str, Any]:
    """A JSON-serializable snapshot of a machine configuration.

    ``dataclasses.asdict`` recurses through the nested frozen config
    dataclasses; tuples become lists, which is fine because the JSON
    canonicalization below is only ever compared against itself.

    The ``topology`` section is elided when it equals the default
    (single embedded ring), so fingerprints stay byte-stable across
    that field's introduction and existing caches remain warm -
    mirroring the ``core`` field precedent in
    :meth:`repro.harness.parallel.RunSpec.fingerprint`.
    """
    payload = dataclasses.asdict(config)
    if payload.get("topology") == _DEFAULT_TOPOLOGY:
        del payload["topology"]
    return payload


def fingerprint_key(payload: Dict[str, Any]) -> str:
    """Stable SHA-256 hex digest of a fingerprint payload.

    The payload is extended with the code version and cache schema so
    results computed by different code never collide.
    """
    versioned = dict(payload)
    versioned["__code_version__"] = __version__
    versioned["__cache_schema__"] = CACHE_SCHEMA_VERSION
    canonical = json.dumps(versioned, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Disk-backed result store with hit/miss/store accounting.

    Args:
        root: cache directory (default: :func:`default_cache_root`).
        enabled: when False, every lookup misses and nothing is
            written - callers can thread one object through
            unconditionally and flip this off for ``--no-cache``.
    """

    def __init__(
        self, root: Optional[Path] = None, enabled: bool = True
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    # Key/path plumbing

    @property
    def _bucket_root(self) -> Path:
        return self.root / ("v%d" % CACHE_SCHEMA_VERSION)

    def _path_for(self, key: str) -> Path:
        return self._bucket_root / key[:2] / (key + ".pkl")

    # ------------------------------------------------------------------
    # Lookup / store

    def get(self, key: str) -> Optional[SimulationResult]:
        """Return the cached result for ``key``, or None on a miss."""
        if not self.enabled:
            self.misses += 1
            return None
        path = self._path_for(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Unpickling untrusted bytes can raise nearly anything
            # (UnpicklingError, EOFError, ValueError, stale class
            # layouts...).  Torn write or plain corruption either way:
            # drop the entry and treat it as a miss.
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            return None
        if not isinstance(result, SimulationResult):
            self.misses += 1
            return None
        # Refresh the access time so :meth:`prune`'s LRU ordering sees
        # recently-served entries as live.  Best-effort: a read-only
        # cache still serves hits.
        try:
            os.utime(path)
        except OSError:
            pass
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Persist ``result`` under ``key`` (atomic replace)."""
        if not self.enabled:
            return
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            path.name + ".tmp.%d" % os.getpid()
        )
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # A full or read-only disk must not kill the simulation
            # that produced the result; the cache is best-effort.
            try:
                os.remove(tmp)
            except OSError:
                pass
            return
        self.stores += 1

    # ------------------------------------------------------------------
    # Maintenance

    def _entry_paths(self) -> Iterator[Path]:
        """Entries of the *current* schema only.

        Accounting (``entry_count``/``size_bytes``/``info``) must not
        count entries written under older schema versions as live -
        they can never be returned by :meth:`get`.
        """
        bucket = self._bucket_root
        if not bucket.is_dir():
            return
        for path in sorted(bucket.rglob("*.pkl")):
            yield path

    def _all_entry_paths(self) -> Iterator[Path]:
        """Entries across every schema version (maintenance)."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.rglob("*.pkl")):
            yield path

    def _tmp_paths(self) -> Iterator[Path]:
        """Temp files from in-flight or crashed :meth:`put` calls."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.rglob("*.pkl.tmp.*")):
            yield path

    def entry_count(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def size_bytes(self) -> int:
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def stale_entry_count(self) -> int:
        """Entries under older schema versions (never served)."""
        return sum(1 for _ in self._all_entry_paths()) - self.entry_count()

    def prune_tmp(self, max_age_seconds: float = 3600.0) -> int:
        """Remove orphaned ``.pkl.tmp.<pid>`` files.

        A writer that dies between creating its temp file and the
        ``os.replace`` leaves the temp behind forever - no later call
        ever reuses the name (pids differ) or cleans it up.  Only
        temps older than ``max_age_seconds`` are removed, so an
        in-flight writer's file is never yanked out from under it.
        Returns the number removed.
        """
        now = time.time()
        removed = 0
        for path in list(self._tmp_paths()):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age >= max_age_seconds:
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
        return removed

    def _remove_empty_dirs(self) -> None:
        """Drop emptied shard/version directories (deepest first)."""
        if not self.root.is_dir():
            return
        subdirs = sorted(
            (path for path in self.root.rglob("*") if path.is_dir()),
            key=lambda path: len(path.parts),
            reverse=True,
        )
        for path in subdirs:
            try:
                path.rmdir()  # fails (and is kept) unless empty
            except OSError:
                pass

    def prune(self, max_size_bytes: int) -> Dict[str, int]:
        """Shrink the current-schema cache under a size budget.

        Evicts least-recently-used entries first, where "used" is the
        file mtime - :meth:`get` refreshes it on every hit, so entries
        a recent run served survive entries nobody has touched.  Only
        current-schema entries count toward (and are evicted against)
        the budget; stale-schema entries are dead weight handled by
        :meth:`clear`.  Returns ``{"removed", "freed_bytes",
        "size_bytes"}`` with the post-prune size.
        """
        if max_size_bytes < 0:
            raise ValueError("max_size_bytes must be >= 0")
        entries = []
        total = 0
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort(key=lambda item: item[0])
        removed = 0
        freed = 0
        for _mtime, size, path in entries:
            if total <= max_size_bytes:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            freed += size
            removed += 1
        if removed:
            self._remove_empty_dirs()
        return {
            "removed": removed,
            "freed_bytes": freed,
            "size_bytes": total,
        }

    def clear(self) -> int:
        """Delete every cached entry - current *and* stale schemas -
        plus orphaned temp files and the directories they emptied.
        Returns the number of entries removed (temps not counted).
        """
        removed = 0
        for path in list(self._all_entry_paths()):
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        self.prune_tmp(max_age_seconds=0.0)
        self._remove_empty_dirs()
        return removed

    def info(self) -> Dict[str, Any]:
        """Summary used by ``flexsnoop cache info`` and tests."""
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "entries": self.entry_count(),
            "size_bytes": self.size_bytes(),
            "stale_entries": self.stale_entry_count(),
            "tmp_files": sum(1 for _ in self._tmp_paths()),
            "schema": CACHE_SCHEMA_VERSION,
            "code_version": __version__,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def __repr__(self) -> str:
        return "ResultCache(root=%r, enabled=%r)" % (
            str(self.root),
            self.enabled,
        )

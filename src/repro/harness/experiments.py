"""Experiment matrix runner.

The paper's evaluation (Section 6) compares seven algorithms across
three workload classes along four dimensions, then varies the
Supplier Predictor organization.  This module runs that matrix and
formats each figure's data the way the paper presents it.

Results are memoized per (algorithm, workload, predictor, scale,
seed): Figures 6-9 all derive from the *same* run matrix, just like
the paper derives them from the same simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.harness.parallel import RunSpec, execute_spec, run_specs
from repro.harness.result_cache import ResultCache
from repro.sim.system import SimulationResult

#: Algorithms of the main comparison (Section 6.1), in paper order.
MAIN_ALGORITHMS: Tuple[str, ...] = (
    "lazy",
    "eager",
    "oracle",
    "subset",
    "superset_con",
    "superset_agg",
    "exact",
)

#: Workload classes of the evaluation.
WORKLOADS: Tuple[str, ...] = ("splash2", "specjbb", "specweb")

#: Predictor variants of the sensitivity study (Section 6.2).
SENSITIVITY_PREDICTORS: Dict[str, Tuple[str, ...]] = {
    "subset": ("Sub512", "Sub2k", "Sub8k"),
    "superset_con": ("Supy512", "Supy2k", "Supn2k"),
    "superset_agg": ("Supy512", "Supy2k", "Supn2k"),
    "exact": ("Exa512", "Exa2k", "Exa8k"),
}

#: Default trace length per core for harness/benchmark runs.  Large
#: enough for stable statistics, small enough for quick iteration.
DEFAULT_SCALE = 2000


#: Fraction of each run used to warm caches and predictors before
#: statistics are collected (the paper similarly skips workload
#: initialization before measuring).
DEFAULT_WARMUP = 0.35


def run_experiment(
    algorithm: str,
    workload: str,
    predictor: Optional[str] = None,
    accesses_per_core: int = DEFAULT_SCALE,
    seed: int = 0,
    config: Optional[MachineConfig] = None,
    warmup_fraction: float = DEFAULT_WARMUP,
    core: str = "object",
    topology: Optional[str] = None,
    num_cmps: int = 0,
    think_scale: float = 1.0,
) -> SimulationResult:
    """Run one (algorithm, workload) cell of the evaluation matrix.

    Args:
        algorithm: algorithm name (see ``repro.core.ALGORITHMS``).
        workload: ``splash2``, ``specjbb`` or ``specweb``.
        predictor: named predictor override (Section 5.2 names); by
            default the algorithm's main-comparison predictor is used.
        accesses_per_core: trace length (0 = workload default).
        seed: workload seed override (0 = workload default).
        config: full machine config override (advanced use; its
            predictor field is still replaced when ``predictor`` or
            the algorithm default says so).
        core: simulation-core implementation (registry kind ``core``):
            ``object`` (default), ``soa``, or ``jit`` (numba-compiled
            kernel with a pure-Python fallback).
        topology: snoop-topology override (registry kind
            ``topology``): None leaves the machine's default single
            ring; e.g. ``hier_ring`` for the two-level machine.
        num_cmps: machine-span override (0 = the workload's own
            geometry); reshapes synthetic workloads across that many
            CMPs.
        think_scale: think-time multiplier (1.0 = workload default);
            the loaded-regime injection axis (smaller = more load).
    """
    return execute_spec(
        RunSpec(
            algorithm=algorithm,
            workload=workload,
            predictor=predictor,
            accesses_per_core=accesses_per_core,
            seed=seed,
            warmup_fraction=warmup_fraction,
            config=config,
            core=core,
            topology=topology,
            num_cmps=num_cmps,
            think_scale=think_scale,
        )
    )


#: One (algorithm, workload, predictor) cell of the matrix.
MatrixCell = Tuple[str, str, Optional[str]]


@dataclass
class ExperimentMatrix:
    """Runs and caches the full evaluation matrix.

    All figure extractors pull from the shared in-memory cache, so the
    matrix is simulated at most once per configuration per process.
    Two optional layers accelerate it further:

    * ``jobs``: cells that are not yet simulated are fanned out over a
      process pool (see :mod:`repro.harness.parallel`).  Results are
      bit-identical to a serial run; ``jobs=1`` forces serial.
    * ``result_cache``: a persistent on-disk cache shared across
      processes and invocations, so ``flexsnoop figure 8`` after a
      figure-6 run at the same scale performs zero new simulations.
    """

    accesses_per_core: int = DEFAULT_SCALE
    seed: int = 0
    algorithms: Sequence[str] = MAIN_ALGORITHMS
    workloads: Sequence[str] = WORKLOADS
    jobs: Optional[int] = 1
    result_cache: Optional[ResultCache] = None
    core: str = "object"
    topology: Optional[str] = None
    num_cmps: int = 0
    think_scale: float = 1.0
    _cache: Dict[MatrixCell, SimulationResult] = field(
        default_factory=dict
    )

    def _spec(self, cell: MatrixCell) -> RunSpec:
        algorithm, workload, predictor = cell
        return RunSpec(
            algorithm=algorithm,
            workload=workload,
            predictor=predictor,
            accesses_per_core=self.accesses_per_core,
            seed=self.seed,
            warmup_fraction=DEFAULT_WARMUP,
            core=self.core,
            topology=self.topology,
            num_cmps=self.num_cmps,
            think_scale=self.think_scale,
        )

    def ensure(self, cells: Sequence[MatrixCell]) -> None:
        """Simulate every not-yet-known cell, fanning out when a pool
        is allowed.  Figure extractors bulk-ensure their whole plan up
        front so the expensive part parallelizes."""
        todo = [cell for cell in cells if cell not in self._cache]
        if not todo:
            return
        results = run_specs(
            [self._spec(cell) for cell in todo],
            jobs=self.jobs,
            cache=self.result_cache,
        )
        for cell, result in zip(todo, results):
            self._cache[cell] = result

    def result(
        self,
        algorithm: str,
        workload: str,
        predictor: Optional[str] = None,
    ) -> SimulationResult:
        key = (algorithm, workload, predictor)
        if key not in self._cache:
            self.ensure([key])
        return self._cache[key]

    def main_cells(self) -> List[MatrixCell]:
        """Cells of the main comparison (Figures 6-9)."""
        return [
            (algorithm, workload, None)
            for workload in self.workloads
            for algorithm in self.algorithms
        ]

    def sensitivity_cells(self) -> List[MatrixCell]:
        """Extra cells of the predictor sensitivity study (Figures
        10/11): every named predictor variant, plus the Lazy baseline
        runs fig11 reads the Perfect reference from."""
        cells: List[MatrixCell] = []
        for workload in self.workloads:
            cells.append(("lazy", workload, None))
            for algorithm, predictors in SENSITIVITY_PREDICTORS.items():
                cells.append((algorithm, workload, None))
                for predictor in predictors:
                    cells.append((algorithm, workload, predictor))
        return cells

    def _normalized_cells(self) -> List[MatrixCell]:
        """Main cells plus the Lazy baselines the normalized figures
        divide by (Lazy may be absent from a restricted matrix)."""
        cells = self.main_cells()
        for workload in self.workloads:
            cell: MatrixCell = ("lazy", workload, None)
            if cell not in cells:
                cells.append(cell)
        return cells

    def run_main_matrix(self) -> None:
        """Eagerly run every (algorithm, workload) cell."""
        self.ensure(self.main_cells())

    # ------------------------------------------------------------------
    # Figure 6: snoop operations per read snoop request

    def fig6_snoops_per_request(self) -> Dict[str, Dict[str, float]]:
        """{workload: {algorithm: snoops/request}} (absolute values)."""
        self.ensure(self.main_cells())
        return {
            workload: {
                algorithm: self.result(
                    algorithm, workload
                ).stats.snoops_per_read_request
                for algorithm in self.algorithms
            }
            for workload in self.workloads
        }

    # ------------------------------------------------------------------
    # Figure 7: ring read messages, normalized to Lazy

    def fig7_read_messages(self) -> Dict[str, Dict[str, float]]:
        """{workload: {algorithm: crossings normalized to Lazy}}."""
        self.ensure(self._normalized_cells())
        table: Dict[str, Dict[str, float]] = {}
        for workload in self.workloads:
            lazy = self.result("lazy", workload).stats.read_ring_crossings
            table[workload] = {
                algorithm: (
                    self.result(algorithm, workload).stats.read_ring_crossings
                    / lazy
                    if lazy
                    else 0.0
                )
                for algorithm in self.algorithms
            }
        return table

    # ------------------------------------------------------------------
    # Figure 8: execution time, normalized to Lazy

    def fig8_execution_time(self) -> Dict[str, Dict[str, float]]:
        self.ensure(self._normalized_cells())
        table: Dict[str, Dict[str, float]] = {}
        for workload in self.workloads:
            lazy = self.result("lazy", workload).exec_time
            table[workload] = {
                algorithm: (
                    self.result(algorithm, workload).exec_time / lazy
                    if lazy
                    else 0.0
                )
                for algorithm in self.algorithms
            }
        return table

    # ------------------------------------------------------------------
    # Figure 9: snoop-traffic energy, normalized to Lazy

    def fig9_energy(self) -> Dict[str, Dict[str, float]]:
        self.ensure(self._normalized_cells())
        table: Dict[str, Dict[str, float]] = {}
        for workload in self.workloads:
            lazy = self.result("lazy", workload).total_energy
            table[workload] = {
                algorithm: (
                    self.result(algorithm, workload).total_energy / lazy
                    if lazy
                    else 0.0
                )
                for algorithm in self.algorithms
            }
        return table

    # ------------------------------------------------------------------
    # Figure 10: predictor-size sensitivity of execution time

    def fig10_sensitivity(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """{workload: {algorithm: {predictor: exec time normalized to
        the main-comparison predictor}}}."""
        self.ensure(
            [
                (algorithm, workload, predictor)
                for workload in self.workloads
                for algorithm, predictors in SENSITIVITY_PREDICTORS.items()
                for predictor in (None,) + predictors
            ]
        )
        table: Dict[str, Dict[str, Dict[str, float]]] = {}
        for workload in self.workloads:
            table[workload] = {}
            for algorithm, predictors in SENSITIVITY_PREDICTORS.items():
                center = self.result(algorithm, workload).exec_time
                table[workload][algorithm] = {
                    predictor: (
                        self.result(algorithm, workload, predictor).exec_time
                        / center
                        if center
                        else 0.0
                    )
                    for predictor in predictors
                }
        return table

    # ------------------------------------------------------------------
    # Figure 11: Supplier Predictor accuracy

    def fig11_accuracy(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """{predictor-label: {workload: fraction breakdown}}.

        Includes the ``Perfect`` reference collected on the Lazy runs
        (checked at every node until the supplier is found).
        """
        plan = [
            ("Sub512", "subset", "Sub512"),
            ("Sub2k", "subset", "Sub2k"),
            ("Sub8k", "subset", "Sub8k"),
            ("SupCy512", "superset_con", "Supy512"),
            ("SupCy2k", "superset_con", "Supy2k"),
            ("SupCn2k", "superset_con", "Supn2k"),
            ("Exa512", "exact", "Exa512"),
            ("Exa2k", "exact", "Exa2k"),
            ("Exa8k", "exact", "Exa8k"),
        ]
        self.ensure(
            [("lazy", workload, None) for workload in self.workloads]
            + [
                (algorithm, workload, predictor)
                for _, algorithm, predictor in plan
                for workload in self.workloads
            ]
        )
        table: Dict[str, Dict[str, Dict[str, float]]] = {}
        table["Perfect"] = {
            workload: self.result(
                "lazy", workload
            ).stats.perfect_accuracy.fractions()
            for workload in self.workloads
        }
        for label, algorithm, predictor in plan:
            table[label] = {
                workload: self.result(
                    algorithm, workload, predictor
                ).stats.accuracy.fractions()
                for workload in self.workloads
            }
        return table


# ----------------------------------------------------------------------
# Topology comparison (fig6-style, ring vs hier_ring)

#: Algorithms of the topology comparison matrix: the two forwarding
#: extremes plus the Oracle bound, enough to show how the snoop
#: algorithms react to a different snoop-path shape.
TOPOLOGY_COMPARISON_ALGORITHMS: Tuple[str, ...] = (
    "lazy",
    "eager",
    "oracle",
)


def compare_topologies(
    topologies: Sequence[str] = ("ring", "hier_ring"),
    algorithms: Sequence[str] = TOPOLOGY_COMPARISON_ALGORITHMS,
    workloads: Sequence[str] = WORKLOADS,
    accesses_per_core: int = DEFAULT_SCALE,
    seed: int = 0,
    num_cmps: int = 0,
    jobs: Optional[int] = 1,
    result_cache: Optional[ResultCache] = None,
    core: str = "object",
) -> Dict[str, Dict[str, Dict[str, Dict[str, float]]]]:
    """Run the fig6-style matrix once per topology.

    Returns ``{topology: {"snoops_per_request": fig6-table,
    "exec_time": fig8-table}}``: the same (algorithm, workload) cells
    simulated on each named topology, so the effect of e.g. the
    two-level hierarchy on snoop counts and execution time reads off
    directly.  ``num_cmps`` applies to every topology (0 = each
    workload's own geometry), keeping the machines comparable.
    """
    table: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for topology in topologies:
        matrix = ExperimentMatrix(
            accesses_per_core=accesses_per_core,
            seed=seed,
            algorithms=tuple(algorithms),
            workloads=tuple(workloads),
            jobs=jobs,
            result_cache=result_cache,
            core=core,
            # "ring" is spelled explicitly (not None) so the run
            # proves the explicit-default path is bit-identical.
            topology=topology,
            num_cmps=num_cmps,
        )
        matrix.run_main_matrix()
        table[topology] = {
            "snoops_per_request": matrix.fig6_snoops_per_request(),
            "exec_time": matrix.fig8_execution_time(),
        }
    return table


def format_topology_comparison(
    table: Dict[str, Dict[str, Dict[str, Dict[str, float]]]],
) -> str:
    """Render :func:`compare_topologies` output as stacked fig6/fig8
    text tables, one block per topology."""
    blocks = []
    for topology, figures in table.items():
        blocks.append(
            format_by_workload(
                "Snoops per read request [topology=%s]" % topology,
                figures["snoops_per_request"],
            )
        )
        blocks.append(
            format_by_workload(
                "Execution time normalized to Lazy [topology=%s]"
                % topology,
                figures["exec_time"],
            )
        )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Formatting helpers (paper-style text tables)


def format_by_workload(
    title: str,
    table: Dict[str, Dict[str, float]],
    fmt: str = "%6.2f",
) -> str:
    """Render a {workload: {algorithm: value}} table like the paper's
    bar charts: one row per algorithm, one column per workload."""
    workloads = list(table)
    algorithms: List[str] = list(next(iter(table.values())))
    lines = [title]
    header = "%-14s" % "algorithm" + "".join(
        "%12s" % w for w in workloads
    )
    lines.append(header)
    lines.append("-" * len(header))
    for algorithm in algorithms:
        row = "%-14s" % algorithm + "".join(
            "%12s" % (fmt % table[w][algorithm]) for w in workloads
        )
        lines.append(row)
    return "\n".join(lines)


def format_accuracy_table(
    table: Dict[str, Dict[str, Dict[str, float]]]
) -> str:
    """Render the Figure 11 accuracy breakdown."""
    lines = ["Figure 11: Supplier Predictor accuracy (fractions)"]
    header = "%-10s %-9s %6s %6s %6s %6s" % (
        "predictor",
        "workload",
        "TP",
        "TN",
        "FP",
        "FN",
    )
    lines.append(header)
    lines.append("-" * len(header))
    for predictor, by_workload in table.items():
        for workload, frac in by_workload.items():
            lines.append(
                "%-10s %-9s %6.3f %6.3f %6.3f %6.3f"
                % (
                    predictor,
                    workload,
                    frac["true_positive"],
                    frac["true_negative"],
                    frac["false_positive"],
                    frac["false_negative"],
                )
            )
    return "\n".join(lines)

"""Experiment matrix runner.

The paper's evaluation (Section 6) compares seven algorithms across
three workload classes along four dimensions, then varies the
Supplier Predictor organization.  This module runs that matrix and
formats each figure's data the way the paper presents it.

Results are memoized per (algorithm, workload, predictor, scale,
seed): Figures 6-9 all derive from the *same* run matrix, just like
the paper derives them from the same simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig, NAMED_PREDICTORS, default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor, SimulationResult
from repro.workloads.profiles import build_workload

#: Algorithms of the main comparison (Section 6.1), in paper order.
MAIN_ALGORITHMS: Tuple[str, ...] = (
    "lazy",
    "eager",
    "oracle",
    "subset",
    "superset_con",
    "superset_agg",
    "exact",
)

#: Workload classes of the evaluation.
WORKLOADS: Tuple[str, ...] = ("splash2", "specjbb", "specweb")

#: Predictor variants of the sensitivity study (Section 6.2).
SENSITIVITY_PREDICTORS: Dict[str, Tuple[str, ...]] = {
    "subset": ("Sub512", "Sub2k", "Sub8k"),
    "superset_con": ("Supy512", "Supy2k", "Supn2k"),
    "superset_agg": ("Supy512", "Supy2k", "Supn2k"),
    "exact": ("Exa512", "Exa2k", "Exa8k"),
}

#: Default trace length per core for harness/benchmark runs.  Large
#: enough for stable statistics, small enough for quick iteration.
DEFAULT_SCALE = 2000


#: Fraction of each run used to warm caches and predictors before
#: statistics are collected (the paper similarly skips workload
#: initialization before measuring).
DEFAULT_WARMUP = 0.35


def run_experiment(
    algorithm: str,
    workload: str,
    predictor: Optional[str] = None,
    accesses_per_core: int = DEFAULT_SCALE,
    seed: int = 0,
    config: Optional[MachineConfig] = None,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> SimulationResult:
    """Run one (algorithm, workload) cell of the evaluation matrix.

    Args:
        algorithm: algorithm name (see ``repro.core.ALGORITHMS``).
        workload: ``splash2``, ``specjbb`` or ``specweb``.
        predictor: named predictor override (Section 5.2 names); by
            default the algorithm's main-comparison predictor is used.
        accesses_per_core: trace length (0 = workload default).
        seed: workload seed override (0 = workload default).
        config: full machine config override (advanced use; its
            predictor field is still replaced when ``predictor`` or
            the algorithm default says so).
    """
    trace = build_workload(workload, accesses_per_core, seed)
    if config is None:
        machine = default_machine(
            algorithm=algorithm,
            predictor=predictor,
            cores_per_cmp=trace.cores_per_cmp,
        )
    else:
        machine = config
        if predictor is not None:
            machine = machine.replace(
                predictor=NAMED_PREDICTORS[predictor]
            )
    algo = build_algorithm(algorithm)
    system = RingMultiprocessor(
        machine, algo, trace, warmup_fraction=warmup_fraction
    )
    return system.run()


@dataclass
class ExperimentMatrix:
    """Runs and caches the full evaluation matrix.

    All figure extractors pull from the shared cache, so the matrix is
    simulated at most once per configuration.
    """

    accesses_per_core: int = DEFAULT_SCALE
    seed: int = 0
    algorithms: Sequence[str] = MAIN_ALGORITHMS
    workloads: Sequence[str] = WORKLOADS
    _cache: Dict[Tuple[str, str, Optional[str]], SimulationResult] = field(
        default_factory=dict
    )

    def result(
        self,
        algorithm: str,
        workload: str,
        predictor: Optional[str] = None,
    ) -> SimulationResult:
        key = (algorithm, workload, predictor)
        if key not in self._cache:
            self._cache[key] = run_experiment(
                algorithm,
                workload,
                predictor,
                accesses_per_core=self.accesses_per_core,
                seed=self.seed,
            )
        return self._cache[key]

    def run_main_matrix(self) -> None:
        """Eagerly run every (algorithm, workload) cell."""
        for workload in self.workloads:
            for algorithm in self.algorithms:
                self.result(algorithm, workload)

    # ------------------------------------------------------------------
    # Figure 6: snoop operations per read snoop request

    def fig6_snoops_per_request(self) -> Dict[str, Dict[str, float]]:
        """{workload: {algorithm: snoops/request}} (absolute values)."""
        return {
            workload: {
                algorithm: self.result(
                    algorithm, workload
                ).stats.snoops_per_read_request
                for algorithm in self.algorithms
            }
            for workload in self.workloads
        }

    # ------------------------------------------------------------------
    # Figure 7: ring read messages, normalized to Lazy

    def fig7_read_messages(self) -> Dict[str, Dict[str, float]]:
        """{workload: {algorithm: crossings normalized to Lazy}}."""
        table: Dict[str, Dict[str, float]] = {}
        for workload in self.workloads:
            lazy = self.result("lazy", workload).stats.read_ring_crossings
            table[workload] = {
                algorithm: (
                    self.result(algorithm, workload).stats.read_ring_crossings
                    / lazy
                    if lazy
                    else 0.0
                )
                for algorithm in self.algorithms
            }
        return table

    # ------------------------------------------------------------------
    # Figure 8: execution time, normalized to Lazy

    def fig8_execution_time(self) -> Dict[str, Dict[str, float]]:
        table: Dict[str, Dict[str, float]] = {}
        for workload in self.workloads:
            lazy = self.result("lazy", workload).exec_time
            table[workload] = {
                algorithm: (
                    self.result(algorithm, workload).exec_time / lazy
                    if lazy
                    else 0.0
                )
                for algorithm in self.algorithms
            }
        return table

    # ------------------------------------------------------------------
    # Figure 9: snoop-traffic energy, normalized to Lazy

    def fig9_energy(self) -> Dict[str, Dict[str, float]]:
        table: Dict[str, Dict[str, float]] = {}
        for workload in self.workloads:
            lazy = self.result("lazy", workload).total_energy
            table[workload] = {
                algorithm: (
                    self.result(algorithm, workload).total_energy / lazy
                    if lazy
                    else 0.0
                )
                for algorithm in self.algorithms
            }
        return table

    # ------------------------------------------------------------------
    # Figure 10: predictor-size sensitivity of execution time

    def fig10_sensitivity(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """{workload: {algorithm: {predictor: exec time normalized to
        the main-comparison predictor}}}."""
        table: Dict[str, Dict[str, Dict[str, float]]] = {}
        for workload in self.workloads:
            table[workload] = {}
            for algorithm, predictors in SENSITIVITY_PREDICTORS.items():
                center = self.result(algorithm, workload).exec_time
                table[workload][algorithm] = {
                    predictor: (
                        self.result(algorithm, workload, predictor).exec_time
                        / center
                        if center
                        else 0.0
                    )
                    for predictor in predictors
                }
        return table

    # ------------------------------------------------------------------
    # Figure 11: Supplier Predictor accuracy

    def fig11_accuracy(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """{predictor-label: {workload: fraction breakdown}}.

        Includes the ``Perfect`` reference collected on the Lazy runs
        (checked at every node until the supplier is found).
        """
        table: Dict[str, Dict[str, Dict[str, float]]] = {}
        table["Perfect"] = {
            workload: self.result(
                "lazy", workload
            ).stats.perfect_accuracy.fractions()
            for workload in self.workloads
        }
        plan = [
            ("Sub512", "subset", "Sub512"),
            ("Sub2k", "subset", "Sub2k"),
            ("Sub8k", "subset", "Sub8k"),
            ("SupCy512", "superset_con", "Supy512"),
            ("SupCy2k", "superset_con", "Supy2k"),
            ("SupCn2k", "superset_con", "Supn2k"),
            ("Exa512", "exact", "Exa512"),
            ("Exa2k", "exact", "Exa2k"),
            ("Exa8k", "exact", "Exa8k"),
        ]
        for label, algorithm, predictor in plan:
            table[label] = {
                workload: self.result(
                    algorithm, workload, predictor
                ).stats.accuracy.fractions()
                for workload in self.workloads
            }
        return table


# ----------------------------------------------------------------------
# Formatting helpers (paper-style text tables)


def format_by_workload(
    title: str,
    table: Dict[str, Dict[str, float]],
    fmt: str = "%6.2f",
) -> str:
    """Render a {workload: {algorithm: value}} table like the paper's
    bar charts: one row per algorithm, one column per workload."""
    workloads = list(table)
    algorithms: List[str] = list(next(iter(table.values())))
    lines = [title]
    header = "%-14s" % "algorithm" + "".join(
        "%12s" % w for w in workloads
    )
    lines.append(header)
    lines.append("-" * len(header))
    for algorithm in algorithms:
        row = "%-14s" % algorithm + "".join(
            "%12s" % (fmt % table[w][algorithm]) for w in workloads
        )
        lines.append(row)
    return "\n".join(lines)


def format_accuracy_table(
    table: Dict[str, Dict[str, Dict[str, float]]]
) -> str:
    """Render the Figure 11 accuracy breakdown."""
    lines = ["Figure 11: Supplier Predictor accuracy (fractions)"]
    header = "%-10s %-9s %6s %6s %6s %6s" % (
        "predictor",
        "workload",
        "TP",
        "TN",
        "FP",
        "FN",
    )
    lines.append(header)
    lines.append("-" * len(header))
    for predictor, by_workload in table.items():
        for workload, frac in by_workload.items():
            lines.append(
                "%-10s %-9s %6.3f %6.3f %6.3f %6.3f"
                % (
                    predictor,
                    workload,
                    frac["true_positive"],
                    frac["true_negative"],
                    frac["false_positive"],
                    frac["false_negative"],
                )
            )
    return "\n".join(lines)

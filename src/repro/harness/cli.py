"""Command-line interface: ``flexsnoop``.

Examples::

    flexsnoop run --algorithm superset_agg --workload splash2
    flexsnoop figure 6 --jobs 4
    flexsnoop figure 9 --scale 1000
    flexsnoop figure saturation --scale 800 --jobs 4
    flexsnoop sweep ring.link_occupancy --values 0,15,30,60
    flexsnoop table 1
    flexsnoop report --scale 1000 --out report.md
    flexsnoop trace record --algorithm subset --workload specjbb \
        --out jbb-trace.jsonl --audit
    flexsnoop trace record --algorithm lazy --workload file:jbb.jsonl \
        --out run.jsonl --sink jsonl
    flexsnoop trace show jbb-trace.jsonl --address 0x2a40 --limit 5
    flexsnoop trace audit jbb-trace.jsonl
    flexsnoop trace workload --workload specjbb --out jbb.jsonl
    flexsnoop trace convert --format gem5 --in mem.trace --out mem.jsonl
    flexsnoop run --algorithm subset --workload file:mem.jsonl
    flexsnoop cache info
    flexsnoop cache prune --max-size 256M
    flexsnoop cache clear
    flexsnoop profile --algorithm exact --workload specweb --top 20
    flexsnoop bench --out BENCH_02.json
    flexsnoop bench --check BENCH_02.json

Matrix commands (``figure``, ``report``) fan independent simulations
out over worker processes (``--jobs``, default: one per CPU) and
memoize completed runs in a persistent cache under
``$FLEXSNOOP_CACHE_DIR`` (default ``~/.cache/flexsnoop``); pass
``--no-cache`` to bypass it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.analytical import AnalyticalParams, table1, table3
from repro.harness.experiments import (
    MAIN_ALGORITHMS,
    ExperimentMatrix,
    format_accuracy_table,
    format_by_workload,
    run_experiment,
)
from repro.harness.result_cache import ResultCache
from repro.registry import REGISTRY, UnknownComponentError
from repro.sim.soa import SoaUnsupportedError


def _make_cache(args: argparse.Namespace) -> ResultCache:
    return ResultCache(enabled=not getattr(args, "no_cache", False))


def _parse_size(text: str) -> int:
    """Parse a byte size with an optional K/M/G suffix (``"256M"``)."""
    raw = text.strip()
    multiplier = 1
    if raw and raw[-1].lower() in ("k", "m", "g"):
        multiplier = {
            "k": 1024, "m": 1024 ** 2, "g": 1024 ** 3,
        }[raw[-1].lower()]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "bad size %r (expect e.g. 4096, 64K, 256M, 1G)" % text
        )
    if value < 0:
        raise argparse.ArgumentTypeError("size must be >= 0: %r" % text)
    return int(value * multiplier)


def _all_algorithm_names() -> List[str]:
    """Every registered algorithm, paper order first, extensions after.

    The registry sorts alphabetically; sweeps and figure matrices read
    better with the paper's seven main-comparison algorithms leading
    in their Section 6 order, followed by the post-paper additions
    (``superset_hybrid``, ``criticality``, entry-point plugins).
    """
    ordered = list(MAIN_ALGORITHMS)
    for name in REGISTRY.names("algorithm"):
        if name not in ordered:
            ordered.append(name)
    return ordered


def _parse_algorithm_list(text: str) -> List[str]:
    """Parse a comma-separated ``--algorithms`` value.

    The word ``all`` (any case) expands to every registered algorithm
    via :func:`_all_algorithm_names`; duplicates are dropped while
    preserving first-mention order.  Unknown names are *not* rejected
    here - they resolve through the registry at execution time, which
    also sees entry-point plugins and produces the uniform "unknown
    algorithm" error.
    """
    expanded: List[str] = []
    for item in text.split(","):
        name = item.strip()
        if not name:
            continue
        if name.lower() == "all":
            for known in _all_algorithm_names():
                if known not in expanded:
                    expanded.append(known)
        elif name not in expanded:
            expanded.append(name)
    return expanded


def _refuse_unsupported_core(core: str, algorithms: List[str]) -> None:
    """Pre-flight an algorithm list against the requested core.

    The jit core only compiles policies that publish a static decision
    table; an algorithm whose registry metadata says ``dynamic_choose``
    would be rejected at construction time anyway, but for matrix
    commands that rejection happens deep inside a worker pool.  Raising
    the same :class:`SoaUnsupportedError` here keeps the message (which
    names the policy's decision inputs) on one line and lets ``main``'s
    usual fall-back-to-object / ``--strict-core`` machinery apply.

    Unknown core or algorithm names are left alone: they get the
    registry's uniform error when the run actually resolves them.
    """
    try:
        if REGISTRY.canonical("core", core) != "jit":
            return
    except UnknownComponentError:
        return
    for name in algorithms:
        try:
            meta = REGISTRY.metadata("algorithm", name)
        except UnknownComponentError:
            continue
        if meta.get("dynamic_choose"):
            raise SoaUnsupportedError(
                "core=jit does not support: algorithm %r (dynamic "
                "choose() over decision inputs %s has no static "
                "decision table to compile); use core=object"
                % (name, "/".join(meta.get("decision_inputs", ())))
            )


def _add_component_options(
    parser: argparse.ArgumentParser,
    default_algorithm: str,
    default_workload: str,
) -> None:
    """Algorithm/workload/predictor selection flags.

    Names are NOT constrained with argparse ``choices``: they resolve
    through the component registry at execution time (which also sees
    entry-point plugins), and an unknown name produces the registry's
    uniform "unknown <kind> ...; known: ..." error via main()'s
    handler, exit status 2.
    """
    parser.add_argument(
        "--algorithm",
        default=default_algorithm,
        help="algorithm name (known: %s)"
        % ", ".join(REGISTRY.names("algorithm")),
    )
    parser.add_argument(
        "--workload",
        default=default_workload,
        help="workload source spec: a registered name (known: %s) or "
        "file:PATH / gem5:PATH / champsim:PATH for trace replay"
        % ", ".join(REGISTRY.names("workload")),
    )
    parser.add_argument(
        "--predictor",
        default=None,
        help="named predictor config (known: %s; default: the "
        "algorithm's paper default)" % ", ".join(REGISTRY.names("predictor")),
    )


def _add_topology_option(
    parser: argparse.ArgumentParser, with_num_cmps: bool = False
) -> None:
    parser.add_argument(
        "--topology",
        default=None,
        help="snoop topology (known: %s; default: the machine's "
        "single embedded ring)" % ", ".join(REGISTRY.names("topology")),
    )
    if with_num_cmps:
        parser.add_argument(
            "--num-cmps",
            type=int,
            default=0,
            help="reshape the synthetic workload across this many "
            "CMPs (0 = the workload's own geometry; defaults to 16 "
            "when --topology hier_ring is selected)",
        )


def _resolved_num_cmps(args: argparse.Namespace) -> int:
    """``--num-cmps``, defaulted to the two-level reference machine.

    An unset ``--num-cmps`` combined with ``--topology hier_ring``
    means the 16-CMP machine of the hierarchical evaluation rather
    than the workload's 8-CMP paper geometry, which would leave the
    hierarchy nearly degenerate (local rings of two).
    """
    num_cmps = getattr(args, "num_cmps", 0)
    topology = getattr(args, "topology", None)
    if not num_cmps and topology is not None:
        try:
            canonical = REGISTRY.canonical("topology", topology)
        except UnknownComponentError:
            return num_cmps  # surfaced with the uniform error later
        if canonical == "hier_ring":
            return 16
    return num_cmps


def _add_core_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--core",
        default="object",
        help="simulation-core implementation (known: %s; all produce "
        "bit-identical summaries)" % ", ".join(REGISTRY.names("core")),
    )
    parser.add_argument(
        "--strict-core",
        action="store_true",
        help="fail instead of falling back to core=object when the "
        "requested core does not support the configuration",
    )


def _add_matrix_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes for the simulation matrix "
        "(0 = one per CPU, 1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent result cache",
    )


def _cmd_run(args: argparse.Namespace) -> int:
    _refuse_unsupported_core(args.core, [args.algorithm])
    result = run_experiment(
        args.algorithm,
        args.workload,
        predictor=args.predictor,
        accesses_per_core=args.scale,
        seed=args.seed,
        core=args.core,
        topology=args.topology,
        num_cmps=_resolved_num_cmps(args),
    )
    print("algorithm : %s" % result.algorithm)
    print("workload  : %s" % result.workload)
    print("exec time : %d cycles" % result.exec_time)
    print("energy    : %.1f nJ" % result.total_energy)
    for key, value in sorted(result.stats.summary().items()):
        print("%-28s %s" % (key, value))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.number == "saturation":
        from repro.harness.saturation import (
            DEFAULT_THINK_SCALES,
            format_saturation,
            run_saturation,
        )

        try:
            scales = (
                [float(s) for s in args.think_scales.split(",")
                 if s.strip()]
                if args.think_scales
                else DEFAULT_THINK_SCALES
            )
        except ValueError:
            print(
                "flexsnoop: --think-scales must be a comma-separated "
                "list of positive floats, got %r" % args.think_scales,
                file=sys.stderr,
            )
            return 2
        try:
            targets = (
                [float(s) for s in args.target_rates.split(",")
                 if s.strip()]
                if args.target_rates
                else None
            )
        except ValueError:
            print(
                "flexsnoop: --target-rates must be a comma-separated "
                "list of positive floats, got %r" % args.target_rates,
                file=sys.stderr,
            )
            return 2
        algorithms = _parse_algorithm_list(args.algorithms)
        if not algorithms:
            print(
                "flexsnoop: --algorithms is empty (expect a comma "
                "list of algorithm names, or 'all')",
                file=sys.stderr,
            )
            return 2
        _refuse_unsupported_core(args.core, algorithms)
        curves = run_saturation(
            algorithms=algorithms,
            topologies=[t for t in args.topologies.split(",") if t],
            workload=args.workload,
            think_scales=scales,
            target_rates=targets,
            accesses_per_core=args.scale,
            seed=args.seed,
            link_occupancy=args.link_occupancy,
            serialize_snoop_port=not args.no_serialize_port,
            num_cmps=getattr(args, "num_cmps", 0),
            jobs=args.jobs,
            cache=_make_cache(args),
            core=args.core,
        )
        print(format_saturation(curves, knee_factor=args.knee_factor))
        return 0
    if args.number == "criticality":
        # Criticality-aware snooping vs the forwarding extremes (Lazy,
        # Eager) and the strongest predictor baseline (Exact): the
        # fig6/fig8 views where the criticality escalation shows up.
        # --think-scale < 1 re-paces the workloads into the loaded
        # regime, where retries and MSHR queueing (the criticality
        # inputs) actually occur.
        algorithms = ("lazy", "eager", "exact", "criticality")
        _refuse_unsupported_core(args.core, list(algorithms))
        matrix = ExperimentMatrix(
            accesses_per_core=args.scale,
            seed=args.seed,
            algorithms=algorithms,
            jobs=args.jobs,
            result_cache=_make_cache(args),
            core=args.core,
            topology=args.topology,
            num_cmps=_resolved_num_cmps(args),
            think_scale=args.think_scale,
        )
        suffix = (
            ""
            if args.think_scale == 1.0
            else " [loaded: think_scale=%g]" % args.think_scale
        )
        print(
            format_by_workload(
                "Criticality: snoop operations per read snoop request"
                + suffix,
                matrix.fig6_snoops_per_request(),
            )
        )
        print()
        print(
            format_by_workload(
                "Criticality: execution time (normalized to Lazy)"
                + suffix,
                matrix.fig8_execution_time(),
                fmt="%6.3f",
            )
        )
        return 0
    if args.number == "topology":
        from repro.harness.experiments import (
            compare_topologies,
            format_topology_comparison,
        )

        table = compare_topologies(
            accesses_per_core=args.scale,
            seed=args.seed,
            num_cmps=_resolved_num_cmps(args),
            jobs=args.jobs,
            result_cache=_make_cache(args),
            core=args.core,
        )
        print(format_topology_comparison(table))
        return 0
    try:
        number = int(args.number)
    except ValueError:
        print(
            "unknown figure %r (know 6-11, 'topology', 'saturation' "
            "and 'criticality')" % args.number,
            file=sys.stderr,
        )
        return 2
    matrix = ExperimentMatrix(
        accesses_per_core=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        result_cache=_make_cache(args),
        core=args.core,
        topology=args.topology,
        num_cmps=_resolved_num_cmps(args),
    )
    if number == 6:
        print(
            format_by_workload(
                "Figure 6: snoop operations per read snoop request",
                matrix.fig6_snoops_per_request(),
            )
        )
    elif number == 7:
        print(
            format_by_workload(
                "Figure 7: ring read messages (normalized to Lazy)",
                matrix.fig7_read_messages(),
            )
        )
    elif number == 8:
        print(
            format_by_workload(
                "Figure 8: execution time (normalized to Lazy)",
                matrix.fig8_execution_time(),
                fmt="%6.3f",
            )
        )
    elif number == 9:
        print(
            format_by_workload(
                "Figure 9: snoop-traffic energy (normalized to Lazy)",
                matrix.fig9_energy(),
                fmt="%6.3f",
            )
        )
    elif number == 10:
        table = matrix.fig10_sensitivity()
        print("Figure 10: execution-time sensitivity to predictor size")
        for workload, by_algorithm in table.items():
            for algorithm, by_predictor in by_algorithm.items():
                for predictor, value in by_predictor.items():
                    print(
                        "%-9s %-13s %-9s %6.3f"
                        % (workload, algorithm, predictor, value)
                    )
    elif number == 11:
        print(format_accuracy_table(matrix.fig11_accuracy()))
    else:
        print(
            "unknown figure %d (know 6-11, 'topology', 'saturation' "
            "and 'criticality')" % number,
            file=sys.stderr,
        )
        return 2
    return 0


def _parse_sweep_value(text: str):
    """Parse one ``--values`` item: int, float, bool or bare string."""
    raw = text.strip()
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness.sweep import run_sweep

    values = [
        _parse_sweep_value(v) for v in args.values.split(",") if v.strip()
    ]
    if not values:
        print("flexsnoop: --values is empty", file=sys.stderr)
        return 2
    _refuse_unsupported_core(args.core, [args.algorithm])
    try:
        sweep = run_sweep(
            args.field,
            values,
            algorithm=args.algorithm,
            workload=args.workload,
            accesses_per_core=args.scale,
            seed=args.seed,
            jobs=args.jobs,
            cache=_make_cache(args),
            core=args.core,
        )
    except SoaUnsupportedError:
        # A ValueError subclass, but it belongs to main()'s core
        # fallback machinery, not to the typo handler below.
        raise
    except ValueError as exc:
        # The field resolver rejects typos with the full list of
        # valid dotted paths; surface that verbatim.
        print("flexsnoop: %s" % exc, file=sys.stderr)
        return 2
    try:
        series = sweep.series(args.metric)
    except AttributeError:
        print(
            "flexsnoop: unknown metric %r (expect a SimulationResult "
            "or RunStats attribute, e.g. exec_time, total_energy, "
            "mean_read_miss_latency)" % args.metric,
            file=sys.stderr,
        )
        return 2
    print(
        "sweep %s  [algorithm=%s workload=%s core=%s]"
        % (args.field, args.algorithm, args.workload, args.core)
    )
    print("%16s  %s" % ("value", args.metric))
    for value in values:
        metric = series[value]
        rendered = (
            "%.4f" % metric if isinstance(metric, float) else metric
        )
        print("%16s  %s" % (value, rendered))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    params = AnalyticalParams(num_nodes=args.nodes)
    if args.number == 1:
        rows = table1(params)
        print("Table 1: baseline algorithms (analytical, N=%d)" % args.nodes)
    elif args.number == 3:
        rows = table3(params)
        print(
            "Table 3: Flexible Snooping algorithms (analytical, N=%d)"
            % args.nodes
        )
    else:
        print("unknown table %d (know 1 and 3)" % args.number, file=sys.stderr)
        return 2
    print(
        "%-14s %10s %8s %9s"
        % ("algorithm", "latency", "snoops", "messages")
    )
    for name, row in rows.items():
        print(
            "%-14s %10.1f %8.2f %9.2f"
            % (name, row["latency"], row["snoops"], row["messages"])
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report import render_report

    matrix = ExperimentMatrix(
        accesses_per_core=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        result_cache=_make_cache(args),
        core=args.core,
        topology=args.topology,
        num_cmps=_resolved_num_cmps(args),
    )
    figures = (
        [int(f) for f in args.figures.split(",")]
        if args.figures
        else None
    )
    text = render_report(matrix, figures=figures)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("wrote %s" % args.out)
    else:
        print(text)
    return 0


def _cmd_trace_workload(args: argparse.Namespace) -> int:
    from repro.workloads.io import save_trace
    from repro.workloads.source import resolve_source

    workload = resolve_source(
        args.workload, accesses_per_core=args.scale, seed=args.seed
    ).materialize()
    save_trace(workload, args.out)
    print(
        "wrote %s: %d cores, %d accesses"
        % (args.out, workload.num_cores, workload.total_accesses)
    )
    return 0


def _print_violations(violations) -> None:
    for violation in violations:
        print("  %s" % violation, file=sys.stderr)


def _policy_auditor_kwargs(algorithm_name) -> dict:
    """Policy-guarantee auditor arguments for a named algorithm.

    Resolves the algorithm's static decision table and write-snoop
    form so the auditor also checks the trace against the policy's
    declared behaviour.  Unknown names (e.g. a trace recorded with a
    plugin that is not installed here) degrade to the policy-agnostic
    lifecycle checks.
    """
    from repro.core.algorithms import build_algorithm

    if not algorithm_name:
        return {}
    try:
        policy = build_algorithm(algorithm_name)
    except UnknownComponentError:
        return {}
    return {
        "table": policy.decision_table(),
        "decouple_writes": policy.decouple_writes,
    }


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.obs.audit import TraceAuditor
    from repro.obs.jsonl import read_trace, write_trace
    from repro.obs.runner import run_traced

    sink_spec = args.sink
    if sink_spec == "jsonl":
        # Bare "jsonl" streams to --out directly.
        sink_spec = "jsonl:" + args.out
    streamed = sink_spec != "memory"
    out_path = args.out
    if streamed:
        out_path = sink_spec.partition(":")[2] or args.out
    traced = run_traced(
        args.algorithm,
        args.workload,
        predictor=args.predictor,
        accesses_per_core=args.scale,
        seed=args.seed,
        warmup_fraction=args.warmup,
        check_invariants=args.check_invariants,
        sample_window=args.sample_window,
        sink=sink_spec,
        topology=args.topology,
        num_cmps=_resolved_num_cmps(args),
    )
    if streamed:
        # Events went straight to disk during the run; nothing is
        # buffered here, so long runs record in constant memory.
        events = None
        print(
            "wrote %s: %d event(s) (streamed)"
            % (out_path, traced.meta["num_events"])
        )
    else:
        events = traced.events
        write_trace(out_path, events, meta=traced.meta)
        transactions = len({e.txn for e in events if e.txn >= 0})
        print(
            "wrote %s: %d event(s) across %d transaction(s)"
            % (out_path, len(events), transactions)
        )
    if traced.samples:
        print("timeline: %d sample(s), window %d cycles"
              % (len(traced.samples), args.sample_window))
    if args.audit:
        if events is None:
            # Audit what actually landed on disk - this also proves
            # the streamed file reads back.
            _meta, events = read_trace(out_path)
        transactions = len({e.txn for e in events if e.txn >= 0})
        auditor = TraceAuditor(
            num_cmps=traced.meta["num_cmps"],
            successors=traced.meta.get("successors"),
            **_policy_auditor_kwargs(args.algorithm),
        )
        violations = auditor.audit(events)
        if violations:
            print(
                "audit: %d violation(s)" % len(violations),
                file=sys.stderr,
            )
            _print_violations(violations)
            return 1
        print("audit: ok (%d transaction(s) validated)" % transactions)
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    from repro.workloads.convert import convert_trace
    from repro.workloads.io import TraceFormatError

    try:
        num_cores, total = convert_trace(
            args.infile,
            args.out,
            args.format,
            cores_per_cmp=args.cores_per_cmp,
            line_bytes=args.line_bytes,
            ticks_per_cycle=args.ticks_per_cycle,
            name=args.name or None,
        )
    except (TraceFormatError, OSError) as exc:
        print("flexsnoop: %s" % exc, file=sys.stderr)
        return 1
    print(
        "wrote %s: %d cores, %d accesses (converted from %s %s)"
        % (args.out, num_cores, total, args.format, args.infile)
    )
    print("replay with: flexsnoop run --workload file:%s" % args.out)
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    from repro.obs.jsonl import read_trace
    from repro.obs.render import filter_events, render_timeline

    meta, events = read_trace(args.file)
    address = int(args.address, 0) if args.address else None
    selected = filter_events(
        events, address=address, txn=args.txn, node=args.node
    )
    if meta:
        print(
            "trace: %s/%s  (%d of %d event(s) match)"
            % (
                meta.get("algorithm", "?"),
                meta.get("workload", "?"),
                len(selected),
                len(events),
            )
        )
    print(render_timeline(selected, limit=args.limit))
    return 0


def _cmd_trace_audit(args: argparse.Namespace) -> int:
    from repro.obs.audit import TraceAuditor
    from repro.obs.jsonl import read_trace

    meta, events = read_trace(args.file)
    num_cmps = args.num_cmps or meta.get("num_cmps") or 8
    # Traces recorded on a non-ring topology persist their successor
    # cycle in the header; an explicit --num-cmps override means the
    # header geometry is being second-guessed, so ignore it then.
    successors = None if args.num_cmps else meta.get("successors")
    violations = TraceAuditor(
        num_cmps=num_cmps,
        successors=successors,
        **_policy_auditor_kwargs(meta.get("algorithm")),
    ).audit(events)
    transactions = len({e.txn for e in events if e.txn >= 0})
    if violations:
        print("audit: %d violation(s)" % len(violations), file=sys.stderr)
        _print_violations(violations)
        return 1
    print(
        "audit: ok (%d event(s), %d transaction(s), num_cmps=%d)"
        % (len(events), transactions, num_cmps)
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache()
    if args.action == "info":
        info = cache.info()
        print("location : %s" % info["root"])
        print("entries  : %d" % info["entries"])
        print("size     : %.1f KiB" % (info["size_bytes"] / 1024.0))
        print("stale    : %d entry(ies) from older schemas" %
              info["stale_entries"])
        print("tmp files: %d orphaned temp file(s)" % info["tmp_files"])
        print("schema   : v%d (code %s)" % (
            info["schema"], info["code_version"],
        ))
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print("removed %d cached result(s) from %s" % (removed, cache.root))
        return 0
    if args.action == "prune":
        if args.max_size is None:
            print(
                "flexsnoop: cache prune requires --max-size",
                file=sys.stderr,
            )
            return 2
        stats = cache.prune(args.max_size)
        print(
            "removed %d entry(ies), freed %.1f KiB; cache now %.1f KiB"
            % (
                stats["removed"],
                stats["freed_bytes"] / 1024.0,
                stats["size_bytes"] / 1024.0,
            )
        )
        return 0
    print("unknown cache action %r" % args.action, file=sys.stderr)
    return 2


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_experiment(
        args.algorithm,
        args.workload,
        predictor=args.predictor,
        accesses_per_core=args.scale,
        seed=args.seed,
    )
    profiler.disable()
    print(
        "profiled %s/%s: %d accesses, %d events"
        % (
            result.algorithm,
            result.workload,
            result.stats.reads + result.stats.writes,
            result.events,
        )
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print("wrote %s (open with pstats or snakeviz)" % args.out)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import (
        DEFAULT_BENCH_SCALE,
        DEFAULT_TOLERANCE,
        check_regression,
        format_breakdown,
        load_snapshot,
        measure_breakdown,
        run_snapshot,
        write_snapshot,
    )

    scale = args.scale if args.scale is not None else DEFAULT_BENCH_SCALE
    tolerance = (
        args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    )
    if args.breakdown:
        buckets = measure_breakdown(
            accesses_per_core=scale,
            seed=args.seed,
            core=args.core,
            topology=args.topology,
        )
        print(format_breakdown(buckets))
        return 0
    snapshot = run_snapshot(
        trials=args.trials,
        accesses_per_core=scale,
        seed=args.seed,
        core=args.core,
        topology=args.topology,
    )
    print("core          : %s" % snapshot.core)
    print("topology      : %s" % snapshot.topology)
    print("matrix wall   : %.3f s" % snapshot.matrix_wall_s)
    print("accesses/sec  : %.1f" % snapshot.accesses_per_sec)
    print("events/sec    : %.1f" % snapshot.events_per_sec)
    if snapshot.env:
        print(
            "environment   : %s, %s cpu(s), python %s"
            % (
                snapshot.env.get("cpu_model"),
                snapshot.env.get("cpu_count"),
                snapshot.env.get("python"),
            )
        )
    if args.out:
        write_snapshot(snapshot, args.out)
        print("wrote %s" % args.out)
    if args.check:
        import os

        if not os.path.exists(args.check):
            print("no baseline at %s; skipping regression check"
                  % args.check)
            return 0
        try:
            baseline = load_snapshot(args.check)
        except (ValueError, KeyError, TypeError) as exc:
            print(
                "corrupt baseline snapshot %s: %s" % (args.check, exc),
                file=sys.stderr,
            )
            return 1
        try:
            print(check_regression(snapshot, baseline, tolerance))
        except RuntimeError as exc:
            print(str(exc), file=sys.stderr)
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flexsnoop",
        description="Flexible Snooping (ISCA 2006) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one simulation")
    _add_component_options(run_parser, "lazy", "splash2")
    _add_core_option(run_parser)
    _add_topology_option(run_parser, with_num_cmps=True)
    run_parser.add_argument("--scale", type=int, default=2000,
                            help="accesses per core")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.set_defaults(func=_cmd_run)

    figure_parser = sub.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure_parser.add_argument(
        "number",
        help="figure number (6-11), 'topology' for the "
        "ring-vs-hier_ring comparison matrix, 'saturation' for "
        "the loaded-regime injection sweep, or 'criticality' for "
        "the criticality-aware-snooping comparison matrix",
    )
    figure_parser.add_argument("--scale", type=int, default=2000)
    figure_parser.add_argument("--seed", type=int, default=0)
    _add_matrix_options(figure_parser)
    _add_core_option(figure_parser)
    _add_topology_option(figure_parser)
    saturation_group = figure_parser.add_argument_group(
        "figure saturation options"
    )
    saturation_group.add_argument(
        "--workload", default="splash2",
        help="workload swept across injection rates",
    )
    saturation_group.add_argument(
        "--algorithms", default="lazy,eager,oracle",
        help="comma-separated algorithms, one curve each; 'all' "
        "expands to every registered algorithm (currently: %s)"
        % ", ".join(REGISTRY.names("algorithm")),
    )
    saturation_group.add_argument(
        "--topologies", default="ring,hier_ring",
        help="comma-separated snoop topologies, one curve each",
    )
    saturation_group.add_argument(
        "--think-scales", default="",
        help="comma-separated think-time multipliers, e.g. "
        "1.0,0.5,0.25 (default: the built-in ladder)",
    )
    saturation_group.add_argument(
        "--target-rates", default="",
        help="closed-loop mode: comma-separated target ring "
        "transaction rates (txns per 1000 cycles per CMP); a "
        "calibration run converts each into a think scale",
    )
    saturation_group.add_argument(
        "--link-occupancy", type=int, default=600,
        help="cycles each ring link stays busy per crossing "
        "(the finite-capacity knob; 0 disables link contention; "
        "the default chokes the ring inside the built-in ladder)",
    )
    saturation_group.add_argument(
        "--no-serialize-port", action="store_true",
        help="leave the per-CMP snoop port infinitely wide",
    )
    saturation_group.add_argument(
        "--knee-factor", type=float, default=2.0,
        help="knee = first point whose latency exceeds this multiple "
        "of the lightest-load latency",
    )
    criticality_group = figure_parser.add_argument_group(
        "figure criticality options"
    )
    criticality_group.add_argument(
        "--think-scale", type=float, default=1.0,
        help="think-time multiplier for the criticality matrix "
        "(1.0 = native pacing; < 1 drives the loaded regime where "
        "retries and MSHR queueing occur)",
    )
    figure_parser.set_defaults(func=_cmd_figure)

    sweep_parser = sub.add_parser(
        "sweep",
        help="sweep one machine-config field and print a metric series",
    )
    sweep_parser.add_argument(
        "field",
        help="dotted MachineConfig field path, e.g. "
        "ring.link_occupancy or memory.local_round_trip (a typo "
        "lists every valid path)",
    )
    sweep_parser.add_argument(
        "--values", required=True,
        help="comma-separated swept values (int/float/true/false)",
    )
    sweep_parser.add_argument(
        "--metric", default="exec_time",
        help="SimulationResult or RunStats attribute to report "
        "(e.g. exec_time, total_energy, mean_read_miss_latency)",
    )
    sweep_parser.add_argument(
        "--algorithm", default="lazy",
        help="algorithm name (known: %s)"
        % ", ".join(REGISTRY.names("algorithm")),
    )
    sweep_parser.add_argument(
        "--workload", default="splash2",
        help="workload source spec (known: %s)"
        % ", ".join(REGISTRY.names("workload")),
    )
    sweep_parser.add_argument("--scale", type=int, default=800,
                              help="accesses per core")
    sweep_parser.add_argument("--seed", type=int, default=0)
    _add_matrix_options(sweep_parser)
    _add_core_option(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    table_parser = sub.add_parser(
        "table", help="print one of the paper's analytical tables"
    )
    table_parser.add_argument("number", type=int)
    table_parser.add_argument("--nodes", type=int, default=8)
    table_parser.set_defaults(func=_cmd_table)

    report_parser = sub.add_parser(
        "report", help="render the whole evaluation as one document"
    )
    report_parser.add_argument("--scale", type=int, default=1500)
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument(
        "--figures",
        default="",
        help="comma-separated figure numbers (default: 6,7,8,9,11)",
    )
    report_parser.add_argument("--out", default="")
    _add_matrix_options(report_parser)
    _add_core_option(report_parser)
    _add_topology_option(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    cache_parser = sub.add_parser(
        "cache",
        help="inspect, prune or clear the persistent result cache",
    )
    cache_parser.add_argument("action", choices=("info", "prune", "clear"))
    cache_parser.add_argument(
        "--max-size", type=_parse_size, default=None,
        help="prune: evict least-recently-used entries until the "
        "cache fits this budget (accepts K/M/G suffixes, e.g. 256M)",
    )
    cache_parser.set_defaults(func=_cmd_cache)

    profile_parser = sub.add_parser(
        "profile",
        help="run one simulation under cProfile and print hot spots",
    )
    _add_component_options(profile_parser, "exact", "specweb")
    profile_parser.add_argument("--scale", type=int, default=2000,
                                help="accesses per core")
    profile_parser.add_argument("--seed", type=int, default=0)
    profile_parser.add_argument("--top", type=int, default=25,
                                help="number of pstats rows to print")
    profile_parser.add_argument(
        "--sort",
        default="cumulative",
        choices=("cumulative", "tottime", "calls", "ncalls"),
    )
    profile_parser.add_argument(
        "--out", default="", help="also dump raw pstats data here"
    )
    profile_parser.set_defaults(func=_cmd_profile)

    bench_parser = sub.add_parser(
        "bench",
        help="measure serial matrix throughput (the BENCH_*.json "
        "snapshot) and optionally check it against a baseline",
    )
    bench_parser.add_argument(
        "--scale", type=int, default=None,
        help="accesses per core (default: the committed snapshot scale)",
    )
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.add_argument("--trials", type=int, default=3,
                              help="keep the best of this many runs")
    bench_parser.add_argument("--out", default="",
                              help="write the snapshot JSON here")
    bench_parser.add_argument(
        "--check", default="",
        help="compare against this committed snapshot; exits 1 on a "
        "regression beyond --tolerance, 0 if the file is absent",
    )
    bench_parser.add_argument("--tolerance", type=float, default=None)
    _add_core_option(bench_parser)
    _add_topology_option(bench_parser)
    bench_parser.add_argument(
        "--breakdown", action="store_true",
        help="profile one matrix run and print per-subsystem time "
        "(walker/datapath/predictor/engine) instead of a snapshot",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    trace_parser = sub.add_parser(
        "trace",
        help="record, inspect and audit transaction-level run traces "
        "(see docs/observability.md)",
    )
    trace_sub = trace_parser.add_subparsers(
        dest="trace_action", required=True
    )

    record_parser = trace_sub.add_parser(
        "record",
        help="run one simulation with tracing on and write the "
        "lifecycle events to a JSONL file",
    )
    _add_component_options(record_parser, "lazy", "splash2")
    _add_topology_option(record_parser, with_num_cmps=True)
    record_parser.add_argument("--scale", type=int, default=500,
                               help="accesses per core")
    record_parser.add_argument("--seed", type=int, default=0)
    record_parser.add_argument(
        "--warmup", type=float, default=0.0,
        help="warmup fraction (events during warmup are traced too)",
    )
    record_parser.add_argument(
        "--sample-window", type=int, default=0,
        help="metrics-timeline sampling window in simulated cycles "
        "(0 = no timeline)",
    )
    record_parser.add_argument("--out", required=True)
    record_parser.add_argument(
        "--sink", default="memory",
        help="trace sink spec (registry kind 'sink'): 'memory' "
        "buffers then writes --out; 'jsonl' streams events to --out "
        "in constant memory; 'jsonl:PATH' streams elsewhere",
    )
    record_parser.add_argument(
        "--audit", action="store_true",
        help="validate the recorded trace with the lifecycle "
        "auditors; exit 1 on any violation",
    )
    record_parser.add_argument(
        "--check-invariants", action="store_true",
        help="also enable the simulator's synchronous per-line "
        "protocol checks",
    )
    record_parser.set_defaults(func=_cmd_trace_record)

    show_parser = trace_sub.add_parser(
        "show",
        help="render a recorded trace as per-transaction timelines",
    )
    show_parser.add_argument("file")
    show_parser.add_argument(
        "--address", default="",
        help="only this line address (accepts 0x...)",
    )
    show_parser.add_argument("--txn", type=int, default=None,
                             help="only this transaction id")
    show_parser.add_argument(
        "--node", type=int, default=None,
        help="only transactions that touched this CMP node",
    )
    show_parser.add_argument(
        "--limit", type=int, default=None,
        help="render at most this many transactions",
    )
    show_parser.set_defaults(func=_cmd_trace_show)

    audit_parser = trace_sub.add_parser(
        "audit",
        help="replay a recorded trace through the per-transaction "
        "lifecycle validators; exit 1 on any violation",
    )
    audit_parser.add_argument("file")
    audit_parser.add_argument(
        "--num-cmps", type=int, default=0,
        help="ring size override (default: the trace's meta header)",
    )
    audit_parser.set_defaults(func=_cmd_trace_audit)

    workload_parser = trace_sub.add_parser(
        "workload", help="generate a workload trace file"
    )
    workload_parser.add_argument(
        "--workload",
        default="splash2",
        help="workload name (known: %s)"
        % ", ".join(REGISTRY.names("workload")),
    )
    workload_parser.add_argument("--scale", type=int, default=2000)
    workload_parser.add_argument("--seed", type=int, default=0)
    workload_parser.add_argument("--out", required=True)
    workload_parser.set_defaults(func=_cmd_trace_workload)

    convert_parser = trace_sub.add_parser(
        "convert",
        help="convert an external (gem5/champsim) memory trace to "
        "the flexsnoop JSONL workload format for replay",
    )
    convert_parser.add_argument(
        "--format", required=True, choices=("gem5", "champsim"),
        help="external trace dialect",
    )
    convert_parser.add_argument(
        "--in", dest="infile", required=True,
        help="external trace file to read",
    )
    convert_parser.add_argument(
        "--out", required=True,
        help="flexsnoop-trace JSONL file to write",
    )
    convert_parser.add_argument(
        "--cores-per-cmp", type=int, default=1,
        help="CMP geometry to stamp on the converted workload "
        "(cpu ids pad up to whole CMPs)",
    )
    convert_parser.add_argument(
        "--line-bytes", type=int, default=64,
        help="cache-line size used to map byte addresses to lines",
    )
    convert_parser.add_argument(
        "--ticks-per-cycle", type=int, default=1000,
        help="gem5 tick-to-cycle divisor for think times",
    )
    convert_parser.add_argument(
        "--name", default="",
        help="workload display name (default: derived from the file)",
    )
    convert_parser.set_defaults(func=_cmd_trace_convert)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        try:
            return args.func(args)
        except SoaUnsupportedError as exc:
            # An array core refused the configuration at construction.
            # The object core runs everything, so fall back to it with
            # a one-line notice unless the user asked for the hard
            # error (--strict-core).
            if (
                getattr(args, "strict_core", False)
                or getattr(args, "core", "object") == "object"
            ):
                raise
            print(
                "flexsnoop: %s; falling back to core=object "
                "(use --strict-core to fail instead)" % exc,
                file=sys.stderr,
            )
            args.core = "object"
            return args.func(args)
    except SoaUnsupportedError as exc:
        print("flexsnoop: %s" % exc, file=sys.stderr)
        return 2
    except UnknownComponentError as exc:
        print("flexsnoop: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Generic parameter sweeps over machine configuration.

The ablation benchmarks each hand-roll a loop over one knob; this
module generalizes that into a reusable utility::

    from repro.harness.sweep import Sweep, sweep_ring_field

    sweep = sweep_ring_field(
        "snoop_time", [25, 55, 110],
        algorithm="superset_agg", workload="splash2",
        accesses_per_core=800,
    )
    for point in sweep.points:
        print(point.value, point.result.exec_time)
    print(sweep.series("exec_time"))

Sweeps accept a *mutator* - a function that takes the base
``MachineConfig`` and one swept value and returns the modified config
- so any nested field can be swept without bespoke plumbing.  A
dotted field path stands in for the callable (``mutate`` may be a
string, or ``None`` to reuse ``name``), so the CLI can sweep e.g.
``ring.link_occupancy`` or ``memory.local_round_trip`` without
shipping code::

    sweep = run_sweep("ring.link_occupancy", [0, 15, 30, 60])

Typos raise ``ValueError`` listing every valid field path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.config import MachineConfig, default_machine
from repro.harness.parallel import RunSpec, run_specs
from repro.harness.result_cache import ResultCache
from repro.sim.system import SimulationResult
from repro.workloads.source import resolve_source

ConfigMutator = Callable[[MachineConfig, Any], MachineConfig]


@dataclass
class SweepPoint:
    """One (value, result) pair of a sweep."""

    value: Any
    result: SimulationResult


@dataclass
class Sweep:
    """A completed sweep: the swept values with their run results."""

    name: str
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, metric: str) -> Dict[Any, float]:
        """Extract one metric across the sweep.

        ``metric`` is an attribute of :class:`SimulationResult`
        (``exec_time``, ``total_energy``) or of its ``stats`` object
        (``snoops_per_read_request``, ``mean_read_miss_latency``, ...).
        """
        series: Dict[Any, float] = {}
        for point in self.points:
            if hasattr(point.result, metric):
                series[point.value] = getattr(point.result, metric)
            else:
                series[point.value] = getattr(point.result.stats, metric)
        return series

    def normalized_series(self, metric: str, baseline: Any) -> Dict[
        Any, float
    ]:
        """``series(metric)`` divided by the value at ``baseline``."""
        series = self.series(metric)
        if baseline not in series:
            raise KeyError("baseline value %r not swept" % (baseline,))
        reference = series[baseline]
        if reference == 0:
            raise ZeroDivisionError("baseline metric is zero")
        return {key: value / reference for key, value in series.items()}


def valid_sweep_fields(
    config: Optional[MachineConfig] = None,
) -> List[str]:
    """Every dotted field path :func:`run_sweep` accepts, sorted.

    Scalar ``MachineConfig`` fields appear bare (``squash_backoff``);
    each field of a nested config section appears under its section
    name (``ring.link_occupancy``, ``memory.local_round_trip``, ...).
    """
    base = config if config is not None else MachineConfig()
    names: List[str] = []
    for outer in dataclasses.fields(base):
        value = getattr(base, outer.name)
        if dataclasses.is_dataclass(value):
            names.extend(
                "%s.%s" % (outer.name, inner.name)
                for inner in dataclasses.fields(value)
            )
        else:
            names.append(outer.name)
    return sorted(names)


def field_mutator(path: str) -> ConfigMutator:
    """Mutator assigning the dotted ``MachineConfig`` field ``path``.

    Resolution is validated here, against the dataclass schema, so a
    typo fails fast with the full list of valid paths instead of
    surfacing as an opaque ``dataclasses.replace`` error mid-sweep.
    """
    valid = valid_sweep_fields()
    if path not in valid:
        raise ValueError(
            "unknown sweep field %r; valid fields: %s"
            % (path, ", ".join(valid))
        )
    parts = path.split(".")
    if len(parts) == 1:
        return lambda config, value: config.replace(**{path: value})
    section, field_name = parts
    return lambda config, value: _nested_replace(
        config, section, field_name, value
    )


def run_sweep(
    name: str,
    values: Sequence[Any],
    mutate: Union[ConfigMutator, str, None] = None,
    *,
    algorithm: str = "lazy",
    workload: str = "splash2",
    accesses_per_core: int = 800,
    seed: int = 0,
    warmup_fraction: float = 0.3,
    base_config: Optional[MachineConfig] = None,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    core: str = "object",
) -> Sweep:
    """Run one simulation per swept value and collect the results.

    ``mutate`` may be a callable ``(config, value) -> config``, a
    dotted field path (see :func:`valid_sweep_fields`), or ``None`` to
    treat ``name`` itself as the field path.

    The workload source does not vary across swept values, so it is
    resolved once per process and shared by every point (the
    execution layer memoizes it).  The mutator runs here, in the calling
    process, so it may be any callable - only the resulting
    (picklable) ``MachineConfig`` is shipped to pool workers when
    ``jobs`` enables fan-out.
    """
    if mutate is None:
        mutate = field_mutator(name)
    elif isinstance(mutate, str):
        mutate = field_mutator(mutate)
    source = resolve_source(
        workload, accesses_per_core=accesses_per_core, seed=seed
    )
    base = base_config or default_machine(
        algorithm=algorithm,
        cores_per_cmp=source.cores_per_cmp,
        num_cmps=source.num_cmps,
    )
    specs = [
        RunSpec(
            algorithm=algorithm,
            workload=workload,
            accesses_per_core=accesses_per_core,
            seed=seed,
            warmup_fraction=warmup_fraction,
            config=mutate(base, value),
            core=core,
        )
        for value in values
    ]
    results = run_specs(specs, jobs=jobs, cache=cache)
    return Sweep(
        name=name,
        points=[
            SweepPoint(value=value, result=result)
            for value, result in zip(values, results)
        ],
    )


def _nested_replace(config: MachineConfig, section: str, field_name: str,
                    value: Any) -> MachineConfig:
    inner = getattr(config, section)
    return config.replace(
        **{section: dataclasses.replace(inner, **{field_name: value})}
    )


def sweep_ring_field(field_name: str, values: Sequence[Any],
                     **kwargs) -> Sweep:
    """Sweep one field of :class:`RingConfig` (e.g. ``snoop_time``,
    ``hop_latency``, ``link_occupancy``)."""
    return run_sweep(
        "ring.%s" % field_name,
        values,
        lambda config, value: _nested_replace(
            config, "ring", field_name, value
        ),
        **kwargs,
    )


def sweep_memory_field(field_name: str, values: Sequence[Any],
                       **kwargs) -> Sweep:
    """Sweep one field of :class:`MemoryConfig`."""
    return run_sweep(
        "memory.%s" % field_name,
        values,
        lambda config, value: _nested_replace(
            config, "memory", field_name, value
        ),
        **kwargs,
    )


def sweep_predictor_entries(values: Sequence[int], **kwargs) -> Sweep:
    """Sweep the Supplier Predictor's entry count."""
    return run_sweep(
        "predictor.entries",
        values,
        lambda config, value: config.replace(
            predictor=config.predictor.with_entries(value)
        ),
        **kwargs,
    )

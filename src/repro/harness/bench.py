"""Single-process performance snapshots (``flexsnoop bench``).

The perf trajectory of this repo is tracked by committed
``BENCH_<pr>.json`` files at the repository root.  Each snapshot
records the serial (``jobs=1``) throughput of the main fig8 matrix -
all seven algorithms over the three paper workloads - at a fixed
benchmark scale::

    {"pr": 7, "core": "jit", "accesses_per_sec": ...,
     "events_per_sec": ..., "matrix_wall_s": ...,
     "env": {"cpu_model": ..., "cpu_count": ..., "python": ...}}

``accesses_per_sec`` (simulated core accesses per wall-clock second)
is the headline number: it is what hot-path optimizations move and
what CI's perf-smoke job guards.  ``events_per_sec`` is engine
throughput; the two diverge when a change alters events-per-access
(hop batching, for example, lowers events while accesses stay fixed).

``env`` is the *environment fingerprint*: committed snapshots are
taken on whatever machine the author had, so an absolute ratio
against them is only meaningful when the fingerprints match.  The CI
perf-smoke job therefore re-measures a same-machine baseline (the
``object`` core at the committed snapshot's scale) before computing
any ratio, and :func:`check_regression` reports when it is comparing
across machines instead of failing spuriously.

``core`` selects the simulation-core implementation (registry kind
``core``): ``object`` is the default per-subsystem model, ``soa`` the
struct-of-arrays fused loop introduced with PR 6.

Measurement protocol: every trial builds a fresh
:class:`~repro.harness.experiments.ExperimentMatrix` with the
persistent result cache disabled, so all 21 cells are actually
simulated; the snapshot keeps the best of ``trials`` runs, which
filters scheduler noise without hiding real regressions.  Workload
sources are memoized per process (see ``parallel._cached_source``), so
trials after the first measure simulation alone - another reason
best-of is the right statistic.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from repro.harness.experiments import ExperimentMatrix
from repro.harness.result_cache import ResultCache

#: PR number stamped into snapshots written by the current code.
SNAPSHOT_PR = 8

#: Accesses per core for the benchmark matrix.  Large enough that the
#: simulation (not trace generation or interpreter warmup) dominates,
#: small enough that three trials finish in well under a minute.
DEFAULT_BENCH_SCALE = 300

#: Relative accesses/sec drop tolerated by :func:`check_regression`.
#: Generous because CI machines are shared and noisy; a real hot-path
#: regression (an accidental O(N) scan, a dropped fast path) costs far
#: more than 30%.
DEFAULT_TOLERANCE = 0.30


def _cpu_model() -> str:
    """Best-effort CPU model string (``/proc/cpuinfo`` on Linux)."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                key, sep, value = line.partition(":")
                if sep and key.strip() in ("model name", "Model", "cpu"):
                    return value.strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def environment_fingerprint() -> Dict[str, object]:
    """The machine identity stamped into snapshots.

    Coarse on purpose: it only needs to answer "was this measured on
    the same kind of machine?", not to identify a host.
    """
    return {
        "cpu_model": _cpu_model(),
        "cpu_count": _available_cpus(),
        "python": platform.python_version(),
    }


def _available_cpus() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the whole machine even when the process
    is pinned to a subset (containers, ``taskset``, CI runners) - the
    same trap ``default_jobs()`` avoids - and a pinned run is not
    comparable to a whole-machine run, so the fingerprint must record
    the affinity-aware count.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


def same_environment(a: Optional[Dict], b: Optional[Dict]) -> bool:
    """Whether two snapshots' fingerprints describe the same setup.

    Missing fingerprints (pre-PR-6 snapshots) never match: the safe
    assumption about an unknown machine is that it is a different one.
    """
    if not a or not b:
        return False
    keys = ("cpu_model", "cpu_count", "python")
    return all(a.get(key) == b.get(key) for key in keys)


@dataclass(frozen=True)
class PerfSnapshot:
    """One committed perf measurement (the BENCH_<pr>.json schema)."""

    pr: int
    accesses_per_sec: float
    events_per_sec: float
    matrix_wall_s: float
    core: str = "object"
    #: Snoop topology the matrix ran on; "ring" is the comparable
    #: default (snapshots taken on hier_ring simulate different
    #: machines and are not ratio-comparable against ring baselines).
    topology: str = "ring"
    env: Optional[Dict[str, object]] = field(default=None)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"


def measure_matrix(
    accesses_per_core: int = DEFAULT_BENCH_SCALE,
    seed: int = 0,
    core: str = "object",
    topology: Optional[str] = None,
) -> PerfSnapshot:
    """Run the main matrix once, serially and uncached, and time it."""
    matrix = ExperimentMatrix(
        accesses_per_core=accesses_per_core,
        seed=seed,
        jobs=1,
        result_cache=ResultCache(enabled=False),
        core=core,
        topology=topology,
    )
    start = time.perf_counter()
    matrix.run_main_matrix()
    wall = time.perf_counter() - start
    results = list(matrix._cache.values())
    accesses = sum(r.stats.reads + r.stats.writes for r in results)
    events = sum(r.events for r in results)
    return PerfSnapshot(
        pr=SNAPSHOT_PR,
        accesses_per_sec=round(accesses / wall, 1),
        events_per_sec=round(events / wall, 1),
        matrix_wall_s=round(wall, 3),
        core=core,
        topology=topology if topology is not None else "ring",
        env=environment_fingerprint(),
    )


def run_snapshot(
    trials: int = 3,
    accesses_per_core: int = DEFAULT_BENCH_SCALE,
    seed: int = 0,
    core: str = "object",
    topology: Optional[str] = None,
) -> PerfSnapshot:
    """Best-of-``trials`` matrix measurement."""
    if trials < 1:
        raise ValueError("need at least one trial")
    best: Optional[PerfSnapshot] = None
    for _ in range(trials):
        snapshot = measure_matrix(accesses_per_core, seed, core, topology)
        if best is None or snapshot.accesses_per_sec > best.accesses_per_sec:
            best = snapshot
    assert best is not None
    return best


def write_snapshot(snapshot: PerfSnapshot, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(snapshot.to_json())


def load_snapshot(path: str) -> PerfSnapshot:
    """Load a committed snapshot; tolerates pre-PR-6 files that lack
    the ``core`` and ``env`` fields."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    env = data.get("env")
    return PerfSnapshot(
        pr=int(data["pr"]),
        accesses_per_sec=float(data["accesses_per_sec"]),
        events_per_sec=float(data["events_per_sec"]),
        matrix_wall_s=float(data["matrix_wall_s"]),
        core=str(data.get("core", "object")),
        topology=str(data.get("topology", "ring")),
        env=dict(env) if isinstance(env, dict) else None,
    )


def check_regression(
    current: PerfSnapshot,
    baseline: PerfSnapshot,
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """Compare ``current`` against a committed ``baseline``.

    Returns a human-readable verdict; raises :class:`RuntimeError`
    when accesses/sec dropped by more than ``tolerance`` (the CI
    perf-smoke contract).  When the two snapshots carry different
    environment fingerprints the ratio is *advisory*: the verdict says
    so and no regression is raised, because a committed snapshot from
    a different machine says nothing about this one (the PR 5 gate
    tripped exactly this way).  CI obtains a binding ratio by
    re-measuring a same-machine baseline first.
    """
    ratio = current.accesses_per_sec / baseline.accesses_per_sec
    verdict = (
        "accesses/sec: %.1f current vs %.1f baseline (PR %d) -> %.2fx"
        % (
            current.accesses_per_sec,
            baseline.accesses_per_sec,
            baseline.pr,
            ratio,
        )
    )
    if current.topology != baseline.topology:
        return (
            verdict
            + " [advisory: snapshots simulate different topologies "
            "(%s vs %s)]" % (current.topology, baseline.topology)
        )
    if not same_environment(current.env, baseline.env):
        return (
            verdict
            + " [advisory: baseline measured on a different machine "
            "or lacks an environment fingerprint]"
        )
    if ratio < 1.0 - tolerance:
        raise RuntimeError(
            "perf regression: %s is below the %.0f%% tolerance"
            % (verdict, tolerance * 100)
        )
    return verdict


# ----------------------------------------------------------------------
# Per-subsystem breakdown (``flexsnoop bench --breakdown``)

#: Source-file basename -> subsystem label.  Files not listed are
#: "other" (workload generation, stats assembly, stdlib frames).
_SUBSYSTEM_FILES: Dict[str, str] = {
    "walker.py": "walker",
    "primitives.py": "walker",
    "datapath.py": "datapath",
    "cache.py": "datapath",
    "memory.py": "datapath",
    "node.py": "datapath",
    "predictors.py": "predictor",
    "engine.py": "engine",
    "transactions.py": "engine",
    "system.py": "engine",
    "warmup.py": "engine",
    "soa.py": "soa-core",
    "jit.py": "jit-core",
}


def measure_breakdown(
    accesses_per_core: int = DEFAULT_BENCH_SCALE,
    seed: int = 0,
    core: str = "object",
    topology: Optional[str] = None,
) -> Dict[str, float]:
    """One profiled matrix run, aggregated to per-subsystem seconds.

    Buckets internal time (``tottime``) by source file: walker /
    datapath / predictor / engine for the object core, whose hot path
    is spread across those modules.  The SoA core executes its whole
    hot path inside one fused frame in ``soa.py``, so its time lands
    in a single ``soa-core`` bucket - per-subsystem attribution inside
    the fused loop would require the very per-call dispatch the core
    exists to avoid.

    Profiling overhead inflates the wall clock (cProfile traces every
    call), so the absolute seconds here are not comparable with
    :func:`measure_matrix` numbers; the *relative* split is the
    useful output.
    """
    import cProfile
    import pstats

    matrix = ExperimentMatrix(
        accesses_per_core=accesses_per_core,
        seed=seed,
        jobs=1,
        result_cache=ResultCache(enabled=False),
        core=core,
        topology=topology,
    )
    profiler = cProfile.Profile()
    profiler.enable()
    matrix.run_main_matrix()
    profiler.disable()
    stats = pstats.Stats(profiler)
    buckets: Dict[str, float] = {}
    for (filename, _lineno, _name), row in stats.stats.items():  # type: ignore[attr-defined]
        internal_time = row[2]
        label = _SUBSYSTEM_FILES.get(os.path.basename(filename), "other")
        buckets[label] = buckets.get(label, 0.0) + internal_time
    return dict(
        sorted(buckets.items(), key=lambda item: item[1], reverse=True)
    )


def format_breakdown(buckets: Dict[str, float]) -> str:
    total = sum(buckets.values()) or 1.0
    lines = ["per-subsystem time (profiled, relative split is the signal):"]
    for label, seconds in buckets.items():
        lines.append(
            "  %-10s %7.3f s  %5.1f%%"
            % (label, seconds, 100.0 * seconds / total)
        )
    return "\n".join(lines)

"""Single-process performance snapshots (``flexsnoop bench``).

The perf trajectory of this repo is tracked by committed
``BENCH_<pr>.json`` files at the repository root.  Each snapshot
records the serial (``jobs=1``) throughput of the main fig8 matrix -
all seven algorithms over the three paper workloads - at a fixed
benchmark scale::

    {"pr": 2, "accesses_per_sec": ..., "events_per_sec": ...,
     "matrix_wall_s": ...}

``accesses_per_sec`` (simulated core accesses per wall-clock second)
is the headline number: it is what hot-path optimizations move and
what CI's perf-smoke job guards.  ``events_per_sec`` is engine
throughput; the two diverge when a change alters events-per-access
(hop batching, for example, lowers events while accesses stay fixed).

Measurement protocol: every trial builds a fresh
:class:`~repro.harness.experiments.ExperimentMatrix` with the
persistent result cache disabled, so all 21 cells are actually
simulated; the snapshot keeps the best of ``trials`` runs, which
filters scheduler noise without hiding real regressions.  Workload
sources are memoized per process (see ``parallel._cached_source``), so
trials after the first measure simulation alone - another reason
best-of is the right statistic.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Optional

from repro.harness.experiments import ExperimentMatrix
from repro.harness.result_cache import ResultCache

#: PR number stamped into snapshots written by the current code.
SNAPSHOT_PR = 4

#: Accesses per core for the benchmark matrix.  Large enough that the
#: simulation (not trace generation or interpreter warmup) dominates,
#: small enough that three trials finish in well under a minute.
DEFAULT_BENCH_SCALE = 300

#: Relative accesses/sec drop tolerated by :func:`check_regression`.
#: Generous because CI machines are shared and noisy; a real hot-path
#: regression (an accidental O(N) scan, a dropped fast path) costs far
#: more than 30%.
DEFAULT_TOLERANCE = 0.30


@dataclass(frozen=True)
class PerfSnapshot:
    """One committed perf measurement (the BENCH_<pr>.json schema)."""

    pr: int
    accesses_per_sec: float
    events_per_sec: float
    matrix_wall_s: float

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"


def measure_matrix(
    accesses_per_core: int = DEFAULT_BENCH_SCALE, seed: int = 0
) -> PerfSnapshot:
    """Run the main matrix once, serially and uncached, and time it."""
    matrix = ExperimentMatrix(
        accesses_per_core=accesses_per_core,
        seed=seed,
        jobs=1,
        result_cache=ResultCache(enabled=False),
    )
    start = time.perf_counter()
    matrix.run_main_matrix()
    wall = time.perf_counter() - start
    results = list(matrix._cache.values())
    accesses = sum(r.stats.reads + r.stats.writes for r in results)
    events = sum(r.events for r in results)
    return PerfSnapshot(
        pr=SNAPSHOT_PR,
        accesses_per_sec=round(accesses / wall, 1),
        events_per_sec=round(events / wall, 1),
        matrix_wall_s=round(wall, 3),
    )


def run_snapshot(
    trials: int = 3,
    accesses_per_core: int = DEFAULT_BENCH_SCALE,
    seed: int = 0,
) -> PerfSnapshot:
    """Best-of-``trials`` matrix measurement."""
    if trials < 1:
        raise ValueError("need at least one trial")
    best: Optional[PerfSnapshot] = None
    for _ in range(trials):
        snapshot = measure_matrix(accesses_per_core, seed)
        if best is None or snapshot.accesses_per_sec > best.accesses_per_sec:
            best = snapshot
    assert best is not None
    return best


def write_snapshot(snapshot: PerfSnapshot, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(snapshot.to_json())


def load_snapshot(path: str) -> PerfSnapshot:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return PerfSnapshot(
        pr=int(data["pr"]),
        accesses_per_sec=float(data["accesses_per_sec"]),
        events_per_sec=float(data["events_per_sec"]),
        matrix_wall_s=float(data["matrix_wall_s"]),
    )


def check_regression(
    current: PerfSnapshot,
    baseline: PerfSnapshot,
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """Compare ``current`` against a committed ``baseline``.

    Returns a human-readable verdict; raises :class:`RuntimeError`
    when accesses/sec dropped by more than ``tolerance`` (the CI
    perf-smoke contract).
    """
    ratio = current.accesses_per_sec / baseline.accesses_per_sec
    verdict = (
        "accesses/sec: %.1f current vs %.1f baseline (PR %d) -> %.2fx"
        % (
            current.accesses_per_sec,
            baseline.accesses_per_sec,
            baseline.pr,
            ratio,
        )
    )
    if ratio < 1.0 - tolerance:
        raise RuntimeError(
            "perf regression: %s is below the %.0f%% tolerance"
            % (verdict, tolerance * 100)
        )
    return verdict

"""Loaded-regime saturation studies: injection sweeps and knees.

The paper's evaluation runs one outstanding miss per core against an
uncontended ring, i.e. the *unloaded* regime.  This module drives the
simulator into the *loaded* regime: it sweeps the injection rate by
re-pacing the synthetic workloads (the
:attr:`~repro.workloads.synthetic.SharingProfile.think_scale` axis),
turns on the ring contention model
(:attr:`~repro.config.RingConfig.link_occupancy` /
:attr:`~repro.config.RingConfig.serialize_snoop_port`), and collects
the two classic interconnect curves per (algorithm, topology):

* **loaded latency** - mean read-miss latency versus offered ring
  transaction rate.  Flat while the ring has headroom, then bends up
  sharply at the *knee*;
* **saturation throughput** - achieved versus offered rate.  Linear
  while the ring keeps up, then flat at the ring's capacity.

Cores are closed loop (they block on outstanding misses), so the
*achieved* rate self-limits near saturation; the *offered* rate - the
demand an open-loop source with the same pacing would present - is
extrapolated from the lightest-load point, where achieved and offered
coincide: halving every think time doubles the demand even if the
ring can no longer absorb it.

Two sweep modes share the execution path:

* a **think-scale ladder** (the default): each point divides the
  workload's think times by a fixed factor;
* **closed-loop rate targets** (``target_rates``): a calibration run
  at the workload's native pacing measures the base transaction rate,
  then each target rate is converted into the think scale expected to
  produce it (rate scales inversely with think time below the knee).

All points of a study are independent simulations, so the whole grid
is fanned out through one :func:`~repro.harness.parallel.run_specs`
batch and lands in the shared result cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import default_machine
from repro.harness.parallel import RunSpec, run_specs
from repro.harness.result_cache import ResultCache
from repro.sim.system import SimulationResult
from repro.workloads.source import resolve_source

__all__ = [
    "DEFAULT_THINK_SCALES",
    "DEFAULT_LINK_OCCUPANCY",
    "DEFAULT_KNEE_FACTOR",
    "SaturationPoint",
    "Knee",
    "SaturationCurve",
    "run_saturation",
    "format_saturation",
]

#: Default injection ladder, lightest load first.  The synthetic
#: profiles' native think times (~12 cycles) are tiny next to a
#: ~1000-cycle ring miss, so native pacing (1.0) is *already* a
#: loaded point for a closed-loop core; the ladder therefore starts
#: well above native - scale 40 makes the lightest point genuinely
#: unloaded so it can anchor the offered-rate extrapolation and the
#: knee's base latency - and ends far past saturation.
DEFAULT_THINK_SCALES: Tuple[float, ...] = (
    40.0, 10.0, 3.0, 1.0, 0.3, 0.1,
)

#: Default per-crossing link occupancy (cycles) for saturation
#: studies.  The unloaded evaluation models links as infinitely wide
#: (``link_occupancy=0``); a saturation study needs the ring to run
#: out of capacity *inside* the ladder.  Every ring walk crosses every
#: link, so each physical link caps total throughput at one
#: transaction per ``link_occupancy`` cycles: 600 cycles puts that
#: ceiling low enough that loaded latency passes twice its unloaded
#: value (the default knee factor) before the ladder ends, while the
#: lightest points stay essentially unloaded.
DEFAULT_LINK_OCCUPANCY: int = 600

#: A curve's knee is the first point whose loaded latency exceeds this
#: multiple of the lightest-load latency.
DEFAULT_KNEE_FACTOR: float = 2.0


@dataclass(frozen=True)
class SaturationPoint:
    """One injection-rate point of a saturation curve.

    Rates are ring transactions (read + write requests) per thousand
    simulated cycles per CMP; latency is the mean read-miss latency in
    cycles over the measured phase.
    """

    think_scale: float
    offered_rate: float
    achieved_rate: float
    latency: float
    exec_time: int
    retries: int


@dataclass(frozen=True)
class Knee:
    """Interpolated onset of saturation on a loaded-latency curve."""

    offered_rate: float
    latency: float
    #: The sweep point just past the knee (the first one whose latency
    #: exceeded the threshold).
    think_scale: float


@dataclass
class SaturationCurve:
    """A completed injection sweep for one (algorithm, topology)."""

    algorithm: str
    topology: str
    workload: str
    points: List[SaturationPoint] = field(default_factory=list)

    @property
    def base_latency(self) -> float:
        """Latency at the lightest offered load."""
        if not self.points:
            return 0.0
        return min(self.points, key=lambda p: p.offered_rate).latency

    @property
    def saturation_throughput(self) -> float:
        """Highest achieved rate anywhere on the curve (the capacity
        the closed-loop sources managed to push through the ring)."""
        if not self.points:
            return 0.0
        return max(point.achieved_rate for point in self.points)

    def knee(
        self, factor: float = DEFAULT_KNEE_FACTOR
    ) -> Optional[Knee]:
        """First crossing of ``factor`` x the lightest-load latency.

        The crossing is linearly interpolated in (offered rate,
        latency) between the last point below the threshold and the
        first point above it; ``None`` when the curve never bends that
        far (the sweep stayed under the knee).
        """
        if len(self.points) < 2:
            return None
        ordered = sorted(self.points, key=lambda p: p.offered_rate)
        threshold = factor * ordered[0].latency
        if threshold <= 0.0:
            return None
        for prev, point in zip(ordered, ordered[1:]):
            if point.latency <= threshold:
                continue
            span = point.latency - prev.latency
            frac = (threshold - prev.latency) / span if span > 0 else 1.0
            rate = prev.offered_rate + frac * (
                point.offered_rate - prev.offered_rate
            )
            return Knee(
                offered_rate=rate,
                latency=threshold,
                think_scale=point.think_scale,
            )
        return None


def _transaction_rate(result: SimulationResult) -> float:
    """Achieved ring transactions per thousand cycles per CMP."""
    if not result.exec_time:
        return 0.0
    stats = result.stats
    transactions = (
        stats.read_ring_transactions + stats.write_ring_transactions
    )
    num_cmps = result.config.num_cmps if result.config else 1
    return 1000.0 * transactions / (num_cmps * result.exec_time)


def _study_cmps(topology: str, num_cmps: int) -> int:
    """Machine span for one topology of the study (mirrors the CLI's
    ``--num-cmps`` default: hier_ring means the 16-CMP two-level
    reference machine, everything else keeps the workload's own
    geometry)."""
    if num_cmps:
        return num_cmps
    return 16 if topology == "hier_ring" else 0


def run_saturation(
    algorithms: Sequence[str] = ("lazy", "eager", "oracle"),
    topologies: Sequence[str] = ("ring", "hier_ring"),
    workload: str = "splash2",
    think_scales: Sequence[float] = DEFAULT_THINK_SCALES,
    target_rates: Optional[Sequence[float]] = None,
    accesses_per_core: int = 800,
    seed: int = 0,
    warmup_fraction: float = 0.3,
    link_occupancy: int = DEFAULT_LINK_OCCUPANCY,
    serialize_snoop_port: bool = True,
    num_cmps: int = 0,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    core: str = "object",
) -> List[SaturationCurve]:
    """Sweep injection rates for every (algorithm, topology) pair.

    With ``target_rates`` set, a calibration batch first measures each
    pair's transaction rate at native pacing, then the controller
    converts every target rate into the think scale expected to
    produce it (``scale = base_rate / target``, capped at native
    pacing) - closing the loop between "rate I want" and "pacing I
    must inject".  Otherwise ``think_scales`` is swept directly.

    The contention knobs (``link_occupancy``,
    ``serialize_snoop_port``) shape every run's ring; they are
    object-core features, so ``core`` must stay ``"object"`` unless
    contention is disabled.

    Returns one :class:`SaturationCurve` per (algorithm, topology), in
    ``algorithms``-major order; every simulation of the study is fanned
    out through a single :func:`run_specs` batch.
    """
    pairs = [
        (algorithm, topology)
        for algorithm in algorithms
        for topology in topologies
    ]
    scales_by_pair: Dict[Tuple[str, str], List[float]]
    if target_rates:
        base_specs = [
            _saturation_spec(
                algorithm, topology, workload, 1.0,
                accesses_per_core, seed, warmup_fraction,
                link_occupancy, serialize_snoop_port,
                _study_cmps(topology, num_cmps), core,
            )
            for algorithm, topology in pairs
        ]
        base_results = run_specs(base_specs, jobs=jobs, cache=cache)
        scales_by_pair = {}
        for pair, result in zip(pairs, base_results):
            base_rate = _transaction_rate(result)
            scales_by_pair[pair] = [
                min(1.0, base_rate / rate) if rate > 0 else 1.0
                for rate in target_rates
            ]
    else:
        ladder = sorted(think_scales, reverse=True)
        scales_by_pair = {pair: list(ladder) for pair in pairs}

    plan: List[Tuple[Tuple[str, str], float]] = []
    specs: List[RunSpec] = []
    for pair in pairs:
        algorithm, topology = pair
        for scale in scales_by_pair[pair]:
            plan.append((pair, scale))
            specs.append(
                _saturation_spec(
                    algorithm, topology, workload, scale,
                    accesses_per_core, seed, warmup_fraction,
                    link_occupancy, serialize_snoop_port,
                    _study_cmps(topology, num_cmps), core,
                )
            )
    results = run_specs(specs, jobs=jobs, cache=cache)

    curves: Dict[Tuple[str, str], SaturationCurve] = {
        pair: SaturationCurve(
            algorithm=pair[0], topology=pair[1], workload=workload
        )
        for pair in pairs
    }
    by_pair: Dict[Tuple[str, str], List[Tuple[float, SimulationResult]]]
    by_pair = {pair: [] for pair in pairs}
    for (pair, scale), result in zip(plan, results):
        by_pair[pair].append((scale, result))
    for pair, runs in by_pair.items():
        if not runs:
            continue
        # Achieved == offered at the lightest load; from there demand
        # grows inversely with the think scale even where the closed
        # loop can no longer realize it.
        lightest_scale, lightest = max(runs, key=lambda sr: sr[0])
        anchor_rate = _transaction_rate(lightest)
        for scale, result in runs:
            curves[pair].points.append(
                SaturationPoint(
                    think_scale=scale,
                    offered_rate=anchor_rate * (lightest_scale / scale),
                    achieved_rate=_transaction_rate(result),
                    latency=result.stats.mean_read_miss_latency,
                    exec_time=result.exec_time,
                    retries=result.stats.retries,
                )
            )
    return [curves[pair] for pair in pairs]


def _saturation_spec(
    algorithm: str,
    topology: str,
    workload: str,
    think_scale: float,
    accesses_per_core: int,
    seed: int,
    warmup_fraction: float,
    link_occupancy: int,
    serialize_snoop_port: bool,
    num_cmps: int,
    core: str,
) -> RunSpec:
    """One fully-shaped simulation point of the study.

    The config is built here (not left to ``resolve_config``'s
    default) because the contention knobs live inside ``RingConfig``;
    the machine is still shaped to the - possibly reshaped - workload
    geometry exactly as the default path would shape it.
    """
    source = resolve_source(
        workload,
        accesses_per_core=accesses_per_core,
        seed=seed,
        num_cmps=num_cmps,
    )
    machine = default_machine(
        algorithm=algorithm,
        cores_per_cmp=source.cores_per_cmp,
        num_cmps=source.num_cmps,
    )
    machine = machine.replace(
        ring=dataclasses.replace(
            machine.ring,
            link_occupancy=link_occupancy,
            serialize_snoop_port=serialize_snoop_port,
        )
    )
    return RunSpec(
        algorithm=algorithm,
        workload=workload,
        accesses_per_core=accesses_per_core,
        seed=seed,
        warmup_fraction=warmup_fraction,
        config=machine,
        core=core,
        topology=topology,
        num_cmps=num_cmps,
        think_scale=think_scale,
    )


def format_saturation(
    curves: Sequence[SaturationCurve],
    knee_factor: float = DEFAULT_KNEE_FACTOR,
) -> str:
    """Render saturation curves as per-pair tables plus a summary.

    Each curve prints one row per injection point (lightest load
    first) with an ASCII bar over the loaded latency, followed by a
    cross-pair summary of saturation throughput and knee location.
    """
    from repro.harness.report import ascii_bar

    blocks: List[str] = []
    for curve in curves:
        title = "Loaded latency [%s, topology=%s, %s]" % (
            curve.algorithm, curve.topology, curve.workload,
        )
        lines = [title, "-" * len(title)]
        header = "%7s %10s %10s %10s %8s" % (
            "scale", "offered", "achieved", "latency", "retries",
        )
        lines.append(header + "  " + "latency")
        points = sorted(
            curve.points, key=lambda p: p.offered_rate
        )
        max_latency = max(
            (p.latency for p in points), default=0.0
        )
        for point in points:
            lines.append(
                "%7.2f %10.3f %10.3f %10.1f %8d  %s"
                % (
                    point.think_scale,
                    point.offered_rate,
                    point.achieved_rate,
                    point.latency,
                    point.retries,
                    ascii_bar(point.latency, max_latency, width=24),
                )
            )
        knee = curve.knee(knee_factor)
        if knee is not None:
            lines.append(
                "knee: %.3f txns/kcycle/CMP at %.1f-cycle latency "
                "(%.1fx base)"
                % (knee.offered_rate, knee.latency, knee_factor)
            )
        else:
            lines.append(
                "knee: not reached (latency stayed under %.1fx base)"
                % knee_factor
            )
        lines.append(
            "saturation throughput: %.3f txns/kcycle/CMP"
            % curve.saturation_throughput
        )
        blocks.append("\n".join(lines))

    summary_title = "Saturation summary"
    summary = [summary_title, "-" * len(summary_title)]
    summary.append(
        "%-14s %-10s %12s %12s" % (
            "algorithm", "topology", "sat-rate", "knee-rate",
        )
    )
    for curve in curves:
        knee = curve.knee(knee_factor)
        summary.append(
            "%-14s %-10s %12.3f %12s"
            % (
                curve.algorithm,
                curve.topology,
                curve.saturation_throughput,
                "%.3f" % knee.offered_rate if knee else "-",
            )
        )
    blocks.append("\n".join(summary))
    return "\n\n".join(blocks)

"""Experiment harness: runs the paper's evaluation matrix and formats
the tables and figures of Section 6."""

from repro.harness.experiments import (
    ExperimentMatrix,
    MAIN_ALGORITHMS,
    WORKLOADS,
    run_experiment,
)
from repro.harness.parallel import RunSpec, execute_spec, run_specs
from repro.harness.report import render_report
from repro.harness.result_cache import ResultCache
from repro.harness.sweep import (
    Sweep,
    run_sweep,
    sweep_memory_field,
    sweep_predictor_entries,
    sweep_ring_field,
)

__all__ = [
    "ExperimentMatrix",
    "MAIN_ALGORITHMS",
    "WORKLOADS",
    "run_experiment",
    "RunSpec",
    "execute_spec",
    "run_specs",
    "render_report",
    "ResultCache",
    "Sweep",
    "run_sweep",
    "sweep_memory_field",
    "sweep_predictor_entries",
    "sweep_ring_field",
]

"""Parallel fan-out of independent simulation points.

Every cell of the paper's evaluation matrix - and every point of a
parameter sweep - is an independent simulation: same code, different
(algorithm, workload, predictor, scale, seed, config) tuple.  This
module turns such a tuple into a picklable :class:`RunSpec`, executes
batches of them across a spawn-based :class:`ProcessPoolExecutor`, and
memoizes completed results through
:class:`~repro.harness.result_cache.ResultCache`.

Determinism contract: :func:`execute_spec` derives everything from the
spec (workload generation is seeded, the event engine is sequential),
so a parallel run returns *bit-identical* ``SimulationResult``s to a
serial run of the same specs, in the same order.  The integration
suite asserts this over the full main matrix.

The spawn start method is used deliberately: it is the only start
method that behaves identically across platforms and it guarantees
workers import a pristine ``repro`` rather than inheriting arbitrary
parent state through fork.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence

from repro.config import MachineConfig, default_machine
from repro.registry import REGISTRY
from repro.core.algorithms import build_algorithm
from repro.harness.result_cache import (
    ResultCache,
    config_fingerprint,
    fingerprint_key,
)
from repro.sim.system import SimulationResult
from repro.workloads.source import WorkloadSource, resolve_source


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified simulation point.

    Frozen and built only from picklable values, so it can cross a
    process boundary and serve as a dictionary key.  ``config`` is an
    optional full machine override (used by sweeps, whose mutators run
    in the parent so that non-picklable mutator callables never need
    to travel); when present, ``predictor`` still replaces the
    config's predictor field, mirroring
    :func:`repro.harness.experiments.run_experiment`.
    """

    algorithm: str
    workload: str
    predictor: Optional[str] = None
    accesses_per_core: int = 0
    seed: int = 0
    warmup_fraction: float = 0.0
    config: Optional[MachineConfig] = None
    #: Simulation-core implementation (registry kind ``core``):
    #: ``"object"`` (default), ``"soa"``, or ``"jit"`` (numba-compiled
    #: flat-array kernel with a pure-Python fallback).  All produce
    #: bit-identical summaries; the array cores additionally pin
    #: diagnostic event counts that differ from the object engine, so
    #: non-default cores get their own result-cache entries.
    core: str = "object"
    #: Snoop-topology override (registry kind ``topology``): ``None``
    #: leaves the machine config untouched (the default ``ring``);
    #: naming one replaces ``config.topology.kind``.  The topology
    #: travels inside the machine fingerprint, and the default
    #: ``TopologyConfig`` is elided there, so pre-existing cache keys
    #: stay byte-stable (the ``core`` precedent above).
    topology: Optional[str] = None
    #: Machine-span override: 0 = the workload source's own geometry;
    #: a nonzero value reshapes a synthetic workload across that many
    #: CMPs (e.g. a 16-CMP two-level hier_ring machine).
    num_cmps: int = 0
    #: Injection-pacing override: every synthetic think time is
    #: multiplied by this factor (the loaded-regime axis; see
    #: :attr:`repro.workloads.synthetic.SharingProfile.think_scale`).
    #: 1.0 leaves the workload - and every pre-existing cache key -
    #: untouched.
    think_scale: float = 1.0

    def resolve_config(
        self, cores_per_cmp: int, num_cmps: int = 8
    ) -> MachineConfig:
        """The machine this spec simulates.

        With no explicit ``config`` override the default machine is
        shaped to the workload source's geometry - builtin profiles
        populate the paper's 8 CMPs, but a replayed trace file brings
        its own CMP count.
        """
        if self.config is None:
            machine = default_machine(
                algorithm=self.algorithm,
                predictor=self.predictor,
                cores_per_cmp=cores_per_cmp,
                num_cmps=num_cmps,
            )
        else:
            machine = self.config
            if self.predictor is not None:
                machine = machine.replace(
                    predictor=REGISTRY.create(
                        "predictor", self.predictor
                    )
                )
        if self.topology is not None:
            import dataclasses

            machine = machine.replace(
                topology=dataclasses.replace(
                    machine.topology,
                    kind=REGISTRY.canonical("topology", self.topology),
                )
            )
        return machine

    def fingerprint(
        self,
        cores_per_cmp: int,
        source_descriptor: Optional[Dict[str, Any]] = None,
        num_cmps: int = 8,
    ) -> Dict[str, Any]:
        """JSON-able payload that uniquely identifies the result.

        When the workload source publishes a stable *descriptor* (the
        normal case: synthetic profiles embed their parameters, file
        replays embed the file's content hash), the payload is keyed
        on it - two spellings of the same input collide, and a file
        whose contents change gets a fresh key.  Sources without a
        descriptor fall back to the literal spec fields.
        """
        payload: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "predictor": self.predictor,
            "warmup_fraction": self.warmup_fraction,
            "machine": config_fingerprint(
                self.resolve_config(cores_per_cmp, num_cmps)
            ),
        }
        if self.core != "object":
            # Default-core keys stay byte-stable across this field's
            # introduction, so existing caches remain warm.
            payload["core"] = REGISTRY.canonical("core", self.core)
        if source_descriptor is not None:
            payload["source"] = source_descriptor
        else:
            payload["workload"] = self.workload
            payload["accesses_per_core"] = self.accesses_per_core
            payload["seed"] = self.seed
            if self.think_scale != 1.0:
                # Descriptor-bearing sources already carry the pacing
                # in their profile dict; the field fallback needs it
                # spelled out (elided at the default for key
                # stability).
                payload["think_scale"] = self.think_scale
        return payload

    def cache_key(self) -> str:
        """Stable cache key; includes the resolved machine config.

        The workload source is resolved (to learn its geometry and
        descriptor) but never materialized, so key computation stays
        cheap on the warm-cache path - a file-backed source costs one
        header/hash scan, a synthetic source costs nothing.
        """
        source = _cached_source(
            self.workload, self.accesses_per_core, self.seed,
            self.num_cmps, self.think_scale,
        )
        return fingerprint_key(
            self.fingerprint(
                source.cores_per_cmp,
                source.descriptor(),
                source.num_cmps,
            )
        )


@lru_cache(maxsize=8)
def _cached_source(
    workload: str,
    accesses_per_core: int,
    seed: int,
    num_cmps: int = 0,
    think_scale: float = 1.0,
) -> WorkloadSource:
    """Resolve (and reuse) a workload source.

    Sources are immutable during simulation (cores consume private
    iterators; synthetic sources memoize their generated trace, file
    sources open a fresh handle per core stream), so one source can be
    shared by every run of the same (workload, scale, seed) within a
    process - a sweep over N values resolves its source once, and a
    7-algorithm matrix resolves one source per workload instead of
    seven.  Because only the *spec string* crosses the process
    boundary, parallel workers regenerate synthetic inputs or replay
    files locally instead of pickling materialized traces.
    """
    return resolve_source(
        workload,
        accesses_per_core=accesses_per_core,
        seed=seed,
        num_cmps=num_cmps,
        think_scale=think_scale,
    )


def execute_spec(spec: RunSpec) -> SimulationResult:
    """Run one simulation point to completion.

    Top-level and driven purely by ``spec`` so it can be shipped to a
    spawn worker.  This is the single execution path shared by the
    serial and parallel harnesses, which is what makes their results
    identical by construction.
    """
    source = _cached_source(
        spec.workload, spec.accesses_per_core, spec.seed, spec.num_cmps,
        spec.think_scale,
    )
    machine = spec.resolve_config(source.cores_per_cmp, source.num_cmps)
    system = REGISTRY.create(
        "core",
        spec.core,
        machine,
        build_algorithm(spec.algorithm),
        source,
        warmup_fraction=spec.warmup_fraction,
    )
    return system.run()


def default_jobs() -> int:
    """Worker count used when the caller passes ``jobs=None``/``0``.

    Prefers the scheduling affinity mask over ``os.cpu_count()``:
    under cgroup CPU limits or ``taskset`` the process may be allowed
    far fewer CPUs than the machine has, and sizing the pool to the
    machine then just makes the workers fight over the allowed cores.
    """
    try:
        allowed = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        # Platforms without sched_getaffinity (macOS, Windows).
        allowed = os.cpu_count() or 1
    return max(allowed, 1)


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[SimulationResult]:
    """Run every spec, in order, with caching and process fan-out.

    Args:
        specs: simulation points; duplicates are simulated once.
        jobs: worker processes (None/0 = one per CPU; 1 = in-process
            serial execution, no pool).
        cache: optional persistent result cache consulted before and
            populated after execution.

    Returns results positionally aligned with ``specs``.
    """
    specs = list(specs)
    if jobs is None or jobs <= 0:
        jobs = default_jobs()

    results: Dict[RunSpec, SimulationResult] = {}
    missing: List[RunSpec] = []
    keys: Dict[RunSpec, str] = {}
    for spec in specs:
        if spec in results or spec in keys:
            continue
        if cache is not None:
            key = spec.cache_key()
            keys[spec] = key
            hit = cache.get(key)
            if hit is not None:
                results[spec] = hit
                continue
        else:
            keys[spec] = ""
        missing.append(spec)

    if missing:
        for spec, result in zip(missing, _execute_batch(missing, jobs)):
            results[spec] = result
            if cache is not None:
                cache.put(keys[spec], result)

    return [results[spec] for spec in specs]


def _execute_batch(
    specs: List[RunSpec], jobs: int
) -> List[SimulationResult]:
    """Execute uncached specs, preferring a spawn pool."""
    workers = min(jobs, len(specs))
    if workers <= 1:
        return [execute_spec(spec) for spec in specs]
    try:
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            return list(pool.map(execute_spec, specs))
    except (BrokenProcessPool, OSError, RuntimeError) as exc:
        # Sandboxes without process spawning, __main__-less embedders,
        # fd limits: degrade to the serial path rather than failing -
        # the results are identical either way.
        warnings.warn(
            "parallel execution unavailable (%s); running %d point(s) "
            "serially" % (exc, len(specs)),
            RuntimeWarning,
            stacklevel=3,
        )
        return [execute_spec(spec) for spec in specs]

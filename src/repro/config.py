"""Configuration dataclasses for the flexible-snooping simulator.

The default values reproduce Table 4 of the paper (Strauss, Shen,
Torrellas, ISCA 2006): an 8-CMP machine whose CMPs are connected by a
2D torus carrying data messages, with two unidirectional rings
logically embedded in the torus carrying snoop messages.

All times are expressed in processor cycles at the paper's 6 GHz
reference frequency.  All energies are expressed in nanojoules.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class RingConfig:
    """Timing parameters of the embedded unidirectional snoop ring.

    Attributes:
        hop_latency: CMP-to-CMP latency of one ring segment (cycles).
        snoop_time: CMP bus access plus L2 snoop time, i.e. the time a
            snoop operation occupies at a node (cycles).  The paper
            breaks the 55 cycles into 38 cycles of on-chip transmission,
            10 cycles of arbitration and 7 cycles of L2 snooping.
        gateway_latency: fixed gateway processing overhead applied when
            a message is received and re-emitted without snooping
            (cycles).  Kept small; the paper folds it into hop latency.
        num_rings: number of embedded rings; snoop requests are mapped
            to rings by line address to balance load.
    """

    hop_latency: int = 39
    snoop_time: int = 55
    gateway_latency: int = 0
    num_rings: int = 2
    #: Cycles a ring link is occupied per message (0 = unlimited
    #: bandwidth, the paper's "unloaded" analysis).  With a non-zero
    #: value, messages crossing the same segment of the same ring
    #: serialize - which is precisely where Eager's doubled traffic
    #: starts to hurt.
    link_occupancy: int = 0
    #: Serialize snoop operations at each CMP (the shared on-chip bus
    #: admits one snoop at a time).  Off by default to match the
    #: paper's unloaded-latency tables.
    serialize_snoop_port: bool = False
    #: Simulator (not machine) knob: walk consecutive ring hops of a
    #: transaction inside one engine event instead of one event per
    #: hop.  Results are identical (asserted by the golden-equivalence
    #: test); the flag exists so the equivalence can be demonstrated
    #: and so contention studies - where per-hop event interleaving
    #: matters and batching auto-disables anyway - can pin it off.
    hop_batching: bool = True


@dataclass(frozen=True)
class DataNetworkConfig:
    """Timing of the regular (non-ring) data network, a 2D torus.

    Data replies and memory messages use the torus, not the ring.  The
    latency of a transfer is ``per_hop_latency * torus_hops + overhead``.
    """

    per_hop_latency: int = 20
    overhead: int = 40
    torus_shape: Tuple[int, int] = (4, 2)


#: The stock 8-CMP torus; :class:`MachineConfig` auto-grows this (and
#: only this) shape when a larger machine is requested.
_DEFAULT_TORUS_SHAPE: Tuple[int, int] = (4, 2)


def derive_torus_shape(num_cmps: int) -> Tuple[int, int]:
    """Smallest near-square ``(rows, cols)`` torus holding ``num_cmps``
    nodes, with ``rows >= cols`` like the stock (4, 2) shape."""
    cols = 1
    while cols * cols < num_cmps:
        cols += 1
    rows = (num_cmps + cols - 1) // cols
    if rows < cols:
        rows, cols = cols, rows
    return rows, cols


@dataclass(frozen=True)
class TopologyConfig:
    """Shape of the snoop interconnect (registry kind ``topology``).

    ``kind`` names a topology registered under the ``topology``
    registry kind (builtins: ``ring``, ``hier_ring``; plugins via the
    ``flexsnoop.topologies`` entry-point group).  The remaining fields
    parameterize the two-level ``hier_ring`` builtin: ``local_rings``
    local rings of ``num_cmps // local_rings`` CMPs each, joined by a
    global ring through one bridge node per local ring.  A hop latency
    of 0 means "inherit ``RingConfig.hop_latency``", so the default
    hier_ring machine is directly comparable to the flat ring.
    """

    kind: str = "ring"
    local_rings: int = 4
    local_hop_latency: int = 0
    global_hop_latency: int = 0

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("topology kind must be a non-empty name")
        if self.local_rings < 1:
            raise ValueError("local_rings must be >= 1")
        if self.local_hop_latency < 0 or self.global_hop_latency < 0:
            raise ValueError("topology hop latencies must be >= 0")


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory timing (Table 4 of the paper).

    Attributes:
        local_round_trip: round-trip to the local (same node) memory.
        remote_round_trip: round-trip to a remote node's memory when no
            prefetch was initiated.
        remote_round_trip_prefetched: round-trip to a remote memory when
            a prefetch was initiated as the snoop request passed the
            home node, hiding most of the DRAM latency.
        prefetch_on_snoop: whether passing the home node on the ring
            initiates a DRAM prefetch (the heuristic of Section 2.2).
    """

    local_round_trip: int = 350
    remote_round_trip: int = 710
    remote_round_trip_prefetched: int = 312
    prefetch_on_snoop: bool = True


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one private L2 cache.

    The simulator tracks lines, not bytes: ``num_lines`` is
    ``size / line_size`` (512 KB / 64 B = 8192 lines by default).
    """

    num_lines: int = 8192
    associativity: int = 8
    line_size: int = 64
    hit_latency: int = 11
    local_master_latency: int = 55

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def __post_init__(self) -> None:
        if self.num_lines % self.associativity != 0:
            raise ValueError(
                "num_lines (%d) must be a multiple of associativity (%d)"
                % (self.num_lines, self.associativity)
            )


@dataclass(frozen=True)
class PredictorConfig:
    """Configuration of a Supplier Predictor (Section 4.3 / Table 4).

    ``kind`` selects the predictor family:

    * ``"none"``    - no predictor (Lazy / Eager).
    * ``"subset"``  - set-associative cache of supplier lines; false
      negatives possible, no false positives.
    * ``"superset"``- counting Bloom filter plus Exclude cache; false
      positives possible, no false negatives.
    * ``"exact"``   - subset cache that downgrades lines on conflict
      eviction; neither false positives nor false negatives.
    * ``"perfect"`` - oracle that inspects the caches directly.

    ``bloom_fields`` gives the bit widths of the address fields indexing
    the Bloom filter tables.  The paper's *y* filter uses (10, 4, 7) and
    its *n* filter uses (9, 9, 6).
    """

    kind: str = "none"
    entries: int = 2048
    associativity: int = 8
    bloom_fields: Tuple[int, ...] = (10, 4, 7)
    exclude_entries: int = 2048
    exclude_associativity: int = 8
    access_latency: int = 2

    VALID_KINDS = ("none", "subset", "superset", "exact", "perfect")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise ValueError(
                "unknown predictor kind %r; expected one of %s"
                % (self.kind, ", ".join(self.VALID_KINDS))
            )

    def with_entries(self, entries: int) -> "PredictorConfig":
        """Return a copy of this config with a different entry count."""
        return dataclasses.replace(self, entries=entries)


#: Named predictor configurations from Section 5.2 of the paper.
NAMED_PREDICTORS = {
    "Sub512": PredictorConfig(kind="subset", entries=512),
    "Sub2k": PredictorConfig(kind="subset", entries=2048),
    "Sub8k": PredictorConfig(kind="subset", entries=8192),
    "Supy512": PredictorConfig(
        kind="superset", bloom_fields=(10, 4, 7), exclude_entries=512
    ),
    "Supy2k": PredictorConfig(
        kind="superset", bloom_fields=(10, 4, 7), exclude_entries=2048
    ),
    "Supn2k": PredictorConfig(
        kind="superset", bloom_fields=(9, 9, 6), exclude_entries=2048
    ),
    "Exa512": PredictorConfig(kind="exact", entries=512),
    "Exa2k": PredictorConfig(kind="exact", entries=2048),
    "Exa8k": PredictorConfig(kind="exact", entries=8192),
    "Perfect": PredictorConfig(kind="perfect"),
    "None": PredictorConfig(kind="none"),
}


def _register_predictors() -> None:
    """Expose the named predictor configs through the component
    registry (the unified name-resolution path)."""
    from repro.registry import REGISTRY

    for name, config in NAMED_PREDICTORS.items():
        REGISTRY.register(
            "predictor",
            name,
            (lambda _config=config: _config),
            metadata={"kind": config.kind, "entries": config.entries},
        )


_register_predictors()


@dataclass(frozen=True)
class EnergyConfig:
    """Per-event energies in nanojoules (Section 6.1.4 of the paper).

    The paper's published calibration points are used directly:
    3.17 nJ to move one snoop message across one ring link, 0.69 nJ for
    one CMP snoop operation, and 24 nJ for one main-memory line access.
    The predictor energies are chosen to be consistent with the paper's
    qualitative findings: the Superset predictor (Bloom filter plus
    Exclude cache, trained on every supplier-state change and probed on
    every ring message) consumes enough energy that Superset Con ends up
    only slightly below Lazy overall.
    """

    ring_link_message: float = 3.17
    cmp_snoop: float = 0.69
    memory_line_access: float = 24.0
    subset_lookup: float = 0.08
    subset_update: float = 0.08
    superset_lookup: float = 0.12
    superset_update: float = 0.12
    exact_lookup: float = 0.08
    exact_update: float = 0.08
    downgrade_cache_access: float = 0.30


@dataclass(frozen=True)
class TraceConfig:
    """Observability knobs (see ``docs/observability.md``).

    Simulator-level, not machine semantics: tracing observes the run
    without changing any result (guarded by the golden audit tests).

    Attributes:
        enabled: emit lifecycle events into a trace sink.  Off by
            default; the hot paths then pay only an ``is not None``
            test per emission site.
        sink: sink name resolved through the component registry
            (kind ``"sink"``; builtins: ``memory``, ``jsonl``).
        sample_window: simulated cycles between metrics-timeline
            samples (0 disables the timeline).  The timeline does not
            require ``enabled``.
    """

    enabled: bool = False
    sink: str = "memory"
    sample_window: int = 0

    def __post_init__(self) -> None:
        if self.sample_window < 0:
            raise ValueError("sample_window must be >= 0")


@dataclass(frozen=True)
class ProcessorConfig:
    """Trace-replay timing model of one core.

    Cores replay a trace of L2-level accesses.  Between consecutive
    accesses the core computes for the access's ``think_time`` cycles.
    Read misses block the core until data arrives; writes block until
    the invalidation acknowledgement returns (conservative).
    """

    default_think_time: int = 12
    max_outstanding_writes: int = 1


@dataclass(frozen=True)
class MachineConfig:
    """Complete configuration of the simulated multiprocessor."""

    num_cmps: int = 8
    cores_per_cmp: int = 4
    ring: RingConfig = field(default_factory=RingConfig)
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    data_network: DataNetworkConfig = field(default_factory=DataNetworkConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    track_versions: bool = False
    check_invariants: bool = False
    squash_backoff: int = 200
    #: Extension (Section 5.3 leaves this open): filter write snoops
    #: with a per-CMP presence predictor - a counting Bloom filter
    #: over all resident lines.  A provably-absent line's invalidation
    #: snoop is skipped.
    filter_write_snoops: bool = False
    #: Structured observability (off by default, zero result impact).
    tracing: TraceConfig = field(default_factory=TraceConfig)

    @property
    def num_cores(self) -> int:
        return self.num_cmps * self.cores_per_cmp

    def __post_init__(self) -> None:
        if self.num_cmps < 2:
            raise ValueError("need at least 2 CMPs for a ring")
        if self.cores_per_cmp < 1:
            raise ValueError("need at least 1 core per CMP")
        rows, cols = self.data_network.torus_shape
        if rows * cols < self.num_cmps:
            if self.data_network.torus_shape == _DEFAULT_TORUS_SHAPE:
                # The default 4x2 torus only fits 8 CMPs.  Machines are
                # shaped to their workload source's CMP count, so a
                # >8-CMP replay would otherwise die here; grow the
                # default to a near-square shape that fits.  Explicit
                # non-default shapes still fail loudly below.
                object.__setattr__(
                    self,
                    "data_network",
                    dataclasses.replace(
                        self.data_network,
                        torus_shape=derive_torus_shape(self.num_cmps),
                    ),
                )
            else:
                raise ValueError(
                    "torus shape %s too small for %d CMPs"
                    % (self.data_network.torus_shape, self.num_cmps)
                )

    def replace(self, **kwargs) -> "MachineConfig":
        """Return a copy of this config with selected fields replaced."""
        return dataclasses.replace(self, **kwargs)


def default_machine(
    algorithm: Optional[str] = None,
    predictor: Optional[str] = None,
    **overrides,
) -> MachineConfig:
    """Build the paper's default machine, optionally picking a named
    predictor (Section 5.2) appropriate for an algorithm.

    Args:
        algorithm: optional algorithm name; if given and ``predictor``
            is omitted, the algorithm's default predictor from the
            paper's main comparison (Section 6.1) is used: ``Sub2k``
            for Subset, ``Supy2k`` for the Superset algorithms and
            ``Exa2k`` for Exact.
        predictor: optional named predictor from ``NAMED_PREDICTORS``.
        **overrides: additional ``MachineConfig`` field overrides.
    """
    from repro.registry import REGISTRY

    if predictor is None and algorithm is not None:
        predictor = REGISTRY.metadata("algorithm", algorithm).get(
            "default_predictor"
        )
    predictor_config = (
        REGISTRY.create("predictor", predictor)
        if predictor
        else PredictorConfig()
    )
    return MachineConfig(predictor=predictor_config, **overrides)

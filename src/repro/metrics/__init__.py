"""Statistics collection for simulation runs."""

from repro.metrics.histogram import LatencyHistogram, merge
from repro.metrics.stats import PredictorAccuracy, RunStats

__all__ = ["LatencyHistogram", "merge", "PredictorAccuracy", "RunStats"]

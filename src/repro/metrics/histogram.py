"""Latency histograms with percentile queries.

The paper reports means; a downstream user tuning a real design wants
distributions - tail latency is what victimizes multi-GHz cores.  The
simulator records read-miss service times into a
:class:`LatencyHistogram` (log-spaced buckets, constant memory), which
reports percentiles, mean, and a compact text rendering.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


class LatencyHistogram:
    """Log-spaced histogram of non-negative integer latencies.

    Buckets grow geometrically by ``growth`` starting at ``first``;
    values beyond the last edge land in an unbounded overflow bucket.
    Percentiles are resolved to a bucket's upper edge, which bounds
    the relative error by ``growth``.
    """

    def __init__(
        self,
        first: int = 16,
        growth: float = 1.5,
        buckets: int = 32,
    ) -> None:
        if first < 1 or growth <= 1.0 or buckets < 1:
            raise ValueError("invalid histogram geometry")
        self.edges: List[int] = []
        edge = float(first)
        previous = 0
        for _ in range(buckets):
            # Slow-growth geometries (e.g. growth=1.001) produce runs
            # of equal integers after ceil; edges must be strictly
            # increasing for _bucket_of's binary search to be
            # well-defined, so collapse duplicates upward.
            integer_edge = max(int(math.ceil(edge)), previous + 1)
            self.edges.append(integer_edge)
            previous = integer_edge
            edge *= growth
        self.counts: List[int] = [0] * (buckets + 1)  # + overflow
        self.total = 0
        self.sum = 0
        self.max_value = 0
        self.min_value: int = -1

    def record(self, value: int) -> None:
        if value < 0:
            raise ValueError("latencies are non-negative")
        self.total += 1
        self.sum += value
        self.max_value = max(self.max_value, value)
        self.min_value = (
            value if self.min_value < 0 else min(self.min_value, value)
        )
        self.counts[self._bucket_of(value)] += 1

    def _bucket_of(self, value: int) -> int:
        # Binary search over edges.
        lo, hi = 0, len(self.edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.edges[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def percentile(self, p: float) -> int:
        """Upper edge of the bucket containing the p-th percentile
        (p in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.total == 0:
            return 0
        target = math.ceil(self.total * p / 100.0)
        target = max(target, 1)
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            if running >= target:
                if index < len(self.edges):
                    return self.edges[index]
                return self.max_value
        return self.max_value

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.total,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max_value,
        }

    def nonzero_buckets(self) -> List[Tuple[str, int]]:
        """(range label, count) for populated buckets, for display."""
        rows: List[Tuple[str, int]] = []
        lower = 0
        for index, count in enumerate(self.counts):
            if index < len(self.edges):
                label = "%d-%d" % (lower, self.edges[index])
                lower = self.edges[index] + 1
            else:
                label = ">%d" % self.edges[-1]
            if count:
                rows.append((label, count))
        return rows

    def __eq__(self, other: object) -> bool:
        """Value equality: same geometry and same recorded samples.

        Needed so results that cross a process boundary (the parallel
        harness pickles them back to the parent) compare equal to
        locally computed ones.
        """
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self.edges == other.edges
            and self.counts == other.counts
            and self.total == other.total
            and self.sum == other.sum
            and self.max_value == other.max_value
            and self.min_value == other.min_value
        )

    __hash__ = None  # mutable container

    def render(self, width: int = 40) -> str:
        """Compact text rendering (one line per populated bucket)."""
        rows = self.nonzero_buckets()
        if not rows:
            return "(empty)"
        peak = max(count for _, count in rows)
        lines = []
        for label, count in rows:
            bar = "#" * max(1, int(round(width * count / peak)))
            lines.append("%16s %8d |%s" % (label, count, bar))
        return "\n".join(lines)


def merge(histograms: Sequence[LatencyHistogram]) -> LatencyHistogram:
    """Merge histograms with identical geometry.

    The merged histogram copies the first histogram's geometry
    directly rather than re-deriving (first, growth, buckets) from the
    integer edges - the derivation is lossy (``edges[1]/edges[0]``
    can fall at or below 1.0 for slow-growth geometries) and the
    constructor would reject parameters it itself produced.
    """
    if not histograms:
        raise ValueError("nothing to merge")
    first = histograms[0]
    merged = LatencyHistogram.__new__(LatencyHistogram)
    merged.edges = list(first.edges)
    merged.counts = [0] * len(first.counts)
    merged.total = 0
    merged.sum = 0
    merged.max_value = 0
    merged.min_value = -1
    for histogram in histograms:
        if histogram.edges != merged.edges:
            raise ValueError("histogram geometries differ")
        for index, count in enumerate(histogram.counts):
            merged.counts[index] += count
        merged.total += histogram.total
        merged.sum += histogram.sum
        merged.max_value = max(merged.max_value, histogram.max_value)
        if histogram.min_value >= 0:
            merged.min_value = (
                histogram.min_value
                if merged.min_value < 0
                else min(merged.min_value, histogram.min_value)
            )
    return merged

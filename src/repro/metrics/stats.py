"""Counters collected during a simulation run.

The figures of the paper are all derived from these counters:

* Figure 6 - ``read_snoops / read_ring_transactions``.
* Figure 7 - ``read_ring_crossings`` (normalized to Lazy).
* Figure 8 - ``exec_time`` (normalized to Lazy).
* Figure 9 - the energy model's totals (normalized to Lazy).
* Figure 11 - :class:`PredictorAccuracy` fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.metrics.histogram import LatencyHistogram


@dataclass
class PredictorAccuracy:
    """TP/TN/FP/FN breakdown of Supplier Predictor lookups.

    ``true_positive`` etc. count individual predictions made by ring
    read snoop requests, classified against ground truth at lookup
    time (whether the CMP really held the line in a supplier state).
    """

    true_positive: int = 0
    true_negative: int = 0
    false_positive: int = 0
    false_negative: int = 0

    def record(self, prediction: bool, truth: bool) -> None:
        if prediction and truth:
            self.true_positive += 1
        elif prediction and not truth:
            self.false_positive += 1
        elif not prediction and truth:
            self.false_negative += 1
        else:
            self.true_negative += 1

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.true_negative
            + self.false_positive
            + self.false_negative
        )

    def fractions(self) -> Dict[str, float]:
        """Fractions of each class, as plotted in Figure 11."""
        total = self.total
        if total == 0:
            return {
                "true_positive": 0.0,
                "true_negative": 0.0,
                "false_positive": 0.0,
                "false_negative": 0.0,
            }
        return {
            "true_positive": self.true_positive / total,
            "true_negative": self.true_negative / total,
            "false_positive": self.false_positive / total,
            "false_negative": self.false_negative / total,
        }

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN): probability a non-supplier node predicts
        positive."""
        denom = self.false_positive + self.true_negative
        return self.false_positive / denom if denom else 0.0

    @property
    def false_negative_rate(self) -> float:
        """FN / (FN + TP): probability a supplier node predicts
        negative."""
        denom = self.false_negative + self.true_positive
        return self.false_negative / denom if denom else 0.0


@dataclass
class RunStats:
    """All counters of one simulation run."""

    # --- core-visible accesses -------------------------------------
    reads: int = 0
    writes: int = 0
    read_hits_local_cache: int = 0
    read_hits_local_master: int = 0
    write_hits_exclusive: int = 0

    # --- ring read transactions -------------------------------------
    read_ring_transactions: int = 0
    read_snoops: int = 0
    read_ring_crossings: int = 0
    reads_supplied_by_cache: int = 0
    reads_supplied_by_memory: int = 0
    reads_prefetched: int = 0

    # --- ring write transactions ------------------------------------
    write_ring_transactions: int = 0
    write_snoops: int = 0
    write_ring_crossings: int = 0
    writes_supplied_by_cache: int = 0
    writes_supplied_by_memory: int = 0

    # --- collisions ---------------------------------------------------
    squashes: int = 0
    retries: int = 0
    mshr_queued: int = 0

    # --- predictor -----------------------------------------------------
    accuracy: PredictorAccuracy = field(default_factory=PredictorAccuracy)
    perfect_accuracy: PredictorAccuracy = field(
        default_factory=PredictorAccuracy
    )

    # --- caches / memory -------------------------------------------------
    writebacks: int = 0
    dirty_evictions: int = 0
    downgrades: int = 0
    downgrade_writebacks: int = 0
    downgrade_rereads: int = 0

    # --- latency bookkeeping ----------------------------------------------
    read_miss_latency_sum: int = 0
    read_miss_count: int = 0
    supplier_latency_sum: int = 0
    supplier_latency_count: int = 0
    read_miss_histogram: LatencyHistogram = field(
        default_factory=LatencyHistogram
    )

    # --- completion -----------------------------------------------------
    exec_time: int = 0
    core_finish_times: List[int] = field(default_factory=list)
    version_violations: int = 0

    # --- engine / hot-path perf counters ----------------------------------
    # Populated once, at the end of RingMultiprocessor.run(), with
    # whole-run values (they are diagnostics of simulator efficiency,
    # not of the simulated machine, so they ignore the warmup reset and
    # are deliberately NOT part of summary()).
    events_scheduled: int = 0
    events_fired: int = 0
    hops_batched: int = 0
    messages_allocated: int = 0
    messages_reused: int = 0

    @property
    def snoops_per_read_request(self) -> float:
        """Figure 6 metric: CMP snoop operations per read snoop
        request that went on the ring."""
        if self.read_ring_transactions == 0:
            return 0.0
        return self.read_snoops / self.read_ring_transactions

    @property
    def read_messages_per_request(self) -> float:
        """Ring segment crossings per read request, divided by the
        ring length is applied by callers; raw per-request crossings
        here."""
        if self.read_ring_transactions == 0:
            return 0.0
        return self.read_ring_crossings / self.read_ring_transactions

    @property
    def supplier_found_fraction(self) -> float:
        """Fraction of ring reads answered cache-to-cache."""
        total = self.reads_supplied_by_cache + self.reads_supplied_by_memory
        return self.reads_supplied_by_cache / total if total else 0.0

    @property
    def mean_read_miss_latency(self) -> float:
        if self.read_miss_count == 0:
            return 0.0
        return self.read_miss_latency_sum / self.read_miss_count

    @property
    def mean_supplier_latency(self) -> float:
        """Mean unloaded time from ring issue to supplier snoop
        completion, over cache-supplied reads."""
        if self.supplier_latency_count == 0:
            return 0.0
        return self.supplier_latency_sum / self.supplier_latency_count

    def summary(self) -> Dict[str, float]:
        """Flat summary used by the harness and the examples."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "read_ring_transactions": self.read_ring_transactions,
            "snoops_per_read_request": self.snoops_per_read_request,
            "read_ring_crossings": self.read_ring_crossings,
            "write_ring_crossings": self.write_ring_crossings,
            "supplier_found_fraction": self.supplier_found_fraction,
            "mean_read_miss_latency": self.mean_read_miss_latency,
            "exec_time": self.exec_time,
            "squashes": self.squashes,
            "downgrades": self.downgrades,
            "memory_reads": self.reads_supplied_by_memory,
        }

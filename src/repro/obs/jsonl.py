"""JSONL serialization of run traces.

File layout (one JSON object per line)::

    {"meta": {"algorithm": "exact", "workload": "specweb",
              "num_cmps": 8, ...}}
    {"t": 0, "ev": "issue", "txn": 1, "node": 3, "addr": 4096,
     "data": {"kind": "read", "core": 12, "squashed": false}}
    ...

The meta header is optional when writing raw event lists but the
auditor needs ``num_cmps`` from it, so :func:`write_trace` always
emits one.  Unknown keys in the header are preserved round-trip.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from repro.obs.trace import EventType, TraceEvent


def event_to_json(event: TraceEvent) -> Dict[str, Any]:
    """One event as a JSON-serializable dict (compact key names)."""
    return {
        "t": event.time,
        "ev": event.type.value,
        "txn": event.txn,
        "node": event.node,
        "addr": event.address,
        "data": dict(event.data),
    }


def event_from_json(payload: Mapping[str, Any]) -> TraceEvent:
    """Inverse of :func:`event_to_json`."""
    return TraceEvent(
        time=int(payload["t"]),
        type=EventType(payload["ev"]),
        txn=int(payload["txn"]),
        node=int(payload["node"]),
        address=int(payload["addr"]),
        data=dict(payload.get("data", {})),
    )


def write_trace(
    path: str,
    events: Iterable[TraceEvent],
    meta: Mapping[str, Any],
) -> int:
    """Write a meta header plus every event; returns the event count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"meta": dict(meta)}, sort_keys=True) + "\n")
        for event in events:
            handle.write(
                json.dumps(event_to_json(event), sort_keys=True) + "\n"
            )
            count += 1
    return count


def read_trace(path: str) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Read a trace file back as ``(meta, events)``.

    Raises ``ValueError`` on malformed lines (with the line number),
    so a truncated or hand-edited file fails loudly rather than
    auditing a partial trace silently.
    """
    meta: Dict[str, Any] = {}
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    "%s:%d: malformed JSON: %s" % (path, lineno, exc)
                ) from exc
            if "meta" in payload and "ev" not in payload:
                meta.update(payload["meta"])
                continue
            try:
                events.append(event_from_json(payload))
            except (KeyError, ValueError) as exc:
                raise ValueError(
                    "%s:%d: malformed event: %s" % (path, lineno, exc)
                ) from exc
    return meta, events

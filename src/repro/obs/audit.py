"""Per-transaction lifecycle validators for emitted traces.

Interface contract
==================

:class:`TraceAuditor` replays a trace (a sequence of
:class:`~repro.obs.trace.TraceEvent`, in emission order) through one
finite-state validator per transaction and returns every
:class:`Violation` found.  It is strictly stronger than the end-state
checker (``RingMultiprocessor._check_line_invariants`` snapshots line
states after the fact); the auditor checks the *mechanism*:

* **Lifecycle** - every issued transaction retires exactly once, the
  issue comes first, and only a retry may follow retirement.
* **Ring conservation** (Table 2) - the request/combined form of every
  message crosses exactly ``num_cmps`` segments, hop-by-hop around the
  ring from the requester back to the requester, with no teleports.
* **Recombination** - a ``snoop_then_forward`` snoop always forwards a
  single Combined R/R: the transaction's next hop must be combined
  (the primitive never emits a separate reply).
* **Supply** - at most one supplier answers; after a combined-form
  supply the message is a reply and induces no further snoops or
  predictor lookups.
* **Predictor guarantees** - Subset/Exact predictions are never false
  positives, Superset predictions are never false negatives,
  Exact/Perfect are never wrong at all (Section 4.3).
* **Policy guarantees** (when the audited algorithm's
  :class:`~repro.core.decision.DecisionTable` is supplied) - every
  read snoop's primitive belongs to the table's alphabet; after a
  negative prediction the node snoops only if some reachable row says
  so, and after a positive prediction the node *must* snoop unless
  some reachable row forwards; write snoops use the coupled or
  decoupled form the policy declares.
* **Squash discipline** - a squashed message circulates for
  serialization only: no snoops, no supply, no fill, exactly one
  squash marker and one retry; a non-squashed transaction fills the
  requester cache exactly once and never retries.
* **MSHR fairness** (cross-transaction rider) - waiters queued behind
  a transaction are released at its retirement in exactly their wait
  order, none dropped, none invented.
* **Same-address serialization** (cross-transaction rider) - at any
  instant at most one non-squashed write-involving transaction is in
  flight per line: a conflicting issue must be squashed, and a squash
  must have a conflict to justify it (Section 2.1.4 in event order).
* **Time sanity** - hops and retirement never precede the issue, and
  retirement never precedes the last hop.

The auditor is pure (no simulator imports beyond the event types and
the decision-table data model), so it runs equally on live
``InMemorySink`` events and on traces read back from JSONL files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.decision import DecisionTable
from repro.core.primitives import Primitive
from repro.obs.trace import EventType, TraceEvent
from repro.ring.topology import ring_successors

#: Predictor kinds that may never predict a supplier that is absent.
_NO_FALSE_POSITIVE_KINDS = ("subset", "exact", "perfect")
#: Predictor kinds that may never miss a supplier that is present.
_NO_FALSE_NEGATIVE_KINDS = ("superset", "exact", "perfect")


@dataclass(frozen=True)
class Violation:
    """One broken lifecycle rule, anchored to a transaction."""

    txn: int
    rule: str
    time: int
    message: str

    def __str__(self) -> str:
        return "txn %d @ %d [%s]: %s" % (
            self.txn,
            self.time,
            self.rule,
            self.message,
        )


class TraceAuditor:
    """Validate a trace against the transaction lifecycle FSM.

    Args:
        num_cmps: node count of the audited machine.
        successors: the topology's successor cycle (``successors[i]``
            is the node one snoop segment downstream of ``i``), used
            by the per-segment conservation check.  Defaults to the
            single embedded ring; traced runs on other topologies
            persist their cycle in the trace metadata
            (``meta["successors"]``) for replayed audits.
        table: the audited algorithm's static
            :class:`~repro.core.decision.DecisionTable`; enables the
            policy-guarantee checks (skipped when ``None``, e.g. for
            dynamic policies).
        decouple_writes: the policy's write-decoupling declaration;
            enables the write-snoop form check (skipped when ``None``).
    """

    def __init__(
        self,
        num_cmps: int,
        successors: Optional[Sequence[int]] = None,
        table: Optional[DecisionTable] = None,
        decouple_writes: Optional[bool] = None,
    ) -> None:
        if num_cmps < 2:
            raise ValueError("need at least 2 CMPs for a ring")
        self.num_cmps = num_cmps
        if successors is None:
            successors = ring_successors(num_cmps)
        self._succ = [int(node) for node in successors]
        if sorted(self._succ) != list(range(num_cmps)):
            raise ValueError(
                "successor table is not a permutation of %d nodes"
                % num_cmps
            )
        self._table = table
        self._decouple_writes = decouple_writes
        if table is not None:
            # Hoist the policy alphabet once: what primitives any
            # reachable row may emit after each prediction, and
            # whether a snoop/forward is optional or mandated.
            self._allowed_true = table.primitives_on(True)
            self._allowed_false = table.primitives_on(False)
        else:
            self._allowed_true = ()
            self._allowed_false = ()

    def audit(self, events: Iterable[TraceEvent]) -> List[Violation]:
        """All violations in ``events`` (empty list = clean trace)."""
        by_txn: Dict[int, List[TraceEvent]] = {}
        ordered: List[TraceEvent] = []
        for event in events:
            if event.txn < 0:
                continue  # machine events (e.g. downgrades): no FSM
            ordered.append(event)
            by_txn.setdefault(event.txn, []).append(event)
        violations: List[Violation] = []
        for txn_id in sorted(by_txn):
            violations.extend(self._audit_txn(txn_id, by_txn[txn_id]))
        violations.extend(self._check_serialization(ordered))
        return violations

    # ------------------------------------------------------------------
    # One transaction

    def _audit_txn(
        self, txn_id: int, events: List[TraceEvent]
    ) -> List[Violation]:
        out: List[Violation] = []

        def flag(rule: str, time: int, message: str) -> None:
            out.append(Violation(txn_id, rule, time, message))

        issue = self._check_lifecycle(txn_id, events, flag)
        if issue is None:
            return out
        squashed = bool(issue.data.get("squashed", False))
        hops = [e for e in events if e.type is EventType.HOP]
        self._check_hops(issue, hops, flag)
        self._check_recombination(events, flag)
        self._check_supply(events, flag)
        self._check_predictions(events, flag)
        self._check_policy(events, flag)
        self._check_squash_discipline(squashed, events, flag)
        self._check_mshr_fairness(events, flag)
        return out

    def _check_lifecycle(
        self, txn_id: int, events: List[TraceEvent], flag
    ) -> Optional[TraceEvent]:
        issues = [e for e in events if e.type is EventType.ISSUE]
        retires = [e for e in events if e.type is EventType.RETIRE]
        first = events[0]
        if len(issues) != 1:
            flag(
                "lifecycle",
                first.time,
                "expected exactly 1 issue, saw %d" % len(issues),
            )
            return None
        if first.type is not EventType.ISSUE:
            flag(
                "lifecycle",
                first.time,
                "first event is %s, not issue" % first.type.value,
            )
            return None
        if len(retires) != 1:
            flag(
                "lifecycle",
                events[-1].time,
                "expected exactly 1 retire, saw %d" % len(retires),
            )
            return None
        retire = retires[0]
        after_retire = events[events.index(retire) + 1:]
        for event in after_retire:
            # Retirement itself releases the MSHR waiters (phase
            # "reissue"), and a squashed transaction's retry follows
            # its retirement; anything else is a zombie event.
            if event.type is EventType.RETRY:
                continue
            if (
                event.type is EventType.MSHR
                and event.data.get("phase") == "reissue"
            ):
                continue
            flag(
                "lifecycle",
                event.time,
                "%s emitted after retirement" % event.type.value,
            )
        if retire.time < first.time:
            flag(
                "time",
                retire.time,
                "retired at %d before issue at %d"
                % (retire.time, first.time),
            )
        return issues[0]

    def _check_hops(
        self, issue: TraceEvent, hops: List[TraceEvent], flag
    ) -> None:
        n = self.num_cmps
        if len(hops) != n:
            flag(
                "conservation",
                issue.time,
                "request crossed %d segments, ring has %d"
                % (len(hops), n),
            )
            return
        expected_from = issue.node
        for hop in hops:
            if hop.node != expected_from:
                flag(
                    "conservation",
                    hop.time,
                    "hop leaves node %d, expected %d"
                    % (hop.node, expected_from),
                )
                return
            to = int(hop.data["to"])
            if to != self._succ[hop.node]:
                flag(
                    "conservation",
                    hop.time,
                    "hop %d -> %d is not one snoop segment "
                    "(successor of %d is %d)"
                    % (hop.node, to, hop.node, self._succ[hop.node]),
                )
                return
            if hop.time < issue.time:
                flag(
                    "time",
                    hop.time,
                    "hop departs at %d before issue at %d"
                    % (hop.time, issue.time),
                )
            expected_from = to
        if expected_from != issue.node:
            flag(
                "conservation",
                hops[-1].time,
                "walk ended at node %d, not the requester %d"
                % (expected_from, issue.node),
            )

    def _check_recombination(self, events: List[TraceEvent], flag) -> None:
        awaiting: Optional[TraceEvent] = None
        for event in events:
            if (
                event.type is EventType.SNOOP
                and event.data.get("primitive") == "snoop_then_forward"
            ):
                awaiting = event
            elif event.type is EventType.HOP and awaiting is not None:
                if event.data.get("mode") != "combined":
                    flag(
                        "recombination",
                        event.time,
                        "snoop_then_forward at node %d forwarded a %s "
                        "message (must recombine into a single "
                        "combined R/R)"
                        % (awaiting.node, event.data.get("mode")),
                    )
                awaiting = None

    def _check_supply(self, events: List[TraceEvent], flag) -> None:
        supplies = [e for e in events if e.type is EventType.SUPPLY]
        if len(supplies) > 1:
            flag(
                "supply",
                supplies[1].time,
                "%d suppliers answered one request (single-supplier "
                "invariant)" % len(supplies),
            )
            return
        if not supplies:
            return
        supply = supplies[0]
        if supply.data.get("form") != "combined":
            return  # reply-only supply: downstream snoops continue
        index = events.index(supply)
        for event in events[index + 1:]:
            if event.type in (EventType.SNOOP, EventType.PREDICTOR):
                flag(
                    "supply",
                    event.time,
                    "%s after a combined-form supply (a satisfied "
                    "combined R/R induces no snoops)"
                    % event.type.value,
                )

    def _check_predictions(self, events: List[TraceEvent], flag) -> None:
        for event in events:
            if event.type is not EventType.PREDICTOR:
                continue
            kind = event.data.get("kind")
            prediction = bool(event.data.get("prediction"))
            truth = bool(event.data.get("truth"))
            if (
                prediction
                and not truth
                and kind in _NO_FALSE_POSITIVE_KINDS
            ):
                flag(
                    "predictor",
                    event.time,
                    "%s predictor false positive at node %d"
                    % (kind, event.node),
                )
            if (
                truth
                and not prediction
                and kind in _NO_FALSE_NEGATIVE_KINDS
            ):
                flag(
                    "predictor",
                    event.time,
                    "%s predictor false negative at node %d"
                    % (kind, event.node),
                )

    def _check_policy(self, events: List[TraceEvent], flag) -> None:
        """Policy-guarantee checks driven by the decision table (the
        generalization of the predictor-guarantee rules): every snoop
        decision the trace records must be one the table can emit."""
        table = self._table
        if table is not None:
            # Pair each predictor lookup with the decision that
            # follows it at the same node: the next SNOOP (the node
            # snooped) or the next HOP (the node forwarded).  Other
            # event types - MSHR joins, supplies landing from earlier
            # nodes - may interleave and are skipped.
            pending: Optional[TraceEvent] = None
            for event in events:
                if event.type is EventType.PREDICTOR:
                    pending = event
                    continue
                if pending is None:
                    continue
                if event.type is EventType.SNOOP:
                    if event.data.get("kind") == "read":
                        self._check_read_decision(pending, event, flag)
                    pending = None
                elif event.type is EventType.HOP:
                    prediction = bool(pending.data.get("prediction"))
                    allowed = (
                        self._allowed_true
                        if prediction
                        else self._allowed_false
                    )
                    if Primitive.FORWARD not in allowed:
                        flag(
                            "policy",
                            event.time,
                            "node %d forwarded without snooping on a "
                            "%s prediction, but the policy mandates a "
                            "snoop (%s)"
                            % (
                                pending.node,
                                "positive" if prediction else "negative",
                                "/".join(p.value for p in allowed),
                            ),
                        )
                    pending = None
            # Predictor-less policies (prediction implicitly True):
            # every read snoop must still use a primitive from the
            # table's positive-prediction alphabet.
            alphabet = set(self._allowed_true) | set(self._allowed_false)
            for event in events:
                if (
                    event.type is EventType.SNOOP
                    and event.data.get("kind") == "read"
                ):
                    primitive = event.data.get("primitive")
                    if primitive not in tuple(p.value for p in alphabet):
                        flag(
                            "policy",
                            event.time,
                            "read snoop used %r at node %d, outside the "
                            "policy alphabet {%s}"
                            % (
                                primitive,
                                event.node,
                                ", ".join(
                                    sorted(p.value for p in alphabet)
                                ),
                            ),
                        )
        if self._decouple_writes is not None:
            expected = (
                Primitive.FORWARD_THEN_SNOOP.value
                if self._decouple_writes
                else Primitive.SNOOP_THEN_FORWARD.value
            )
            for event in events:
                if (
                    event.type is EventType.SNOOP
                    and event.data.get("kind") == "write"
                    and event.data.get("primitive") != expected
                ):
                    flag(
                        "policy",
                        event.time,
                        "write snoop used %r at node %d, but the policy "
                        "declares %s write snoops (%s)"
                        % (
                            event.data.get("primitive"),
                            event.node,
                            "decoupled"
                            if self._decouple_writes
                            else "coupled",
                            expected,
                        ),
                    )

    def _check_read_decision(
        self, lookup: TraceEvent, snoop: TraceEvent, flag
    ) -> None:
        prediction = bool(lookup.data.get("prediction"))
        allowed = self._allowed_true if prediction else self._allowed_false
        allowed_values = tuple(
            p.value for p in allowed if p is not Primitive.FORWARD
        )
        primitive = snoop.data.get("primitive")
        if not allowed_values:
            flag(
                "policy",
                snoop.time,
                "node %d snooped on a %s prediction, but every "
                "reachable policy row forwards"
                % (snoop.node, "positive" if prediction else "negative"),
            )
        elif primitive not in allowed_values:
            flag(
                "policy",
                snoop.time,
                "read snoop used %r at node %d on a %s prediction; "
                "the policy allows {%s}"
                % (
                    primitive,
                    snoop.node,
                    "positive" if prediction else "negative",
                    ", ".join(allowed_values),
                ),
            )

    def _check_mshr_fairness(self, events: List[TraceEvent], flag) -> None:
        """Waiters queued behind this transaction must be released at
        retirement in exactly their wait order (the ROADMAP's
        MSHR-waiter fairness rider)."""
        waits: List[Tuple[int, int]] = []
        reissues: List[Tuple[int, int]] = []
        for event in events:
            if event.type is not EventType.MSHR:
                continue
            phase = event.data.get("phase")
            record = (
                int(event.data.get("core", -1)),
                int(event.data.get("position", -1)),
            )
            if phase == "wait":
                waits.append(record)
            elif phase == "reissue":
                reissues.append(record)
            else:
                flag(
                    "mshr",
                    event.time,
                    "unknown mshr phase %r" % phase,
                )
        if not waits and not reissues:
            return
        anchor = events[-1].time
        if [w[0] for w in waits] != [r[0] for r in reissues]:
            flag(
                "mshr",
                anchor,
                "waiters joined as cores %s but were released as %s "
                "(must retire in wait order)"
                % ([w[0] for w in waits], [r[0] for r in reissues]),
            )
        for queue, label in ((waits, "wait"), (reissues, "reissue")):
            positions = [p for _, p in queue]
            if positions != list(range(len(queue))):
                flag(
                    "mshr",
                    anchor,
                    "%s positions %s are not the contiguous queue "
                    "order %s"
                    % (label, positions, list(range(len(queue)))),
                )

    def _check_serialization(
        self, events: List[TraceEvent]
    ) -> List[Violation]:
        """Whole-trace sweep: same-address transactions serialize.

        Replays issues/retirements in emission order and checks the
        collision rule the ring enforces (Section 2.1.4): a new
        transaction must be squashed exactly when a non-squashed
        write-involving transaction on the same line is in flight, and
        concurrent non-squashed *reads* are the only legal overlap.
        """
        out: List[Violation] = []
        # address -> {txn_id: (is_write, squashed)} for in-flight txns
        active: Dict[int, Dict[int, Tuple[bool, bool]]] = {}
        for event in events:
            if event.type is EventType.ISSUE:
                address = event.address
                is_write = event.data.get("kind") == "write"
                squashed = bool(event.data.get("squashed", False))
                inflight = active.setdefault(address, {})
                conflict = any(
                    not other_squashed and (is_write or other_write)
                    for other_write, other_squashed in inflight.values()
                )
                if conflict and not squashed:
                    out.append(
                        Violation(
                            event.txn,
                            "serialization",
                            event.time,
                            "non-squashed %s issued on line %#x with a "
                            "conflicting write-involving transaction "
                            "in flight"
                            % (
                                "write" if is_write else "read",
                                address,
                            ),
                        )
                    )
                elif squashed and not conflict:
                    out.append(
                        Violation(
                            event.txn,
                            "serialization",
                            event.time,
                            "transaction issued squashed on line %#x "
                            "with no conflicting transaction in flight"
                            % address,
                        )
                    )
                inflight[event.txn] = (is_write, squashed)
            elif event.type is EventType.RETIRE:
                inflight = active.get(event.address)
                if inflight is not None:
                    inflight.pop(event.txn, None)
                    if not inflight:
                        del active[event.address]
        return out

    def _check_squash_discipline(
        self, squashed: bool, events: List[TraceEvent], flag
    ) -> None:
        counts = {
            kind: sum(1 for e in events if e.type is kind)
            for kind in (
                EventType.SNOOP,
                EventType.SUPPLY,
                EventType.FILL,
                EventType.PREDICTOR,
                EventType.SQUASH,
                EventType.RETRY,
            )
        }
        last = events[-1]
        if squashed:
            for kind in (
                EventType.SNOOP,
                EventType.SUPPLY,
                EventType.FILL,
                EventType.PREDICTOR,
            ):
                if counts[kind]:
                    flag(
                        "squash",
                        last.time,
                        "squashed message performed %d %s event(s) "
                        "(serialization-only circuit)"
                        % (counts[kind], kind.value),
                    )
            if counts[EventType.SQUASH] != 1:
                flag(
                    "squash",
                    last.time,
                    "squashed transaction emitted %d squash markers, "
                    "expected 1" % counts[EventType.SQUASH],
                )
            if counts[EventType.RETRY] != 1:
                flag(
                    "squash",
                    last.time,
                    "squashed transaction retried %d times, expected 1"
                    % counts[EventType.RETRY],
                )
        else:
            if counts[EventType.SQUASH]:
                flag(
                    "squash",
                    last.time,
                    "non-squashed transaction emitted a squash marker",
                )
            if counts[EventType.RETRY]:
                flag(
                    "squash",
                    last.time,
                    "non-squashed transaction retried",
                )
            if counts[EventType.FILL] != 1:
                flag(
                    "fill",
                    last.time,
                    "transaction filled the requester cache %d times, "
                    "expected exactly 1" % counts[EventType.FILL],
                )

"""Per-transaction lifecycle validators for emitted traces.

Interface contract
==================

:class:`TraceAuditor` replays a trace (a sequence of
:class:`~repro.obs.trace.TraceEvent`, in emission order) through one
finite-state validator per transaction and returns every
:class:`Violation` found.  It is strictly stronger than the end-state
checker (``RingMultiprocessor._check_line_invariants`` snapshots line
states after the fact); the auditor checks the *mechanism*:

* **Lifecycle** - every issued transaction retires exactly once, the
  issue comes first, and only a retry may follow retirement.
* **Ring conservation** (Table 2) - the request/combined form of every
  message crosses exactly ``num_cmps`` segments, hop-by-hop around the
  ring from the requester back to the requester, with no teleports.
* **Recombination** - a ``snoop_then_forward`` snoop always forwards a
  single Combined R/R: the transaction's next hop must be combined
  (the primitive never emits a separate reply).
* **Supply** - at most one supplier answers; after a combined-form
  supply the message is a reply and induces no further snoops or
  predictor lookups.
* **Predictor guarantees** - Subset/Exact predictions are never false
  positives, Superset predictions are never false negatives,
  Exact/Perfect are never wrong at all (Section 4.3).
* **Squash discipline** - a squashed message circulates for
  serialization only: no snoops, no supply, no fill, exactly one
  squash marker and one retry; a non-squashed transaction fills the
  requester cache exactly once and never retries.
* **Time sanity** - hops and retirement never precede the issue, and
  retirement never precedes the last hop.

The auditor is pure (no simulator imports beyond the event types), so
it runs equally on live ``InMemorySink`` events and on traces read
back from JSONL files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.trace import EventType, TraceEvent
from repro.ring.topology import ring_successors

#: Predictor kinds that may never predict a supplier that is absent.
_NO_FALSE_POSITIVE_KINDS = ("subset", "exact", "perfect")
#: Predictor kinds that may never miss a supplier that is present.
_NO_FALSE_NEGATIVE_KINDS = ("superset", "exact", "perfect")


@dataclass(frozen=True)
class Violation:
    """One broken lifecycle rule, anchored to a transaction."""

    txn: int
    rule: str
    time: int
    message: str

    def __str__(self) -> str:
        return "txn %d @ %d [%s]: %s" % (
            self.txn,
            self.time,
            self.rule,
            self.message,
        )


class TraceAuditor:
    """Validate a trace against the transaction lifecycle FSM.

    Args:
        num_cmps: node count of the audited machine.
        successors: the topology's successor cycle (``successors[i]``
            is the node one snoop segment downstream of ``i``), used
            by the per-segment conservation check.  Defaults to the
            single embedded ring; traced runs on other topologies
            persist their cycle in the trace metadata
            (``meta["successors"]``) for replayed audits.
    """

    def __init__(
        self,
        num_cmps: int,
        successors: Optional[Sequence[int]] = None,
    ) -> None:
        if num_cmps < 2:
            raise ValueError("need at least 2 CMPs for a ring")
        self.num_cmps = num_cmps
        if successors is None:
            successors = ring_successors(num_cmps)
        self._succ = [int(node) for node in successors]
        if sorted(self._succ) != list(range(num_cmps)):
            raise ValueError(
                "successor table is not a permutation of %d nodes"
                % num_cmps
            )

    def audit(self, events: Iterable[TraceEvent]) -> List[Violation]:
        """All violations in ``events`` (empty list = clean trace)."""
        by_txn: Dict[int, List[TraceEvent]] = {}
        for event in events:
            if event.txn < 0:
                continue  # machine events (e.g. downgrades): no FSM
            by_txn.setdefault(event.txn, []).append(event)
        violations: List[Violation] = []
        for txn_id in sorted(by_txn):
            violations.extend(self._audit_txn(txn_id, by_txn[txn_id]))
        return violations

    # ------------------------------------------------------------------
    # One transaction

    def _audit_txn(
        self, txn_id: int, events: List[TraceEvent]
    ) -> List[Violation]:
        out: List[Violation] = []

        def flag(rule: str, time: int, message: str) -> None:
            out.append(Violation(txn_id, rule, time, message))

        issue = self._check_lifecycle(txn_id, events, flag)
        if issue is None:
            return out
        squashed = bool(issue.data.get("squashed", False))
        hops = [e for e in events if e.type is EventType.HOP]
        self._check_hops(issue, hops, flag)
        self._check_recombination(events, flag)
        self._check_supply(events, flag)
        self._check_predictions(events, flag)
        self._check_squash_discipline(squashed, events, flag)
        return out

    def _check_lifecycle(
        self, txn_id: int, events: List[TraceEvent], flag
    ) -> Optional[TraceEvent]:
        issues = [e for e in events if e.type is EventType.ISSUE]
        retires = [e for e in events if e.type is EventType.RETIRE]
        first = events[0]
        if len(issues) != 1:
            flag(
                "lifecycle",
                first.time,
                "expected exactly 1 issue, saw %d" % len(issues),
            )
            return None
        if first.type is not EventType.ISSUE:
            flag(
                "lifecycle",
                first.time,
                "first event is %s, not issue" % first.type.value,
            )
            return None
        if len(retires) != 1:
            flag(
                "lifecycle",
                events[-1].time,
                "expected exactly 1 retire, saw %d" % len(retires),
            )
            return None
        retire = retires[0]
        after_retire = events[events.index(retire) + 1:]
        for event in after_retire:
            if event.type is not EventType.RETRY:
                flag(
                    "lifecycle",
                    event.time,
                    "%s emitted after retirement" % event.type.value,
                )
        if retire.time < first.time:
            flag(
                "time",
                retire.time,
                "retired at %d before issue at %d"
                % (retire.time, first.time),
            )
        return issues[0]

    def _check_hops(
        self, issue: TraceEvent, hops: List[TraceEvent], flag
    ) -> None:
        n = self.num_cmps
        if len(hops) != n:
            flag(
                "conservation",
                issue.time,
                "request crossed %d segments, ring has %d"
                % (len(hops), n),
            )
            return
        expected_from = issue.node
        for hop in hops:
            if hop.node != expected_from:
                flag(
                    "conservation",
                    hop.time,
                    "hop leaves node %d, expected %d"
                    % (hop.node, expected_from),
                )
                return
            to = int(hop.data["to"])
            if to != self._succ[hop.node]:
                flag(
                    "conservation",
                    hop.time,
                    "hop %d -> %d is not one snoop segment "
                    "(successor of %d is %d)"
                    % (hop.node, to, hop.node, self._succ[hop.node]),
                )
                return
            if hop.time < issue.time:
                flag(
                    "time",
                    hop.time,
                    "hop departs at %d before issue at %d"
                    % (hop.time, issue.time),
                )
            expected_from = to
        if expected_from != issue.node:
            flag(
                "conservation",
                hops[-1].time,
                "walk ended at node %d, not the requester %d"
                % (expected_from, issue.node),
            )

    def _check_recombination(self, events: List[TraceEvent], flag) -> None:
        awaiting: Optional[TraceEvent] = None
        for event in events:
            if (
                event.type is EventType.SNOOP
                and event.data.get("primitive") == "snoop_then_forward"
            ):
                awaiting = event
            elif event.type is EventType.HOP and awaiting is not None:
                if event.data.get("mode") != "combined":
                    flag(
                        "recombination",
                        event.time,
                        "snoop_then_forward at node %d forwarded a %s "
                        "message (must recombine into a single "
                        "combined R/R)"
                        % (awaiting.node, event.data.get("mode")),
                    )
                awaiting = None

    def _check_supply(self, events: List[TraceEvent], flag) -> None:
        supplies = [e for e in events if e.type is EventType.SUPPLY]
        if len(supplies) > 1:
            flag(
                "supply",
                supplies[1].time,
                "%d suppliers answered one request (single-supplier "
                "invariant)" % len(supplies),
            )
            return
        if not supplies:
            return
        supply = supplies[0]
        if supply.data.get("form") != "combined":
            return  # reply-only supply: downstream snoops continue
        index = events.index(supply)
        for event in events[index + 1:]:
            if event.type in (EventType.SNOOP, EventType.PREDICTOR):
                flag(
                    "supply",
                    event.time,
                    "%s after a combined-form supply (a satisfied "
                    "combined R/R induces no snoops)"
                    % event.type.value,
                )

    def _check_predictions(self, events: List[TraceEvent], flag) -> None:
        for event in events:
            if event.type is not EventType.PREDICTOR:
                continue
            kind = event.data.get("kind")
            prediction = bool(event.data.get("prediction"))
            truth = bool(event.data.get("truth"))
            if (
                prediction
                and not truth
                and kind in _NO_FALSE_POSITIVE_KINDS
            ):
                flag(
                    "predictor",
                    event.time,
                    "%s predictor false positive at node %d"
                    % (kind, event.node),
                )
            if (
                truth
                and not prediction
                and kind in _NO_FALSE_NEGATIVE_KINDS
            ):
                flag(
                    "predictor",
                    event.time,
                    "%s predictor false negative at node %d"
                    % (kind, event.node),
                )

    def _check_squash_discipline(
        self, squashed: bool, events: List[TraceEvent], flag
    ) -> None:
        counts = {
            kind: sum(1 for e in events if e.type is kind)
            for kind in (
                EventType.SNOOP,
                EventType.SUPPLY,
                EventType.FILL,
                EventType.PREDICTOR,
                EventType.SQUASH,
                EventType.RETRY,
            )
        }
        last = events[-1]
        if squashed:
            for kind in (
                EventType.SNOOP,
                EventType.SUPPLY,
                EventType.FILL,
                EventType.PREDICTOR,
            ):
                if counts[kind]:
                    flag(
                        "squash",
                        last.time,
                        "squashed message performed %d %s event(s) "
                        "(serialization-only circuit)"
                        % (counts[kind], kind.value),
                    )
            if counts[EventType.SQUASH] != 1:
                flag(
                    "squash",
                    last.time,
                    "squashed transaction emitted %d squash markers, "
                    "expected 1" % counts[EventType.SQUASH],
                )
            if counts[EventType.RETRY] != 1:
                flag(
                    "squash",
                    last.time,
                    "squashed transaction retried %d times, expected 1"
                    % counts[EventType.RETRY],
                )
        else:
            if counts[EventType.SQUASH]:
                flag(
                    "squash",
                    last.time,
                    "non-squashed transaction emitted a squash marker",
                )
            if counts[EventType.RETRY]:
                flag(
                    "squash",
                    last.time,
                    "non-squashed transaction retried",
                )
            if counts[EventType.FILL] != 1:
                flag(
                    "fill",
                    last.time,
                    "transaction filled the requester cache %d times, "
                    "expected exactly 1" % counts[EventType.FILL],
                )

"""Typed lifecycle events and the sinks that collect them.

Interface contract
==================

The simulator subsystems (:class:`~repro.sim.transactions.TransactionManager`,
:class:`~repro.sim.walker.RingWalker`,
:class:`~repro.sim.datapath.DataPathModel`) each hold an optional
``trace`` reference; when it is not ``None`` they call
:meth:`TraceSink.emit` with one :class:`TraceEvent` per lifecycle
point.  The event vocabulary (:class:`EventType`) mirrors the
transaction life cycle of the paper's Section 4: issue, per-hop ring
crossings, predictor lookups, Table 2 snoops, supplier data supply,
squash/retry, cache fill, Exact-predictor downgrade, and retirement.

Every event is stamped with the simulated time, the CMP node it
happened at, the line address, and the owning transaction id
(``txn = -1`` for machine events outside any transaction, e.g.
replacement-driven downgrades).  The ``data`` mapping carries the
per-type payload documented in ``docs/observability.md``; the audit
validators (:mod:`repro.obs.audit`) key off it.

Sinks are resolved by name through the component registry (kind
``"sink"``), so ``TraceConfig.sink`` in a machine config selects one
and plugins can add more (entry-point group ``flexsnoop.sinks``).

Performance contract: with tracing off the subsystems never construct
a :class:`TraceEvent`; the only residual cost is the ``is not None``
guard, which the bench gate bounds at <=3%.
"""

from __future__ import annotations

import enum
import json
from typing import IO, Any, List, Mapping, NamedTuple, Optional


class EventType(enum.Enum):
    """Lifecycle points a simulation run can emit."""

    #: A ring transaction was issued (data: kind, core, squashed).
    ISSUE = "issue"
    #: The request/combined form crossed one ring segment
    #: (data: to, arrival, mode, satisfied, squashed).
    HOP = "hop"
    #: A Supplier Predictor was consulted on a read walk
    #: (data: kind, prediction, truth).
    PREDICTOR = "predictor"
    #: A Table 2 snoop operation was performed
    #: (data: kind, primitive, snoop_done, supplied).
    SNOOP = "snoop"
    #: A supplier cache answered the request
    #: (data: kind, form, version, data_arrival).
    SUPPLY = "supply"
    #: The squashed message finished its serialization-only circuit.
    SQUASH = "squash"
    #: A squashed transaction re-issued after its back-off.
    RETRY = "retry"
    #: MSHR waiter activity behind an in-flight transaction: a
    #: same-CMP core joined the wait queue, or a waiter was released
    #: at retirement (data: phase ("wait" | "reissue"), core,
    #: position).  ``txn`` is the blocking transaction.
    MSHR = "mshr"
    #: The requester cache installed the line
    #: (data: source, version).
    FILL = "fill"
    #: The Exact predictor downgraded a line on conflict eviction
    #: (data: writeback).
    DOWNGRADE = "downgrade"
    #: The transaction retired (data: kind, squashed).
    RETIRE = "retire"


class TraceEvent(NamedTuple):
    """One emitted lifecycle event.

    A NamedTuple rather than a dataclass: emission sits on the hot
    path when tracing is on, and tuple construction is the cheapest
    structured record CPython offers.
    """

    time: int
    type: EventType
    txn: int
    node: int
    address: int
    data: Mapping[str, Any]


#: Transaction id used for machine events outside any transaction.
NO_TXN = -1


class TraceSink:
    """Base sink: receives every emitted :class:`TraceEvent`.

    Subclasses override :meth:`emit`; :meth:`close` is called once by
    the owner when the run is over (file-backed sinks flush here).
    """

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; idempotent."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class InMemorySink(TraceSink):
    """Collects events in a list (the default sink).

    The whole trace of a golden-scale run is a few hundred thousand
    tuples, well within memory; for very long runs prefer
    :class:`JsonlStreamSink`.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)


class JsonlStreamSink(TraceSink):
    """Streams events straight to a JSONL file as they are emitted.

    Constant memory; the file layout matches
    :func:`repro.obs.jsonl.write_trace` (an optional meta header line,
    then one event object per line), so :func:`repro.obs.jsonl.read_trace`
    reads it back.  ``events_emitted`` counts what went to disk, so
    callers report event totals without re-reading the file.
    """

    def __init__(
        self,
        path: str,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.path = path
        self.events_emitted = 0
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        if meta is not None:
            self._handle.write(
                json.dumps({"meta": dict(meta)}, sort_keys=True) + "\n"
            )

    def emit(self, event: TraceEvent) -> None:
        from repro.obs.jsonl import event_to_json

        handle = self._handle
        if handle is None:
            raise ValueError("sink is closed")
        handle.write(json.dumps(event_to_json(event), sort_keys=True) + "\n")
        self.events_emitted += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def resolve_sink(
    spec: str, meta: Optional[Mapping[str, Any]] = None
) -> TraceSink:
    """Resolve a sink *spec* to a sink instance.

    A spec is a registry sink name with an optional colon-separated
    argument passed to the factory: ``"memory"`` builds an
    :class:`InMemorySink`; ``"jsonl:/tmp/run.jsonl"`` builds a
    :class:`JsonlStreamSink` streaming to that path.  ``meta`` is
    forwarded to factories that accept it (file-backed sinks write it
    as their header line) and silently dropped for those that do not.
    """
    from repro.registry import REGISTRY

    name, _, arg = str(spec).partition(":")
    args = (arg,) if arg else ()
    if meta is not None:
        try:
            return REGISTRY.create("sink", name, *args, meta=meta)
        except TypeError:
            pass
    try:
        return REGISTRY.create("sink", name, *args)
    except TypeError as exc:
        raise ValueError("bad sink spec %r: %s" % (spec, exc)) from exc


def _register_sinks() -> None:
    """Expose the built-in sinks through the component registry, the
    same name-resolution path algorithms and workloads use."""
    from repro.registry import REGISTRY

    REGISTRY.register(
        "sink",
        "memory",
        InMemorySink,
        metadata={"description": "collect events in a list"},
    )
    REGISTRY.register(
        "sink",
        "jsonl",
        JsonlStreamSink,
        metadata={"description": "stream events to a JSONL file"},
    )


_register_sinks()

"""Windowed simulated-time metrics sampling.

Aggregate ``RunStats`` counters answer "how much, in total"; the
timeline answers "when".  A :class:`MetricsTimeline` registers a
periodic engine callback (:meth:`~repro.sim.engine.EventEngine.call_every`)
that every ``window`` simulated cycles samples:

* **ring occupancy** - in-flight ring transactions
  (``TransactionManager.inflight()``);
* **snoops and ring requests** issued during the window (deltas of
  the live ``RunStats`` counters), and their ratio;
* **retries** during the window.

Each sample is labeled with the phase (``warmup`` / ``measure``), so a
run's series splits cleanly at the measurement reset.  The sampler
reads counters and mutates no simulator state, and its callbacks stop
rescheduling once it is the only work left in the engine, so enabling
it never changes simulation results (``summary()`` is bit-identical;
only the engine's bookkeeping event counts grow).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, NamedTuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.sim.system import RingMultiprocessor


class TimelineSample(NamedTuple):
    """Counters observed over one sampling window."""

    time: int
    phase: str
    inflight: int
    requests: int
    snoops: int
    retries: int

    @property
    def snoops_per_request(self) -> float:
        return self.snoops / self.requests if self.requests else 0.0


class MetricsTimeline:
    """Periodic sampler over a running :class:`RingMultiprocessor`."""

    def __init__(self, system: "RingMultiprocessor", window: int) -> None:
        if window <= 0:
            raise ValueError("sample window must be positive")
        self.system = system
        self.window = window
        self.samples: List[TimelineSample] = []
        self._last_requests = 0
        self._last_snoops = 0
        self._last_retries = 0

    def start(self) -> None:
        """Begin sampling (call before ``engine.run``)."""
        self.system.engine.call_every(self.window, self._sample)

    def _sample(self) -> None:
        system = self.system
        stats = system.stats  # rebound at the warmup reset
        requests = (
            stats.read_ring_transactions + stats.write_ring_transactions
        )
        snoops = stats.read_snoops + stats.write_snoops
        retries = stats.retries
        if requests < self._last_requests or snoops < self._last_snoops:
            # The warmup reset replaced the stats object: cumulative
            # counters restarted from zero mid-window.
            self._last_requests = 0
            self._last_snoops = 0
            self._last_retries = 0
        self.samples.append(
            TimelineSample(
                time=system.engine.now,
                phase="warmup" if system.warmup.in_warmup else "measure",
                inflight=system.txns.inflight(),
                requests=requests - self._last_requests,
                snoops=snoops - self._last_snoops,
                retries=retries - self._last_retries,
            )
        )
        self._last_requests = requests
        self._last_snoops = snoops
        self._last_retries = retries

    # ------------------------------------------------------------------
    # Presentation

    def render(self) -> str:
        """Fixed-width table of every sample (one row per window)."""
        if not self.samples:
            return "(no samples)"
        lines = [
            "%12s %-8s %9s %9s %8s %8s %12s"
            % (
                "time",
                "phase",
                "inflight",
                "requests",
                "snoops",
                "retries",
                "snoops/req",
            )
        ]
        for sample in self.samples:
            lines.append(
                "%12d %-8s %9d %9d %8d %8d %12.2f"
                % (
                    sample.time,
                    sample.phase,
                    sample.inflight,
                    sample.requests,
                    sample.snoops,
                    sample.retries,
                    sample.snoops_per_request,
                )
            )
        return "\n".join(lines)

"""Windowed simulated-time metrics sampling.

Aggregate ``RunStats`` counters answer "how much, in total"; the
timeline answers "when".  A :class:`MetricsTimeline` registers a
periodic engine callback (:meth:`~repro.sim.engine.EventEngine.call_every`)
that every ``window`` simulated cycles samples:

* **ring occupancy** - in-flight ring transactions
  (``TransactionManager.inflight()``);
* **snoops and ring requests** issued during the window (deltas of
  the live ``RunStats`` counters), and their ratio;
* **retries** during the window;
* **link utilization** - the fraction of physical-link capacity
  booked during the window, from the walker's cumulative link
  reservation cycles (``_link_free`` bookings); 0.0 whenever link
  contention modeling is off;
* **snoop-port queue depth** - mean pending snoops per CMP port at
  the sample instant, from the walker's ``_snoop_port_free`` state;
  0.0 whenever port serialization is off.

Each sample is labeled with the phase (``warmup`` / ``measure``), so a
run's series splits cleanly at the measurement reset.  The sampler
reads counters and mutates no simulator state, and its callbacks stop
rescheduling once it is the only work left in the engine, so enabling
it never changes simulation results (``summary()`` is bit-identical;
only the engine's bookkeeping event counts grow).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, NamedTuple, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.sim.system import RingMultiprocessor
    from repro.sim.walker import RingWalker


class TimelineSample(NamedTuple):
    """Counters observed over one sampling window."""

    time: int
    phase: str
    inflight: int
    requests: int
    snoops: int
    retries: int
    #: Fraction of physical-link capacity reserved during the window
    #: (0.0 when link contention modeling is off).
    link_util: float = 0.0
    #: Mean snoop-port queue depth (pending snoops per CMP) at the
    #: sample instant (0.0 when port serialization is off).
    port_queue: float = 0.0

    @property
    def snoops_per_request(self) -> float:
        return self.snoops / self.requests if self.requests else 0.0


class MetricsTimeline:
    """Periodic sampler over a running :class:`RingMultiprocessor`."""

    def __init__(
        self,
        system: "RingMultiprocessor",
        window: int,
        walker: Optional["RingWalker"] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("sample window must be positive")
        self.system = system
        self.window = window
        self.samples: List[TimelineSample] = []
        self._last_requests = 0
        self._last_snoops = 0
        self._last_retries = 0
        # Occupancy channels read the walker's contention state; the
        # facade wires its walker in, other cores may pass None (the
        # channels then stay at 0.0).
        self._walker = (
            walker if walker is not None else getattr(system, "walker", None)
        )
        self._last_link_busy = 0

    def start(self) -> None:
        """Begin sampling (call before ``engine.run``)."""
        self.system.engine.call_every(self.window, self._sample)

    def _sample(self) -> None:
        system = self.system
        stats = system.stats  # rebound at the warmup reset
        now = system.engine.now
        requests = (
            stats.read_ring_transactions + stats.write_ring_transactions
        )
        snoops = stats.read_snoops + stats.write_snoops
        retries = stats.retries
        if requests < self._last_requests or snoops < self._last_snoops:
            # The warmup reset replaced the stats object: cumulative
            # counters restarted from zero mid-window.
            self._last_requests = 0
            self._last_snoops = 0
            self._last_retries = 0
        link_util = 0.0
        port_queue = 0.0
        walker = self._walker
        if walker is not None:
            link_busy = walker.link_busy_cycles
            if walker.total_links:
                link_util = (link_busy - self._last_link_busy) / (
                    self.window * walker.total_links
                )
            self._last_link_busy = link_busy
            port_queue = walker.snoop_port_backlog(now)
        self.samples.append(
            TimelineSample(
                time=now,
                phase="warmup" if system.warmup.in_warmup else "measure",
                inflight=system.txns.inflight(),
                requests=requests - self._last_requests,
                snoops=snoops - self._last_snoops,
                retries=retries - self._last_retries,
                link_util=link_util,
                port_queue=port_queue,
            )
        )
        self._last_requests = requests
        self._last_snoops = snoops
        self._last_retries = retries

    # ------------------------------------------------------------------
    # Presentation

    def render(self) -> str:
        """Fixed-width table of every sample (one row per window)."""
        from repro.obs.render import render_samples

        return render_samples(self.samples)

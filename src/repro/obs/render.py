"""Filtering and human-readable rendering of run traces.

``flexsnoop trace show`` lands here: filter a trace by address,
transaction id and/or node, then render one indented timeline block
per transaction (issue header, then each lifecycle event with its
simulated time, node and payload), followed by any machine events
(downgrades) that match the filter.  :func:`render_samples` is the
shared table renderer for :class:`~repro.obs.timeline.MetricsTimeline`
sample series, including the loaded-regime occupancy channels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.trace import EventType, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.timeline import TimelineSample


def filter_events(
    events: List[TraceEvent],
    address: Optional[int] = None,
    txn: Optional[int] = None,
    node: Optional[int] = None,
) -> List[TraceEvent]:
    """Events matching every given criterion, in original order.

    ``node`` keeps whole transactions that touched the node (a hop
    timeline with holes is useless), plus matching machine events.
    """
    out = events
    if address is not None:
        out = [e for e in out if e.address == address]
    if txn is not None:
        out = [e for e in out if e.txn == txn]
    if node is not None:
        touched = {e.txn for e in out if e.txn >= 0 and e.node == node}
        out = [
            e
            for e in out
            if (e.txn in touched) or (e.txn < 0 and e.node == node)
        ]
    return out


def render_samples(samples: Sequence["TimelineSample"]) -> str:
    """Fixed-width table of a metrics-timeline series, one row per
    sampling window.

    The occupancy columns read 0.0 unless the run modeled contention:
    ``linkutil`` is the fraction of physical-link capacity booked
    during the window (reservations are charged when made, so a
    heavily backlogged window can exceed 1.0), ``portq`` the mean
    pending snoops per CMP port at the sample instant.
    """
    if not samples:
        return "(no samples)"
    lines = [
        "%12s %-8s %9s %9s %8s %8s %12s %9s %7s"
        % (
            "time",
            "phase",
            "inflight",
            "requests",
            "snoops",
            "retries",
            "snoops/req",
            "linkutil",
            "portq",
        )
    ]
    for sample in samples:
        lines.append(
            "%12d %-8s %9d %9d %8d %8d %12.2f %9.3f %7.2f"
            % (
                sample.time,
                sample.phase,
                sample.inflight,
                sample.requests,
                sample.snoops,
                sample.retries,
                sample.snoops_per_request,
                sample.link_util,
                sample.port_queue,
            )
        )
    return "\n".join(lines)


def _payload(data: Mapping[str, Any]) -> str:
    return " ".join(
        "%s=%s" % (key, value) for key, value in sorted(data.items())
    )


def render_timeline(
    events: List[TraceEvent],
    limit: Optional[int] = None,
) -> str:
    """One text block per transaction, oldest first.

    ``limit`` caps the number of transactions rendered (the trailing
    line says how many were elided).
    """
    by_txn: Dict[int, List[TraceEvent]] = {}
    machine: List[TraceEvent] = []
    for event in events:
        if event.txn < 0:
            machine.append(event)
        else:
            by_txn.setdefault(event.txn, []).append(event)

    txn_ids = sorted(by_txn)
    elided = 0
    if limit is not None and limit >= 0 and len(txn_ids) > limit:
        elided = len(txn_ids) - limit
        txn_ids = txn_ids[:limit]

    lines: List[str] = []
    for txn_id in txn_ids:
        group = by_txn[txn_id]
        first = group[0]
        issue = next(
            (e for e in group if e.type is EventType.ISSUE), None
        )
        kind = issue.data.get("kind", "?") if issue else "?"
        lines.append(
            "txn %d  %s %#x  (issued @ %d from node %d)"
            % (txn_id, kind, first.address, first.time, first.node)
        )
        for event in group:
            lines.append(
                "  %10d  node %-3d %-10s %s"
                % (
                    event.time,
                    event.node,
                    event.type.value,
                    _payload(event.data),
                )
            )
    if machine:
        lines.append("machine events:")
        for event in machine:
            lines.append(
                "  %10d  node %-3d %-10s addr=%#x %s"
                % (
                    event.time,
                    event.node,
                    event.type.value,
                    event.address,
                    _payload(event.data),
                )
            )
    if elided:
        lines.append("... %d more transaction(s) elided (--limit)" % elided)
    if not lines:
        return "(no events match the filter)"
    return "\n".join(lines)

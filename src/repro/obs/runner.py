"""One-call traced simulation runs for the CLI, audits and tests.

:func:`run_traced` is :func:`repro.harness.experiments.run_experiment`
with the observability layer switched on: it resolves the same
(algorithm, workload, predictor, scale, seed) cell through the same
:class:`~repro.harness.parallel.RunSpec` machinery - so a traced run
simulates exactly the machine the harness would - then attaches an
:class:`~repro.obs.trace.InMemorySink` (and, when ``sample_window`` is
set, a metrics timeline) and returns everything bundled as a
:class:`TracedRun`.

Traced runs are never result-cached: the persistent cache stores
``SimulationResult`` objects only, and a trace is cheap to regenerate
deterministically from the spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.config import MachineConfig, TraceConfig
from repro.core.algorithms import build_algorithm
from repro.harness.parallel import RunSpec, _cached_trace
from repro.obs.timeline import TimelineSample
from repro.obs.trace import InMemorySink, TraceEvent
from repro.sim.system import RingMultiprocessor, SimulationResult


@dataclass
class TracedRun:
    """A simulation result plus everything observed along the way."""

    result: SimulationResult
    events: List[TraceEvent]
    samples: List[TimelineSample]
    meta: Dict[str, Any]

    def summary(self) -> Dict[str, float]:
        return self.result.summary()


def run_traced(
    algorithm: str,
    workload: str,
    predictor: Optional[str] = None,
    accesses_per_core: int = 0,
    seed: int = 0,
    warmup_fraction: float = 0.0,
    check_invariants: bool = False,
    sample_window: int = 0,
    config: Optional[MachineConfig] = None,
) -> TracedRun:
    """Run one cell with tracing on and return the full observation.

    Args:
        algorithm: algorithm name (registry kind ``algorithm``).
        workload: workload profile name (0-scale = profile default).
        predictor: named predictor override (Section 5.2 names).
        accesses_per_core: trace length (0 = workload default).
        seed: workload seed override (0 = workload default).
        warmup_fraction: measurement warmup window (events emitted
            during warmup are traced too, phase-tagged by time).
        check_invariants: also enable the simulator's synchronous
            per-line protocol checks (audit mode runs with this on).
        sample_window: simulated cycles between metrics-timeline
            samples (0 = no timeline).
        config: full machine config override, as in
            :func:`~repro.harness.experiments.run_experiment`.
    """
    spec = RunSpec(
        algorithm=algorithm,
        workload=workload,
        predictor=predictor,
        accesses_per_core=accesses_per_core,
        seed=seed,
        warmup_fraction=warmup_fraction,
        config=config,
    )
    trace = _cached_trace(workload, accesses_per_core, seed)
    machine = spec.resolve_config(trace.cores_per_cmp)
    machine = machine.replace(
        tracing=TraceConfig(
            enabled=True,
            sink="memory",
            sample_window=sample_window,
        ),
        check_invariants=machine.check_invariants or check_invariants,
    )
    sink = InMemorySink()
    system = RingMultiprocessor(
        machine,
        build_algorithm(algorithm),
        trace,
        warmup_fraction=warmup_fraction,
        trace_sink=sink,
    )
    result = system.run()
    samples = system.timeline.samples if system.timeline is not None else []
    meta = {
        "algorithm": result.algorithm,
        "workload": result.workload,
        "predictor": predictor,
        "predictor_kind": machine.predictor.kind,
        "num_cmps": machine.num_cmps,
        "cores_per_cmp": machine.cores_per_cmp,
        "accesses_per_core": accesses_per_core,
        "seed": seed,
        "warmup_fraction": warmup_fraction,
        "exec_time": result.exec_time,
        "num_events": len(sink.events),
    }
    return TracedRun(
        result=result, events=sink.events, samples=samples, meta=meta
    )

"""One-call traced simulation runs for the CLI, audits and tests.

:func:`run_traced` is :func:`repro.harness.experiments.run_experiment`
with the observability layer switched on: it resolves the same
(algorithm, workload, predictor, scale, seed) cell through the same
:class:`~repro.harness.parallel.RunSpec` machinery - so a traced run
simulates exactly the machine the harness would - then attaches a
trace sink (resolved from ``sink``, a registry spec such as
``"memory"`` or ``"jsonl:/tmp/run.jsonl"``) and, when
``sample_window`` is set, a metrics timeline, and returns everything
bundled as a :class:`TracedRun`.

With a file-backed sink the events stream to disk as they are
emitted and :attr:`TracedRun.events` stays empty - recording a
million-event run needs constant memory.  ``meta["num_events"]`` is
accurate either way.

Traced runs are never result-cached: the persistent cache stores
``SimulationResult`` objects only, and a trace is cheap to regenerate
deterministically from the spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.config import MachineConfig, TraceConfig
from repro.core.algorithms import build_algorithm
from repro.harness.parallel import RunSpec, _cached_source
from repro.obs.timeline import TimelineSample
from repro.obs.trace import InMemorySink, TraceEvent, resolve_sink
from repro.sim.system import RingMultiprocessor, SimulationResult


@dataclass
class TracedRun:
    """A simulation result plus everything observed along the way.

    ``events`` holds the in-memory event list when the run used the
    default ``"memory"`` sink and is empty for streaming sinks (the
    events are on disk; ``meta["num_events"]`` still counts them).
    """

    result: SimulationResult
    events: List[TraceEvent]
    samples: List[TimelineSample]
    meta: Dict[str, Any]

    def summary(self) -> Dict[str, float]:
        return self.result.summary()


def run_traced(
    algorithm: str,
    workload: str,
    predictor: Optional[str] = None,
    accesses_per_core: int = 0,
    seed: int = 0,
    warmup_fraction: float = 0.0,
    check_invariants: bool = False,
    sample_window: int = 0,
    config: Optional[MachineConfig] = None,
    sink: str = "memory",
    topology: Optional[str] = None,
    num_cmps: int = 0,
    think_scale: float = 1.0,
) -> TracedRun:
    """Run one cell with tracing on and return the full observation.

    Args:
        algorithm: algorithm name (registry kind ``algorithm``).
        workload: workload source spec (registry kind ``workload``
            name, or a scheme spec such as ``file:trace.jsonl``).
        predictor: named predictor override (Section 5.2 names).
        accesses_per_core: trace length (0 = workload default).
        seed: workload seed override (0 = workload default).
        warmup_fraction: measurement warmup window (events emitted
            during warmup are traced too, phase-tagged by time).
        check_invariants: also enable the simulator's synchronous
            per-line protocol checks (audit mode runs with this on).
        sample_window: simulated cycles between metrics-timeline
            samples (0 = no timeline).
        config: full machine config override, as in
            :func:`~repro.harness.experiments.run_experiment`.
        sink: trace sink spec (registry kind ``sink``); file-backed
            sinks receive the run metadata as their header line.
        topology: snoop-topology override (registry kind
            ``topology``), as in
            :func:`~repro.harness.experiments.run_experiment`.
        num_cmps: machine-span override (0 = the workload's own
            geometry).
        think_scale: injection-rate re-pacing of synthetic workloads
            (1.0 = native pacing), as in
            :func:`~repro.harness.experiments.run_experiment`.
    """
    spec = RunSpec(
        algorithm=algorithm,
        workload=workload,
        predictor=predictor,
        accesses_per_core=accesses_per_core,
        seed=seed,
        warmup_fraction=warmup_fraction,
        config=config,
        topology=topology,
        num_cmps=num_cmps,
        think_scale=think_scale,
    )
    source = _cached_source(
        workload, accesses_per_core, seed, num_cmps, think_scale
    )
    machine = spec.resolve_config(source.cores_per_cmp, source.num_cmps)
    machine = machine.replace(
        tracing=TraceConfig(
            enabled=True,
            sink=sink,
            sample_window=sample_window,
        ),
        check_invariants=machine.check_invariants or check_invariants,
    )
    # Resolvable pre-run metadata; the result-dependent fields are
    # appended after the run (a streaming sink has already written its
    # header by then, which is why they are split out).
    meta: Dict[str, Any] = {
        "algorithm": build_algorithm(algorithm).name,
        "workload": source.name,
        "predictor": predictor,
        "predictor_kind": machine.predictor.kind,
        "num_cmps": machine.num_cmps,
        "cores_per_cmp": machine.cores_per_cmp,
        "accesses_per_core": accesses_per_core,
        "seed": seed,
        "warmup_fraction": warmup_fraction,
        "topology": machine.topology.kind,
    }
    if think_scale != 1.0:
        # Keyed only when re-paced so native-pacing trace headers stay
        # byte-identical to pre-axis captures.
        meta["think_scale"] = think_scale
    if machine.topology.kind != "ring":
        # Non-ring walks hop along a different successor cycle; the
        # auditor needs it to check per-segment conservation, so it is
        # persisted with the trace rather than re-derived.
        from repro.ring.topology import build_topology

        meta["successors"] = build_topology(machine).successors()
    trace_sink = resolve_sink(sink, meta=meta)
    system = RingMultiprocessor(
        machine,
        build_algorithm(algorithm),
        source,
        warmup_fraction=warmup_fraction,
        trace_sink=trace_sink,
    )
    try:
        result = system.run()
    finally:
        trace_sink.close()
    samples = system.timeline.samples if system.timeline is not None else []
    if isinstance(trace_sink, InMemorySink):
        events = trace_sink.events
        num_events = len(events)
    else:
        events = []
        num_events = int(getattr(trace_sink, "events_emitted", 0))
    meta["algorithm"] = result.algorithm
    meta["workload"] = result.workload
    meta["exec_time"] = result.exec_time
    meta["num_events"] = num_events
    return TracedRun(
        result=result, events=events, samples=samples, meta=meta
    )

"""Structured observability for the simulator.

This package is the forensic layer the aggregate ``RunStats`` counters
cannot provide: when a run produces a wrong number, the question is
*what did one transaction do on the ring*, and the answer is a typed
per-transaction event trace.

* :mod:`repro.obs.trace` - the event vocabulary
  (:class:`~repro.obs.trace.EventType`,
  :class:`~repro.obs.trace.TraceEvent`) and the sinks
  (:class:`~repro.obs.trace.InMemorySink`,
  :class:`~repro.obs.trace.JsonlStreamSink`) the subsystems emit into.
* :mod:`repro.obs.jsonl` - the on-disk JSONL format (one meta header
  line plus one event per line).
* :mod:`repro.obs.timeline` - windowed simulated-time sampling of ring
  occupancy, snoops/request and retries into per-phase series.
* :mod:`repro.obs.audit` - the per-transaction finite-state lifecycle
  validators (``flexsnoop trace audit``), strictly stronger than the
  end-state-only ``_check_line_invariants``.
* :mod:`repro.obs.render` - event filtering and the human-readable
  per-transaction timeline rendering.
* :mod:`repro.obs.runner` - the one-call helper that runs a traced
  simulation (used by the CLI and the golden audit tests).

Tracing is **off by default** and designed to be zero-cost when off:
every emission site in the hot paths is guarded by a single
``if trace is not None`` attribute test.  See
``docs/observability.md``.
"""

from repro.obs.trace import (
    EventType,
    InMemorySink,
    JsonlStreamSink,
    TraceEvent,
    TraceSink,
)

__all__ = [
    "EventType",
    "InMemorySink",
    "JsonlStreamSink",
    "TraceEvent",
    "TraceSink",
]

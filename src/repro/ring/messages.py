"""Snoop message model for the embedded ring.

A coherence transaction is represented on the ring by *one logical
message* that may exist in two physical forms (Section 3.2 / Table 2):

* **combined** - a single Combined Request/Reply (R/R) carrying both
  the request and the accumulated snoop outcomes.
* **split** - a *snoop request* racing ahead plus a *snoop reply*
  trailing behind, collecting outcomes.

``Forward Then Snoop`` splits a combined message; ``Snoop Then
Forward`` recombines a split one.  A message can be split and
recombined several times along the ring.  Once the supplier is found,
the message is *satisfied*: it is marked as a reply and traverses the
remainder of the ring without inducing snoops.

:class:`RingMessage` tracks the walk state of one transaction: the
arrival time of the request (or combined R/R) at the current node and,
when split, the time the trailing reply will arrive there.
"""

from __future__ import annotations

import enum
from typing import Optional


class MessageMode(enum.Enum):
    """Physical form of the logical snoop message at a ring segment."""

    COMBINED = "combined"
    SPLIT = "split"


class SnoopKind(enum.Enum):
    """Type of the coherence transaction the message serializes."""

    READ = "read"
    WRITE = "write"


class RingMessage:
    """Walk state of one transaction's snoop message.

    Attributes:
        transaction_id: owning transaction.
        kind: read or write snoop.
        address: line address.
        requester: CMP node id that issued the message.
        mode: combined or split physical form.
        request_time: time the request (or combined R/R) arrives at the
            node currently processing the message.
        reply_time: time the trailing reply arrives at that node; only
            meaningful in split mode.
        satisfied: True once a supplier answered the request; set on
            the *combined/reply* part.  In split mode the request
            racing ahead stays unsatisfied (downstream nodes cannot
            know yet), which is exactly why Eager snoops every node.
        satisfied_reply: True when the trailing reply carries the
            positive outcome.
        supplier: node that supplied the line, if any.
        hops_request: ring segments crossed by the request/combined
            form (message-energy accounting).
        hops_reply: ring segments crossed by trailing replies.
        squashed: the message lost a collision and performs no snoops;
            it circulates for serialization only and is retried.

    A hand-rolled ``__slots__`` class (not a dataclass): one message
    exists per ring transaction and the system pools and re-initializes
    them across transactions, so construction and field access are on
    the hot path.
    """

    __slots__ = (
        "transaction_id",
        "kind",
        "address",
        "requester",
        "mode",
        "request_time",
        "reply_time",
        "satisfied",
        "satisfied_reply",
        "supplier",
        "hops_request",
        "hops_reply",
        "squashed",
    )

    def __init__(
        self,
        transaction_id: int,
        kind: SnoopKind,
        address: int,
        requester: int,
        mode: MessageMode = MessageMode.COMBINED,
        request_time: int = 0,
        reply_time: Optional[int] = None,
        satisfied: bool = False,
        satisfied_reply: bool = False,
        supplier: Optional[int] = None,
        hops_request: int = 0,
        hops_reply: int = 0,
        squashed: bool = False,
    ) -> None:
        self.reinit(
            transaction_id,
            kind,
            address,
            requester,
            mode,
            request_time,
            reply_time,
            satisfied,
            satisfied_reply,
            supplier,
            hops_request,
            hops_reply,
            squashed,
        )

    def reinit(
        self,
        transaction_id: int,
        kind: SnoopKind,
        address: int,
        requester: int,
        mode: MessageMode = MessageMode.COMBINED,
        request_time: int = 0,
        reply_time: Optional[int] = None,
        satisfied: bool = False,
        satisfied_reply: bool = False,
        supplier: Optional[int] = None,
        hops_request: int = 0,
        hops_reply: int = 0,
        squashed: bool = False,
    ) -> None:
        """Reset every field, so pooled instances start fresh."""
        self.transaction_id = transaction_id
        self.kind = kind
        self.address = address
        self.requester = requester
        self.mode = mode
        self.request_time = request_time
        self.reply_time = reply_time
        self.satisfied = satisfied
        self.satisfied_reply = satisfied_reply
        self.supplier = supplier
        self.hops_request = hops_request
        self.hops_reply = hops_reply
        self.squashed = squashed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            "RingMessage(transaction_id=%r, kind=%r, address=%#x, "
            "requester=%r, mode=%r, satisfied=%r, squashed=%r)"
            % (
                self.transaction_id,
                self.kind,
                self.address,
                self.requester,
                self.mode,
                self.satisfied,
                self.squashed,
            )
        )

    @property
    def total_hops(self) -> int:
        """Total ring segment crossings by all forms of this message."""
        return self.hops_request + self.hops_reply

    def split(self, reply_departure: int) -> None:
        """Split into request + trailing reply (Forward Then Snoop).

        ``reply_departure`` is when the (new or merged) reply leaves
        the current node.
        """
        self.mode = MessageMode.SPLIT
        self.reply_time = reply_departure

    def recombine(self) -> None:
        """Merge the trailing reply into a combined R/R."""
        self.mode = MessageMode.COMBINED
        self.reply_time = None

    def mark_satisfied_combined(self, supplier: int) -> None:
        """Record a supply on the combined form: the message is now a
        reply and traverses the remaining ring without snoops."""
        self.satisfied = True
        self.satisfied_reply = True
        self.supplier = supplier

    def mark_satisfied_reply_only(self, supplier: int) -> None:
        """Record a supply whose outcome travels in the trailing reply
        (Forward Then Snoop): the request racing ahead stays live, so
        downstream nodes keep acting on it."""
        self.satisfied_reply = True
        self.supplier = supplier

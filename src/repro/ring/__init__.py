"""Embedded-ring interconnect: topology, message types, node gateways."""

from repro.ring.messages import (
    MessageMode,
    SnoopKind,
    RingMessage,
)
from repro.ring.topology import (
    HierRingTopology,
    RingTopology,
    SnoopTopology,
    TopologyTablesUnavailable,
    TorusTopology,
    build_topology,
    ring_successors,
)

__all__ = [
    "MessageMode",
    "SnoopKind",
    "RingMessage",
    "HierRingTopology",
    "RingTopology",
    "SnoopTopology",
    "TopologyTablesUnavailable",
    "TorusTopology",
    "build_topology",
    "ring_successors",
]

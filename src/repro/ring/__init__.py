"""Embedded-ring interconnect: topology, message types, node gateways."""

from repro.ring.messages import (
    MessageMode,
    SnoopKind,
    RingMessage,
)
from repro.ring.topology import RingTopology, TorusTopology

__all__ = [
    "MessageMode",
    "SnoopKind",
    "RingMessage",
    "RingTopology",
    "TorusTopology",
]

"""Per-CMP node: the cores' caches, the gateway's Supplier Predictor,
and the snoop helpers the system simulator uses.

A *snoop* at a CMP checks all its on-chip L2 caches in parallel (one
snoop operation in the paper's accounting).  The node also answers the
two locality questions the protocol needs: "is there a supplier here?"
(states SG, E, D, T) and "is there a local master here?" (those plus
SL).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import CacheConfig, PredictorConfig
from repro.coherence.cache import CacheLine, SetAssociativeCache
from repro.coherence.states import LineState  # noqa: F401 - re-export
from repro.core.predictors import (
    ExactPredictor,
    PerfectPredictor,
    SupplierPredictor,
    build_predictor,
)


class LineRegistry:
    """Interface for system-level line-location tracking.

    The full-system simulator implements these hooks to keep O(1)
    supplier/holder indexes consistent with every cache mutation; the
    node chains them behind the predictor-training callbacks.
    """

    def supplier_gain(self, cmp_id: int, core: int, address: int) -> None:
        raise NotImplementedError

    def supplier_loss(self, cmp_id: int, core: int, address: int) -> None:
        raise NotImplementedError

    def line_added(self, cmp_id: int, core: int, address: int) -> None:
        raise NotImplementedError

    def line_removed(self, cmp_id: int, core: int, address: int) -> None:
        raise NotImplementedError


class CMPNode:
    """One CMP: ``cores`` private caches plus one gateway predictor."""

    def __init__(
        self,
        cmp_id: int,
        cores: int,
        cache_config: CacheConfig,
        predictor_config: PredictorConfig,
        registry: Optional[LineRegistry] = None,
    ) -> None:
        self.cmp_id = cmp_id
        self.num_cores = cores
        self.predictor: SupplierPredictor = build_predictor(predictor_config)
        if isinstance(self.predictor, PerfectPredictor):
            self.predictor.set_truth(self.has_supplier)
        self.caches: List[SetAssociativeCache] = [
            SetAssociativeCache(
                cache_config,
                on_state_loss=self._make_loss_handler(core, registry),
                on_state_gain=self._make_gain_handler(core, registry),
                on_line_added=(
                    self._make_added_handler(core, registry)
                    if registry
                    else None
                ),
                on_line_removed=(
                    self._make_removed_handler(core, registry)
                    if registry
                    else None
                ),
            )
            for core in range(cores)
        ]

    def _make_loss_handler(self, core, registry):
        predictor_remove = self.predictor.remove
        if registry is None:
            return predictor_remove
        cmp_id = self.cmp_id
        supplier_loss = registry.supplier_loss

        def on_loss(address: int) -> None:
            predictor_remove(address)
            supplier_loss(cmp_id, core, address)

        return on_loss

    def _make_gain_handler(self, core, registry):
        predictor_insert = self.predictor.insert
        if registry is None:
            return predictor_insert
        cmp_id = self.cmp_id
        supplier_gain = registry.supplier_gain

        def on_gain(address: int) -> None:
            # Register first: the predictor insert may trigger an
            # Exact downgrade of *another* line, and must observe a
            # consistent index.
            supplier_gain(cmp_id, core, address)
            predictor_insert(address)

        return on_gain

    def _make_added_handler(self, core, registry):
        cmp_id = self.cmp_id
        line_added = registry.line_added
        return lambda address: line_added(cmp_id, core, address)

    def _make_removed_handler(self, core, registry):
        cmp_id = self.cmp_id
        line_removed = registry.line_removed
        return lambda address: line_removed(cmp_id, core, address)

    # ------------------------------------------------------------------
    # Locality / snoop queries

    def supplier_core(self, address: int) -> Optional[int]:
        """Core whose cache holds ``address`` in a supplier state."""
        for core, cache in enumerate(self.caches):
            line = cache.lookup(address, touch=False)
            if line is not None and line.state.supplier:
                return core
        return None

    def has_supplier(self, address: int) -> bool:
        return self.supplier_core(address) is not None

    def local_master_core(self, address: int) -> Optional[int]:
        """Core whose cache can supply ``address`` within this CMP."""
        for core, cache in enumerate(self.caches):
            line = cache.lookup(address, touch=False)
            if line is not None and line.state.local_master:
                return core
        return None

    def holders(self, address: int) -> List[int]:
        """Cores holding any valid copy of ``address``."""
        return [
            core
            for core, cache in enumerate(self.caches)
            if address in cache
        ]

    def supplier_line(self, address: int) -> Optional[Tuple[int, CacheLine]]:
        """(core, line) for the supplier copy, if present."""
        core = self.supplier_core(address)
        if core is None:
            return None
        line = self.caches[core].lookup(address, touch=False)
        assert line is not None
        return core, line

    # ------------------------------------------------------------------
    # State mutation helpers (used by the system simulator)

    def invalidate_all(self, address: int) -> int:
        """Invalidate every copy in this CMP; returns copies removed.

        Predictor entries are removed automatically through the
        cache's state-loss callback.
        """
        removed = 0
        for cache in self.caches:
            if cache.invalidate(address) is not None:
                removed += 1
        return removed

    def find_downgrade_victim(self, address: int) -> Optional[int]:
        """Core holding ``address`` in a supplier state, for the Exact
        predictor's conflict downgrade."""
        return self.supplier_core(address)

    @property
    def is_exact(self) -> bool:
        return isinstance(self.predictor, ExactPredictor)

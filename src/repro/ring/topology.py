"""Snoop-interconnect topologies and the torus data network.

The machine embeds one or more unidirectional snoop rings in its
physical network.  Snoop messages walk the topology's successor cycle;
data messages use the topology's data-network shortest paths (a 2D
torus for the flat ring, hierarchical bidirectional rings for
``hier_ring``).  Requests are mapped to rings by line address,
balancing the load (Section 2.2).

Topology is a registry component (kind ``"topology"``, entry-point
group ``flexsnoop.topologies``).  A topology factory is called with
the full :class:`~repro.config.MachineConfig` and must return a
:class:`SnoopTopology`.  Every layer of the simulator - the
:class:`~repro.sim.walker.RingWalker`, the
:class:`~repro.sim.datapath.DataPathModel`, the
:class:`~repro.sim.transactions.TransactionManager`, and the soa/jit
cores - consumes this interface instead of assuming "(i+1) mod N";
ring-order arithmetic lives in this package only (enforced by a lint
test).

The performance contract: the simulation cores never call
:meth:`SnoopTopology.route` per hop.  They hoist the topology into
flat tables once per run via :meth:`SnoopTopology.export_tables` -
a successor array plus per-segment latency arrays - and index those in
the hot loop.  A topology that cannot express itself as one static
Hamiltonian cycle with fixed per-segment latencies raises
:class:`TopologyTablesUnavailable` from ``export_tables``; the soa and
jit cores surface that through the existing ``SoaUnsupportedError``
envelope (the CLI then falls back to the object core, or fails under
``--strict-core``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.config import DataNetworkConfig, RingConfig, TopologyConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import MachineConfig


def ring_successors(num_nodes: int) -> List[int]:
    """Successor table of the flat unidirectional ring: node ``i``
    forwards to ``(i + 1) mod N``.  The one place this arithmetic is
    written down; everything else consumes the table."""
    return [(node + 1) % num_nodes for node in range(num_nodes)]


class TopologyTablesUnavailable(NotImplementedError):
    """The topology cannot export static successor/latency tables.

    Raised by :meth:`SnoopTopology.export_tables` for topologies whose
    routing is path-dependent.  The fused soa/jit cores require the
    tables; they translate this into their ``SoaUnsupportedError``
    envelope so the CLI can fall back to the object core.
    """


class SnoopTopology:
    """Interface every snoop topology implements.

    A topology owns three things:

    * **Walk order** - :meth:`route` is the definitional seam: given
      the requester and the path walked so far, it names the next node
      the snoop request visits.  :meth:`next_node`, :meth:`walk_order`
      and :meth:`ring_distance` all derive from it for topologies that
      are a static successor cycle.
    * **Segment timing** - :meth:`segment_latency` gives the cycles a
      message spends on the segment *leaving* a node.  The flat ring
      is uniform; ``hier_ring`` charges extra on segments that cross
      between local rings.
    * **Data network** - :meth:`transfer_latency` gives the latency of
      a data (non-snoop) transfer between two CMPs.

    Subclasses must implement :meth:`next_node`, :meth:`segment_latency`
    and :meth:`transfer_latency`; everything else has a derived default.
    """

    #: Registry kind name of this topology (stamped into trace meta).
    kind: str = "topology"

    def __init__(self, num_nodes: int, num_rings: int = 1) -> None:
        if num_nodes < 2:
            raise ValueError("a snoop topology needs at least 2 nodes")
        if num_rings < 1:
            raise ValueError("need at least 1 embedded ring")
        self.num_nodes = num_nodes
        self.num_rings = num_rings

    # ------------------------------------------------------------------
    # Walk order

    def next_node(self, node: int) -> int:
        """Downstream neighbour of ``node`` on the snoop walk."""
        raise NotImplementedError

    def prev_node(self, node: int) -> int:
        """Upstream neighbour: the node whose successor is ``node``."""
        self._check(node)
        for candidate in range(self.num_nodes):
            if self.next_node(candidate) == node:
                return candidate
        raise ValueError("node %d has no predecessor" % node)

    def route(self, requester: int, path_so_far: Sequence[int]) -> int:
        """Next node a snoop request visits.

        ``path_so_far`` is the sequence of nodes already visited (not
        including the requester).  The default follows the static
        successor cycle; adaptive topologies may override this with
        path-dependent routing (and then cannot export tables).
        """
        self._check(requester)
        tail = path_so_far[-1] if path_so_far else requester
        return self.next_node(tail)

    def walk_order(self, requester: int) -> List[int]:
        """Nodes a snoop request visits, in order, excluding the
        requester itself (the request finally returns home)."""
        self._check(requester)
        path: List[int] = []
        for _ in range(self.num_nodes - 1):
            path.append(self.route(requester, path))
        return path

    def ring_distance(self, src: int, dst: int) -> int:
        """Number of walk segments from ``src`` to ``dst`` going
        downstream; 0 when src == dst."""
        self._check(src)
        self._check(dst)
        node, distance = src, 0
        while node != dst:
            node = self.next_node(node)
            distance += 1
            if distance > self.num_nodes:
                raise ValueError(
                    "no walk from node %d to node %d" % (src, dst)
                )
        return distance

    def ring_of(self, address: int) -> int:
        """Ring index a line address maps to (address interleaving)."""
        return address % self.num_rings

    # ------------------------------------------------------------------
    # Physical links (contention modeling)

    def segment_links(self, node: int) -> Tuple[Tuple[str, int], ...]:
        """Physical links a message occupies crossing the segment
        leaving ``node``, as ``(scope, link_id)`` pairs.

        ``scope`` is ``"ring"`` for a link that is replicated once per
        embedded snoop ring (the normal case: each embedded ring has
        its own wires), or ``"shared"`` for a link that is one physical
        resource regardless of which embedded ring the message belongs
        to (e.g. the single global ring of ``hier_ring``).  The walker
        keys its link reservations on these descriptors, so a segment
        that is physically several links serializes on each of them.
        """
        self._check(node)
        return (("ring", node),)

    def link_counts(self) -> Tuple[int, int]:
        """``(per_ring_links, shared_links)`` distinct physical link
        counts, for occupancy/utilization denominators.  Total physical
        links = ``per_ring_links * num_rings + shared_links``."""
        return (self.num_nodes, 0)

    # ------------------------------------------------------------------
    # Segment timing and table export

    def segment_latency(self, node: int) -> int:
        """Cycles a snoop message spends on the segment leaving
        ``node`` (toward ``next_node(node)``)."""
        raise NotImplementedError

    def successors(self) -> List[int]:
        """Successor table: ``successors()[i] == route(i, ())``."""
        return [self.route(node, ()) for node in range(self.num_nodes)]

    def segment_latencies(self) -> List[int]:
        """Outbound per-segment latency table, indexed by source node."""
        return [self.segment_latency(node) for node in range(self.num_nodes)]

    def entry_latencies(self) -> List[int]:
        """Inbound latency table: ``entry_latencies()[n]`` is the cost
        of the segment a message crosses to *enter* node ``n`` (the
        outbound latency of ``n``'s predecessor)."""
        entry = [0] * self.num_nodes
        successors = self.successors()
        latencies = self.segment_latencies()
        for node in range(self.num_nodes):
            entry[successors[node]] = latencies[node]
        return entry

    def export_tables(self) -> Tuple[List[int], List[int], List[int]]:
        """``(successors, segment_latencies, entry_latencies)`` for the
        fused cores' hot loops.

        Validates that the successor table is one Hamiltonian cycle
        covering every node - the structural invariant the walker and
        the per-segment audit rules rely on.  Raises
        :class:`TopologyTablesUnavailable` when the topology cannot be
        expressed as static tables.
        """
        try:
            successors = self.successors()
            out_latencies = self.segment_latencies()
        except NotImplementedError as error:
            raise TopologyTablesUnavailable(
                "topology %r does not export static ring tables" % self.kind
            ) from error
        node, seen = 0, 0
        while seen < self.num_nodes:
            node = successors[node]
            seen += 1
            if node == 0 and seen < self.num_nodes:
                raise ValueError(
                    "topology %r successors do not form one Hamiltonian "
                    "cycle over %d nodes" % (self.kind, self.num_nodes)
                )
        if node != 0:
            raise ValueError(
                "topology %r successor walk does not return home"
                % self.kind
            )
        entry = [0] * self.num_nodes
        for src in range(self.num_nodes):
            entry[successors[src]] = out_latencies[src]
        return successors, out_latencies, entry

    # ------------------------------------------------------------------
    # Data network

    def transfer_latency(self, src: int, dst: int) -> int:
        """Latency of a data (non-snoop) transfer from src to dst."""
        raise NotImplementedError

    # ------------------------------------------------------------------

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                "node %d out of range [0, %d)" % (node, self.num_nodes)
            )


class RingTopology(SnoopTopology):
    """Unidirectional ring over ``num_nodes`` CMP gateways.

    Node ids are 0..num_nodes-1 and the ring order follows ids:
    node i forwards to node (i+1) mod N.  Data messages use the 2D
    torus when a :class:`~repro.config.DataNetworkConfig` is supplied
    (the registry factory always supplies one).
    """

    kind = "ring"

    def __init__(
        self,
        num_nodes: int,
        config: RingConfig,
        data_network: "DataNetworkConfig | None" = None,
    ) -> None:
        super().__init__(num_nodes, num_rings=config.num_rings)
        self.config = config
        self._succ = ring_successors(num_nodes)
        self.torus = (
            TorusTopology(num_nodes, data_network)
            if data_network is not None
            else None
        )

    def next_node(self, node: int) -> int:
        """Downstream neighbour of ``node`` on the ring."""
        self._check(node)
        return self._succ[node]

    def prev_node(self, node: int) -> int:
        self._check(node)
        return self._succ.index(node)

    def ring_distance(self, src: int, dst: int) -> int:
        """Number of ring segments from ``src`` to ``dst`` going
        downstream; 0 when src == dst."""
        self._check(src)
        self._check(dst)
        return (dst - src) % self.num_nodes

    def walk_order(self, requester: int) -> List[int]:
        self._check(requester)
        order: List[int] = []
        node = requester
        for _ in range(self.num_nodes - 1):
            node = self._succ[node]
            order.append(node)
        return order

    def segment_latency(self, node: int) -> int:
        self._check(node)
        return self.config.hop_latency

    def transfer_latency(self, src: int, dst: int) -> int:
        if self.torus is None:
            raise NotImplementedError(
                "RingTopology built without a data network"
            )
        return self.torus.transfer_latency(src, dst)


class HierRingTopology(SnoopTopology):
    """Two-level hierarchy: K local rings of M CMPs joined by a global
    ring through one bridge node per local ring.

    Node ids are laid out in consecutive blocks of M: local ring ``r``
    owns nodes ``r*M .. r*M+M-1`` and its bridge sits at position 0 of
    the block.  The snoop walk threads every local ring through the
    bridges into a single Hamiltonian cycle - the successor of node
    ``i`` is still node ``(i+1) mod N`` in this numbering - so the
    hierarchy is expressed purely in segment *timing*: a segment
    inside a local ring costs ``local_hop_latency``, while the segment
    leaving the last node of a block crosses to the next local ring
    over the global ring and costs ``local_hop_latency +
    global_hop_latency`` (hand-off to the bridge plus one global-ring
    hop).  A latency of 0 in :class:`~repro.config.TopologyConfig`
    inherits ``RingConfig.hop_latency``.

    Data (non-snoop) transfers use bidirectional hierarchical rings:
    shortest way around the source's local ring to its bridge, the
    shortest way around the global ring, then the target's local ring
    from its bridge - ``hops * per_hop_latency + overhead`` with the
    torus' timing constants.
    """

    kind = "hier_ring"

    def __init__(
        self,
        num_nodes: int,
        ring: RingConfig,
        topology: TopologyConfig,
        data_network: DataNetworkConfig,
    ) -> None:
        super().__init__(num_nodes, num_rings=ring.num_rings)
        local_rings = topology.local_rings
        if local_rings < 2:
            raise ValueError("hier_ring needs at least 2 local rings")
        if num_nodes % local_rings != 0:
            raise ValueError(
                "hier_ring needs num_cmps (%d) divisible by "
                "local_rings (%d)" % (num_nodes, local_rings)
            )
        ring_size = num_nodes // local_rings
        if ring_size < 2:
            raise ValueError(
                "hier_ring needs at least 2 CMPs per local ring "
                "(%d CMPs / %d rings)" % (num_nodes, local_rings)
            )
        self.config = ring
        self.topology_config = topology
        self.data_network = data_network
        self.local_rings = local_rings
        self.ring_size = ring_size
        self.local_hop = topology.local_hop_latency or ring.hop_latency
        self.global_hop = topology.global_hop_latency or ring.hop_latency
        self._succ = ring_successors(num_nodes)

    # ------------------------------------------------------------------
    # Structure helpers

    def local_ring_of(self, node: int) -> int:
        """Index of the local ring ``node`` belongs to."""
        self._check(node)
        return node // self.ring_size

    def bridge_of(self, node: int) -> int:
        """The bridge node of ``node``'s local ring (block position 0)."""
        self._check(node)
        return (node // self.ring_size) * self.ring_size

    def bridges(self) -> List[int]:
        """All bridge nodes, one per local ring, in global-ring order."""
        return [r * self.ring_size for r in range(self.local_rings)]

    def is_bridge(self, node: int) -> bool:
        self._check(node)
        return node % self.ring_size == 0

    # ------------------------------------------------------------------
    # Walk order and timing

    def next_node(self, node: int) -> int:
        self._check(node)
        return self._succ[node]

    def prev_node(self, node: int) -> int:
        self._check(node)
        return self._succ.index(node)

    def ring_distance(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return (dst - src) % self.num_nodes

    def walk_order(self, requester: int) -> List[int]:
        self._check(requester)
        order: List[int] = []
        node = requester
        for _ in range(self.num_nodes - 1):
            node = self._succ[node]
            order.append(node)
        return order

    def segment_latency(self, node: int) -> int:
        self._check(node)
        if (node + 1) % self.ring_size == 0:
            # Last node of its block: the segment hands the message to
            # the next local ring across one global-ring hop.
            return self.local_hop + self.global_hop
        return self.local_hop

    def segment_links(self, node: int) -> Tuple[Tuple[str, int], ...]:
        """Block-crossing segments occupy two distinct physical links:
        the local hand-off link (one per embedded ring, like every
        local segment) plus one global-ring link.  The global ring is a
        single physical resource - there is one bridge per local ring,
        not one per embedded ring - so its links carry ``"shared"``
        scope and messages of *different* embedded rings serialize on
        them."""
        self._check(node)
        if (node + 1) % self.ring_size == 0:
            return (("ring", node), ("shared", self.local_ring_of(node)))
        return (("ring", node),)

    def link_counts(self) -> Tuple[int, int]:
        return (self.num_nodes, self.local_rings)

    # ------------------------------------------------------------------
    # Data network

    def _local_hops(self, position_a: int, position_b: int) -> int:
        """Shortest-way hop count between two positions of one
        (bidirectional) local ring of ``ring_size`` nodes."""
        direct = abs(position_a - position_b)
        return min(direct, self.ring_size - direct)

    def _global_hops(self, ring_a: int, ring_b: int) -> int:
        direct = abs(ring_a - ring_b)
        return min(direct, self.local_rings - direct)

    def data_hop_distance(self, src: int, dst: int) -> int:
        """Shortest-path hop count over the hierarchical data rings."""
        self._check(src)
        self._check(dst)
        src_ring, src_pos = divmod(src, self.ring_size)
        dst_ring, dst_pos = divmod(dst, self.ring_size)
        if src_ring == dst_ring:
            return self._local_hops(src_pos, dst_pos)
        return (
            self._local_hops(src_pos, 0)  # to the source bridge
            + self._global_hops(src_ring, dst_ring)
            + self._local_hops(0, dst_pos)  # from the target bridge
        )

    def transfer_latency(self, src: int, dst: int) -> int:
        if src == dst:
            return self.data_network.overhead
        hops = self.data_hop_distance(src, dst)
        return hops * self.data_network.per_hop_latency + (
            self.data_network.overhead
        )


class TorusTopology:
    """2D torus used by data and memory messages.

    CMP ``i`` sits at coordinates ``(i // cols, i % cols)``.
    """

    def __init__(self, num_nodes: int, config: DataNetworkConfig) -> None:
        rows, cols = config.torus_shape
        if rows * cols < num_nodes:
            raise ValueError(
                "torus %dx%d cannot place %d nodes" % (rows, cols, num_nodes)
            )
        self.num_nodes = num_nodes
        self.rows = rows
        self.cols = cols
        self.config = config

    def coordinates(self, node: int) -> Tuple[int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError("node %d out of range" % node)
        return node // self.cols, node % self.cols

    def hop_distance(self, src: int, dst: int) -> int:
        """Shortest-path hop count on the torus."""
        (r1, c1), (r2, c2) = self.coordinates(src), self.coordinates(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)

    def transfer_latency(self, src: int, dst: int) -> int:
        """Latency of a data transfer from src to dst (cycles)."""
        if src == dst:
            return self.config.overhead
        hops = self.hop_distance(src, dst)
        return hops * self.config.per_hop_latency + self.config.overhead


# ----------------------------------------------------------------------
# Registry wiring


def _build_ring(config: "MachineConfig") -> RingTopology:
    return RingTopology(
        config.num_cmps, config.ring, data_network=config.data_network
    )


def _build_hier_ring(config: "MachineConfig") -> HierRingTopology:
    return HierRingTopology(
        config.num_cmps, config.ring, config.topology, config.data_network
    )


def build_topology(config: "MachineConfig") -> SnoopTopology:
    """Instantiate the topology named by ``config.topology.kind``
    through the component registry."""
    from repro.registry import REGISTRY

    topology = REGISTRY.create("topology", config.topology.kind, config)
    if topology.num_nodes != config.num_cmps:
        raise ValueError(
            "topology %r built %d nodes for a %d-CMP machine"
            % (config.topology.kind, topology.num_nodes, config.num_cmps)
        )
    return topology


def _register_topologies() -> None:
    from repro.registry import REGISTRY

    REGISTRY.register(
        "topology",
        "ring",
        _build_ring,
        aliases=("flat", "embedded_ring"),
        metadata={"description": "single unidirectional embedded ring"},
    )
    REGISTRY.register(
        "topology",
        "hier_ring",
        _build_hier_ring,
        aliases=("hierarchical", "hier"),
        metadata={
            "description": (
                "two-level hierarchy: local rings bridged by a global ring"
            )
        },
    )


_register_topologies()

"""Ring and torus topology helpers.

The machine embeds one or more unidirectional rings in its physical
network (a 2D torus by default).  Snoop messages are constrained to a
ring; data messages use torus shortest paths.  Requests are mapped to
rings by line address, balancing the load (Section 2.2).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config import DataNetworkConfig, RingConfig


class RingTopology:
    """Unidirectional ring over ``num_nodes`` CMP gateways.

    Node ids are 0..num_nodes-1 and the ring order follows ids:
    node i forwards to node (i+1) mod N.
    """

    def __init__(self, num_nodes: int, config: RingConfig) -> None:
        if num_nodes < 2:
            raise ValueError("a ring needs at least 2 nodes")
        self.num_nodes = num_nodes
        self.config = config

    def next_node(self, node: int) -> int:
        """Downstream neighbour of ``node`` on the ring."""
        self._check(node)
        return (node + 1) % self.num_nodes

    def ring_distance(self, src: int, dst: int) -> int:
        """Number of ring segments from ``src`` to ``dst`` going
        downstream; 0 when src == dst."""
        self._check(src)
        self._check(dst)
        return (dst - src) % self.num_nodes

    def ring_of(self, address: int) -> int:
        """Ring index a line address maps to (address interleaving)."""
        return address % self.config.num_rings

    def walk_order(self, requester: int) -> List[int]:
        """Nodes a snoop request visits, in order, excluding the
        requester itself (the request finally returns home)."""
        self._check(requester)
        return [
            (requester + offset) % self.num_nodes
            for offset in range(1, self.num_nodes)
        ]

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                "node %d out of range [0, %d)" % (node, self.num_nodes)
            )


class TorusTopology:
    """2D torus used by data and memory messages.

    CMP ``i`` sits at coordinates ``(i // cols, i % cols)``.
    """

    def __init__(self, num_nodes: int, config: DataNetworkConfig) -> None:
        rows, cols = config.torus_shape
        if rows * cols < num_nodes:
            raise ValueError(
                "torus %dx%d cannot place %d nodes" % (rows, cols, num_nodes)
            )
        self.num_nodes = num_nodes
        self.rows = rows
        self.cols = cols
        self.config = config

    def coordinates(self, node: int) -> Tuple[int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError("node %d out of range" % node)
        return node // self.cols, node % self.cols

    def hop_distance(self, src: int, dst: int) -> int:
        """Shortest-path hop count on the torus."""
        (r1, c1), (r2, c2) = self.coordinates(src), self.coordinates(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)

    def transfer_latency(self, src: int, dst: int) -> int:
        """Latency of a data transfer from src to dst (cycles)."""
        if src == dst:
            return self.config.overhead
        hops = self.hop_distance(src, dst)
        return hops * self.config.per_hop_latency + self.config.overhead

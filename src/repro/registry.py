"""Unified component registry: one name-resolution path for the repo.

Interface contract
==================

Every pluggable component family of the simulator - snooping
*algorithms*, named supplier-*predictor* configurations, *workload*
profiles, and trace *sinks* - is resolved through the process-global
:data:`REGISTRY` instance of :class:`ComponentRegistry`.  Before this
module existed the same resolution logic lived in four places with
four different error messages: ``core/algorithms.py`` (the
``ALGORITHMS`` dict plus ``build_algorithm`` aliases), ``config.py``
(``default_machine``'s algorithm-to-predictor mapping and
``NAMED_PREDICTORS``), ``workloads/profiles.py``
(``resolve_profile``'s alias table, used by the harness trace
construction), and the CLI's hand-maintained ``choices`` lists.  All
four now delegate here.

A component is a :class:`ComponentEntry`: a factory callable plus a
metadata mapping (for algorithms: the paper's default predictor and
the predictor guarantees the algorithm is compatible with; for
workloads: the profile summary).  Lookup is kind-aware and
normalizes names per kind (algorithms and workloads are
case/punctuation-insensitive with aliases; predictor names such as
``Sub2k`` are exact).  Unknown names raise
:class:`UnknownComponentError` - a ``ValueError`` whose message always
lists the valid choices, so every caller (library or CLI) reports the
same actionable error.

Third-party plugins
===================

Packages can add components without touching this repo by declaring
``entry_points`` in the groups of :data:`ENTRY_POINT_GROUPS`::

    [project.entry-points."flexsnoop.algorithms"]
    my_algo = "my_pkg.algos:MyAlgorithm"

The entry point must load to the component's factory (for algorithms:
the ``SnoopingAlgorithm`` subclass or a zero-argument callable
returning an instance).  An optional ``registry_metadata`` attribute
on the loaded object supplies the entry's metadata dict, and an
optional ``registry_aliases`` attribute supplies alias names.  Plugins
are loaded lazily on the first resolution of their kind and never
shadow builtins.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

#: Kind -> ``entry_points`` group third-party packages register under.
ENTRY_POINT_GROUPS: Dict[str, str] = {
    "algorithm": "flexsnoop.algorithms",
    "predictor": "flexsnoop.predictors",
    "workload": "flexsnoop.workloads",
    "sink": "flexsnoop.sinks",
    "core": "flexsnoop.cores",
    "topology": "flexsnoop.topologies",
}

#: Kind -> module whose import registers the built-in components.
#: Imported lazily on first lookup so that this module has no
#: repro-internal imports at module level (the registered modules
#: import *us*, not the other way around).
_BUILTIN_MODULES: Dict[str, str] = {
    "algorithm": "repro.core.algorithms",
    "predictor": "repro.config",
    "workload": "repro.workloads.profiles",
    "sink": "repro.obs.trace",
    "core": "repro.sim.cores",
    "topology": "repro.ring.topology",
}


def _normalize_algorithm(name: str) -> str:
    return name.lower()


def _normalize_workload(name: str) -> str:
    return name.lower().replace("-", "").replace("_", "")


def _normalize_exact(name: str) -> str:
    return name


#: Kind -> name normalizer applied to both registration and lookup.
_NORMALIZERS: Dict[str, Callable[[str], str]] = {
    "algorithm": _normalize_algorithm,
    "predictor": _normalize_exact,
    "workload": _normalize_workload,
    "sink": _normalize_algorithm,  # case-insensitive, like algorithms
    "core": _normalize_algorithm,  # case-insensitive, like algorithms
    "topology": _normalize_algorithm,  # case-insensitive, like algorithms
}


class UnknownComponentError(ValueError):
    """Raised when a name does not resolve; message lists choices."""

    def __init__(self, kind: str, name: str, known: Iterable[str]) -> None:
        self.kind = kind
        self.requested = name
        self.known: Tuple[str, ...] = tuple(sorted(known))
        super().__init__(
            "unknown %s %r; known: %s"
            % (kind, name, ", ".join(self.known))
        )


@dataclass(frozen=True)
class ComponentEntry:
    """One registered component.

    ``factory`` is invoked by :meth:`ComponentRegistry.create` with
    the caller's arguments; ``metadata`` is a read-only mapping of
    component facts (e.g. an algorithm's ``default_predictor`` and
    ``compatible_predictor_kinds``).
    """

    kind: str
    name: str
    factory: Callable[..., Any]
    aliases: Tuple[str, ...] = ()
    metadata: Mapping[str, Any] = field(default_factory=dict)
    source: str = "builtin"


def _iter_entry_points(group: str) -> List[Any]:
    """All installed entry points of ``group`` (test seam: tests
    monkeypatch this to simulate installed plugins)."""
    try:
        from importlib import metadata as importlib_metadata
    except ImportError:  # pragma: no cover - py<3.8
        return []
    try:
        entry_points = importlib_metadata.entry_points()
    except Exception:  # pragma: no cover - defensive
        return []
    if hasattr(entry_points, "select"):  # py3.10+
        return list(entry_points.select(group=group))
    return list(entry_points.get(group, []))  # pragma: no cover - py3.9


class ComponentRegistry:
    """Name -> factory registry for one process.

    Resolution order: built-in components (registered at import of the
    kind's home module), then lazily-loaded ``entry_points`` plugins.
    Builtins win name clashes; a plugin that fails to import is
    skipped rather than breaking resolution of everything else.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str], ComponentEntry] = {}
        self._aliases: Dict[Tuple[str, str], str] = {}
        self._builtins_loaded: set = set()
        self._plugins_loaded: set = set()

    # ------------------------------------------------------------------
    # Registration

    def register(
        self,
        kind: str,
        name: str,
        factory: Callable[..., Any],
        aliases: Iterable[str] = (),
        metadata: Optional[Mapping[str, Any]] = None,
        source: str = "builtin",
        replace: bool = False,
    ) -> ComponentEntry:
        """Register ``factory`` under ``name`` (and ``aliases``).

        Raises ``ValueError`` on a name clash unless ``replace`` is
        true; plugins never replace builtins regardless.
        """
        normalize = _NORMALIZERS.get(kind, _normalize_exact)
        canonical = normalize(name)
        key = (kind, canonical)
        existing = self._entries.get(key)
        if existing is not None:
            if source == "plugin" or not replace:
                raise ValueError(
                    "%s %r is already registered (source: %s)"
                    % (kind, name, existing.source)
                )
        entry = ComponentEntry(
            kind=kind,
            name=canonical,
            factory=factory,
            aliases=tuple(normalize(alias) for alias in aliases),
            metadata=dict(metadata or {}),
            source=source,
        )
        self._entries[key] = entry
        for alias in entry.aliases:
            self._aliases.setdefault((kind, alias), canonical)
        return entry

    def unregister(self, kind: str, name: str) -> None:
        """Remove one entry and its aliases (test/plugin hygiene)."""
        canonical = self.canonical(kind, name)
        entry = self._entries.pop((kind, canonical))
        for alias in entry.aliases:
            self._aliases.pop((kind, alias), None)

    # ------------------------------------------------------------------
    # Resolution

    def _ensure_loaded(self, kind: str) -> None:
        if kind not in self._builtins_loaded:
            self._builtins_loaded.add(kind)
            module = _BUILTIN_MODULES.get(kind)
            if module is not None:
                importlib.import_module(module)
        if kind not in self._plugins_loaded:
            self._plugins_loaded.add(kind)
            self._load_plugins(kind)

    def _load_plugins(self, kind: str) -> None:
        group = ENTRY_POINT_GROUPS.get(kind)
        if group is None:
            return
        for entry_point in _iter_entry_points(group):
            if (kind, entry_point.name) in self._entries:
                continue  # builtins shadow plugins, never vice versa
            try:
                loaded = entry_point.load()
            except Exception:  # pragma: no cover - broken plugin
                continue
            metadata = getattr(loaded, "registry_metadata", None)
            aliases = getattr(loaded, "registry_aliases", ())
            self.register(
                kind,
                entry_point.name,
                loaded,
                aliases=aliases,
                metadata=metadata,
                source="plugin",
            )

    def reload_plugins(self, kind: Optional[str] = None) -> None:
        """Drop plugin entries and re-scan entry points on next use."""
        kinds = [kind] if kind else list(ENTRY_POINT_GROUPS)
        for one_kind in kinds:
            self._plugins_loaded.discard(one_kind)
            stale = [
                entry
                for (entry_kind, _), entry in self._entries.items()
                if entry_kind == one_kind and entry.source == "plugin"
            ]
            for entry in stale:
                self.unregister(one_kind, entry.name)

    def canonical(self, kind: str, name: str) -> str:
        """Resolve ``name`` (or an alias) to the canonical name."""
        self._ensure_loaded(kind)
        normalize = _NORMALIZERS.get(kind, _normalize_exact)
        candidate = normalize(name)
        candidate = self._aliases.get((kind, candidate), candidate)
        if (kind, candidate) not in self._entries:
            raise UnknownComponentError(kind, name, self.names(kind))
        return candidate

    def get(self, kind: str, name: str) -> ComponentEntry:
        """The :class:`ComponentEntry` for ``name``; raises
        :class:`UnknownComponentError` with the valid choices."""
        return self._entries[(kind, self.canonical(kind, name))]

    def create(self, kind: str, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the component: ``get(...).factory(*args)``."""
        return self.get(kind, name).factory(*args, **kwargs)

    def names(self, kind: str) -> List[str]:
        """Sorted canonical names currently registered for ``kind``."""
        self._ensure_loaded(kind)
        return sorted(
            name for entry_kind, name in self._entries if entry_kind == kind
        )

    def metadata(self, kind: str, name: str) -> Mapping[str, Any]:
        return self.get(kind, name).metadata


#: The process-global registry all resolution paths share.
REGISTRY = ComponentRegistry()

"""Main memory model: per-node DRAM with address interleaving and the
prefetch-on-snoop heuristic of Section 2.2.

Lines are interleaved across the CMP nodes' memory controllers by line
address.  The latency constants follow Table 4 of the paper: a local
round-trip costs 350 cycles, a remote one 710 cycles, and a remote one
whose DRAM access was prefetched when the snoop request passed the
home node costs 312 cycles.
"""

from __future__ import annotations

from typing import Dict

from repro.config import MemoryConfig


class MainMemory:
    """Distributed main memory, one controller per CMP node."""

    def __init__(self, config: MemoryConfig, num_nodes: int) -> None:
        self.config = config
        self.num_nodes = num_nodes
        self._versions: Dict[int, int] = {}
        self.reads = 0
        self.writebacks = 0
        self.prefetches = 0

    def home_of(self, address: int) -> int:
        """CMP node whose memory controller owns this line."""
        return address % self.num_nodes

    def read_latency(self, requester: int, address: int, prefetched: bool) -> int:
        """Round-trip latency of a memory read issued after the ring
        walk returned a negative response."""
        if self.home_of(address) == requester:
            return self.config.local_round_trip
        if prefetched and self.config.prefetch_on_snoop:
            return self.config.remote_round_trip_prefetched
        return self.config.remote_round_trip

    def read(self, address: int) -> int:
        """Fetch the line; returns its current version."""
        self.reads += 1
        return self._versions.get(address, 0)

    def note_prefetch(self) -> None:
        self.prefetches += 1

    def writeback(self, address: int, version: int) -> None:
        """Write a dirty line back, updating memory's version."""
        self.writebacks += 1
        current = self._versions.get(address, 0)
        if version >= current:
            self._versions[address] = version

    def version_of(self, address: int) -> int:
        return self._versions.get(address, 0)

"""Warmup subsystem: prewarm memoization and the warmup-window reset.

Interface contract
==================

:class:`WarmupController` owns the two mechanisms that separate cache
training from measurement:

* **Prewarm** (``apply_prewarm``, called once by the facade at
  construction): installs the workload's prewarm lines in E state via
  a flattened fast path, memoized per (trace identity, cache
  geometry) in the process-level :data:`_PREWARM_MEMOS` store so a
  harness simulating one trace under several algorithms pays the full
  walk once.  The memo is only reusable while predictor training
  cannot feed back into cache contents, so the Exact predictor and
  the presence-filter extension always take the full walk.
* **Warmup-window reset** (``end_warmup``, called by the
  :class:`~repro.sim.transactions.TransactionManager` when the
  completed-access threshold is crossed): builds fresh ``RunStats``
  and ``EnergyModel`` objects, zeroes the predictor/presence/memory
  counters, and asks the facade to broadcast the new measurement
  objects to every subsystem (``rebind_measurement``), which also
  un-suspends the walker's hop batching.

State owned here: ``warmup_target`` / ``in_warmup`` /
``warmup_end_time`` (the facade and the other subsystems read these
at wiring time) and the bounded prewarm memo store.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

from repro.coherence.cache import CacheLine
from repro.coherence.protocol import CoherenceError
from repro.coherence.states import LineState
from repro.core.predictors import NullPredictor, PerfectPredictor
from repro.energy.model import EnergyModel
from repro.metrics.stats import RunStats
from repro.workloads.source import descriptor_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.config import MachineConfig
    from repro.core.presence import PresencePredictor
    from repro.ring.node import CMPNode
    from repro.sim.engine import EventEngine
    from repro.sim.memory import MainMemory
    from repro.sim.processor import Core
    from repro.sim.system import RingMultiprocessor
    from repro.workloads.source import WorkloadSource


class _PrewarmMemo:
    """Recorded outcome of one workload's prewarm pass.

    Prewarm is deterministic given the trace and the cache geometry,
    and - as long as nothing couples predictor training back into
    cache contents - independent of the predictor, so a harness that
    simulates the same trace under several algorithms (the figure
    matrices do exactly that) can pay the full prewarm walk once and
    restore its outcome for every later system.

    The memo stores the final cache sets (per core, per set, in LRU
    order; every prewarmed line is in state E with version 0), the
    registry dictionaries, the per-cache fill/eviction counters, and
    the predictor training stream (``ops``: one list per core,
    ``address`` encoding ``insert(address)`` and ``~address`` encoding
    ``remove(address)``).  ``predictor_snapshots`` additionally caches
    the trained predictor state per :class:`PredictorConfig`, so a
    config that recurs (e.g. Supy2k under both Superset variants)
    skips even the training replay.
    """

    __slots__ = (
        "trace",
        "core_sets",
        "core_fills",
        "core_evictions",
        "holder_count",
        "supplier_of",
        "ops",
        "predictor_snapshots",
    )

    def __init__(
        self,
        trace: object,
        core_sets: List[List[Tuple[int, Tuple[int, ...]]]],
        core_fills: List[int],
        core_evictions: List[int],
        holder_count: Dict[int, int],
        supplier_of: Dict[int, Tuple[int, int]],
        ops: List[List[int]],
    ) -> None:
        self.trace = trace
        self.core_sets = core_sets
        self.core_fills = core_fills
        self.core_evictions = core_evictions
        self.holder_count = holder_count
        self.supplier_of = supplier_of
        self.ops = ops
        self.predictor_snapshots: Dict[object, List[object]] = {}


#: Memo key: ("desc", descriptor hash, num_sets, associativity) for
#: sources with a stable content descriptor, or ("id", id(trace),
#: num_sets, associativity) for anonymous in-memory traces.
_MemoKey = Tuple[str, object, int, int]

#: Process-level prewarm memos.  Descriptor-keyed entries are
#: content-addressed, so two equal-but-distinct sources (a regenerated
#: profile, a re-opened file) share one walk across processes' worth
#: of systems.  Identity-keyed entries hold a strong reference to
#: their trace (``memo.trace``), which pins the ``id`` so the key
#: cannot alias a new object; the store is bounded, evicting the
#: oldest entry, so long-running processes do not accumulate traces.
_PREWARM_MEMOS: "OrderedDict[_MemoKey, _PrewarmMemo]" = OrderedDict()
_PREWARM_MEMO_LIMIT = 4


def _ignore_address(address: int) -> None:
    """Stand-in for NullPredictor.insert/remove in the prewarm loop."""
    return None


class WarmupController:
    """Prewarm memoization and the warmup-window measurement reset."""

    def __init__(
        self,
        engine: "EventEngine",
        config: "MachineConfig",
        workload: "WorkloadSource",
        cores: List["Core"],
        nodes: List["CMPNode"],
        presence: List["PresencePredictor"],
        memory: "MainMemory",
        supplier_of: Dict[int, Tuple[int, int]],
        holder_count: Dict[int, int],
        warmup_fraction: float,
    ) -> None:
        self.engine = engine
        self.config = config
        self.workload = workload
        self.cores = cores
        self.nodes = nodes
        self.presence = presence
        self.memory = memory
        self._supplier_of = supplier_of
        self._holder_count = holder_count
        self.warmup_target = (
            int(workload.total_accesses() * warmup_fraction)
            if warmup_fraction > 0.0
            else 0
        )
        self.in_warmup = self.warmup_target > 0
        self.warmup_end_time = 0

    def wire(self, system: "RingMultiprocessor") -> None:
        """Bind the facade (called once, before any event fires); it
        broadcasts measurement rebinds to the other subsystems."""
        self._system = system

    # ------------------------------------------------------------------
    # Warmup-window reset

    def end_warmup(self) -> None:
        """Reset all measurement state; caches and predictors keep
        their trained contents."""
        self.in_warmup = False
        self.warmup_end_time = self.engine.now
        stats = RunStats()
        energy = EnergyModel(
            self.config.energy, self.config.predictor.kind
        )
        for node in self.nodes:
            node.predictor.lookups = 0
            node.predictor.updates = 0
        for presence in self.presence:
            presence.lookups = 0
            presence.updates = 0
            presence.filtered = 0
        self.memory.reads = 0
        self.memory.writebacks = 0
        self.memory.prefetches = 0
        self._system.rebind_measurement(stats, energy)

    # ------------------------------------------------------------------
    # Array-image export seam

    def export_cache_image(
        self,
    ) -> Iterator[Tuple[int, int, List[int], List[int]]]:
        """Yield ``(core_id, set_index, addresses, states)`` for every
        non-empty cache set, addresses in LRU-first order with states
        integer-coded exactly as ``repro.sim.soa`` codes them.

        Symmetric to ``SoaRingMultiprocessor.export_cache_image`` so a
        flat-array core can import prewarm state from either world and
        equivalence tests can diff the two images directly.
        """
        from repro.sim.soa import _INT_OF_STATE

        for core in self.cores:
            cache = self.nodes[core.cmp_id].caches[core.local_id]
            core_id = core.cmp_id * self.config.cores_per_cmp + core.local_id
            for set_index, cache_set in enumerate(cache._sets):
                if not cache_set:
                    continue
                lines = list(cache_set.values())
                yield (
                    core_id,
                    set_index,
                    [line.address for line in lines],
                    [_INT_OF_STATE[line.state] for line in lines],
                )

    # ------------------------------------------------------------------
    # Prewarm

    def apply_prewarm(self) -> None:
        """Install the workload's prewarm lines (resident private data
        of a long-running application) in E state.

        Filled in reverse so the hottest lines (listed first) end up
        most recently used.  Observable effects are identical to
        calling ``cache.fill`` per line (asserted by
        ``test_prewarm_fast_path_matches_generic_fill``), but the
        callback chain - registry bookkeeping, predictor training,
        eviction accounting - is inlined here: prewarm performs
        hundreds of thousands of fills before the first event fires
        and dominates construction cost, so the ~8 Python calls per
        line that the generic path costs are worth flattening.

        The walk's outcome is further memoized per (workload identity,
        cache geometry) in :data:`_PREWARM_MEMOS` and restored
        wholesale for later systems built on the same workload (see
        ``test_prewarm_memo_matches_full_walk``).  Sources with a
        stable content descriptor are keyed by its hash, so the memo
        survives re-resolution of the same spec (a regenerated
        profile, a re-opened trace file); anonymous in-memory traces
        fall back to object identity.  The memo is only valid while
        predictor training cannot feed back into cache contents, so
        the Exact predictor (conflict downgrades) and the
        presence-filter extension always take the full walk.
        """
        prewarm = self.workload.prewarm()
        if not prewarm:
            return
        reusable = (
            not self.presence and self.config.predictor.kind != "exact"
        )
        descriptor = self.workload.descriptor()
        num_sets = self.config.cache.num_sets
        associativity = self.config.cache.associativity
        pin: object
        if descriptor is not None:
            key: _MemoKey = (
                "desc", descriptor_key(descriptor), num_sets, associativity
            )
            pin = self.workload
            if reusable:
                memo = _PREWARM_MEMOS.get(key)
                if memo is not None:
                    self._restore_prewarm(memo)
                    return
        else:
            trace = self.workload.materialize()
            key = ("id", id(trace), num_sets, associativity)
            pin = trace
            if reusable:
                memo = _PREWARM_MEMOS.get(key)
                if memo is not None and memo.trace is trace:
                    self._restore_prewarm(memo)
                    return
        record = reusable
        ops: List[List[int]] = []
        state_e = LineState.E
        supplier_of = self._supplier_of
        holder_count = self._holder_count
        presence = self.presence
        for core, lines in zip(self.cores, prewarm):
            cmp_id = core.cmp_id
            core_id = core.local_id
            node = self.nodes[cmp_id]
            cache = node.caches[core_id]
            if isinstance(node.predictor, (NullPredictor, PerfectPredictor)):
                # Lazy/Eager/Oracle: insert/remove are no-ops; skip
                # the calls.
                predictor_insert = _ignore_address
                predictor_remove = _ignore_address
            else:
                predictor_insert = node.predictor.insert
                predictor_remove = node.predictor.remove
            core_ops: List[int] = []
            if record:
                ops.append(core_ops)
            sets = cache._sets
            num_sets = cache._num_sets
            associativity = cache._associativity
            for address in reversed(lines):
                cache_set = sets[address % num_sets]
                if address in cache_set:
                    # Duplicate prewarm line: take the generic
                    # update-in-place path (rare enough not to matter).
                    cache.fill(address, state_e, 0)
                    continue
                if len(cache_set) >= associativity:
                    victim_address, victim = cache_set.popitem(last=False)
                    cache.evictions += 1
                    if victim.state.dirty:
                        cache.dirty_evictions += 1
                    if victim.state.supplier:
                        # on_state_loss: predictor first, then registry
                        # (same order as the wired callbacks).
                        if record:
                            core_ops.append(~victim_address)
                        predictor_remove(victim_address)
                        if supplier_of.get(victim_address) == (
                            cmp_id,
                            core_id,
                        ):
                            del supplier_of[victim_address]
                    # on_line_removed
                    count = holder_count.get(victim_address, 0) - 1
                    if count <= 0:
                        holder_count.pop(victim_address, None)
                    else:
                        holder_count[victim_address] = count
                    if presence:
                        presence[cmp_id].line_removed(victim_address)
                cache_set[address] = CacheLine(address, state_e, 0)
                cache.fills += 1
                # on_line_added
                holder_count[address] = holder_count.get(address, 0) + 1
                if presence:
                    presence[cmp_id].line_added(address)
                # on_state_gain: register the supplier before training
                # the predictor (an Exact conflict downgrade must see
                # a consistent index), mirroring CMPNode's on_gain.
                existing = supplier_of.get(address)
                if existing is not None and existing != (cmp_id, core_id):
                    raise CoherenceError(
                        "line %#x gained supplier at %s while %s still "
                        "holds it"
                        % (address, (cmp_id, core_id), existing)
                    )
                supplier_of[address] = (cmp_id, core_id)
                if record:
                    core_ops.append(address)
                predictor_insert(address)
        if record:
            self._record_prewarm(key, ops, pin)

    def _record_prewarm(
        self, key: _MemoKey, ops: List[List[int]], pin: object
    ) -> None:
        """Capture the just-completed prewarm walk into the memo store."""
        core_sets: List[List[Tuple[int, Tuple[int, ...]]]] = []
        core_fills: List[int] = []
        core_evictions: List[int] = []
        for core in self.cores:
            cache = self.nodes[core.cmp_id].caches[core.local_id]
            core_sets.append(
                [
                    (index, tuple(cache_set))
                    for index, cache_set in enumerate(cache._sets)
                    if cache_set
                ]
            )
            core_fills.append(cache.fills)
            core_evictions.append(cache.evictions)
        memo = _PrewarmMemo(
            pin,
            core_sets,
            core_fills,
            core_evictions,
            dict(self._holder_count),
            dict(self._supplier_of),
            ops,
        )
        self._store_predictor_snapshot(memo)
        _PREWARM_MEMOS[key] = memo
        while len(_PREWARM_MEMOS) > _PREWARM_MEMO_LIMIT:
            _PREWARM_MEMOS.popitem(last=False)

    def _restore_prewarm(self, memo: _PrewarmMemo) -> None:
        """Re-create the full prewarm outcome from a recorded memo.

        Cache lines are rebuilt fresh (they are mutable), inserted in
        the recorded LRU order; every prewarmed line is E/version 0 by
        construction.  Predictor state is restored from a per-config
        snapshot when one exists, otherwise by replaying the recorded
        training stream through the real predictor methods (which also
        reproduces the predictors' update counters exactly).
        """
        state_e = LineState.E
        for index, core in enumerate(self.cores):
            cache = self.nodes[core.cmp_id].caches[core.local_id]
            sets = cache._sets
            for set_index, addresses in memo.core_sets[index]:
                cache_set = sets[set_index]
                for address in addresses:
                    cache_set[address] = CacheLine(address, state_e, 0)
            cache.fills += memo.core_fills[index]
            cache.evictions += memo.core_evictions[index]
        self._holder_count.update(memo.holder_count)
        self._supplier_of.update(memo.supplier_of)
        kind = self.config.predictor.kind
        if kind in ("none", "perfect"):
            return
        snapshots = memo.predictor_snapshots.get(self.config.predictor)
        if snapshots is not None:
            for node, snapshot in zip(self.nodes, snapshots):
                node.predictor.prewarm_restore(snapshot)
            return
        for core, core_ops in zip(self.cores, memo.ops):
            predictor = self.nodes[core.cmp_id].predictor
            insert = predictor.insert
            remove = predictor.remove
            for op in core_ops:
                if op >= 0:
                    insert(op)
                else:
                    remove(~op)
        self._store_predictor_snapshot(memo)

    def _store_predictor_snapshot(self, memo: _PrewarmMemo) -> None:
        """Cache this config's trained predictor state on the memo, if
        every node's predictor supports snapshotting."""
        if self.config.predictor.kind in ("none", "perfect"):
            return
        snapshots: List[object] = []
        for node in self.nodes:
            snapshot = node.predictor.prewarm_snapshot()
            if snapshot is None:
                return
            snapshots.append(snapshot)
        memo.predictor_snapshots[self.config.predictor] = snapshots

"""Transaction lifecycle subsystem: issue, collision, squash, retry,
MSHR waiters, retirement, and write serialization.

Interface contract
==================

:class:`TransactionManager` owns every coherence access from the
moment a core issues it until it retires:

* **Inbound** (called by the facade and the event engine): ``start()``
  seeds the per-core issue events; the per-core issue callbacks replay
  each core's trace.
* **Inbound** (called by :class:`~repro.sim.walker.RingWalker` and
  :class:`~repro.sim.datapath.DataPathModel`): ``retire``, ``retry``,
  ``complete_access``, ``allocate_write_version``,
  ``note_write_completed`` and ``check_version`` - the transaction- and
  version-bookkeeping side of walk completion and data delivery.
* **Outbound**: hands freshly issued ring transactions to the walker
  (``forward_request`` / ``make_step_handler``) and cache fills to the
  data path (``fill``).

State owned here: the active-transaction map (per line), the
transaction/write sequence counters, the :class:`RingMessage` pool and
its reuse counters, the per-line last-completed-write versions, and
the MSHR waiter lists hanging off each :class:`Transaction`.

All state is process-local and single-threaded; methods must only be
invoked from event-engine callbacks (or before ``engine.run``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.coherence.protocol import (
    local_reader_state,
    supplier_next_state_on_read,
)
from repro.coherence.states import LineState, SUPPLIER_STATES
from repro.obs.trace import EventType, TraceEvent, TraceSink
from repro.ring.messages import RingMessage, SnoopKind
from repro.sim.processor import Core
from repro.workloads.trace import Access

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.config import MachineConfig
    from repro.metrics.stats import RunStats
    from repro.ring.node import CMPNode
    from repro.ring.topology import SnoopTopology
    from repro.sim.datapath import DataPathModel
    from repro.sim.engine import EventEngine
    from repro.sim.system import RingMultiprocessor
    from repro.sim.walker import RingWalker
    from repro.sim.warmup import WarmupController


class Transaction:
    """One in-flight ring coherence transaction.

    A ``__slots__`` class: one instance per ring transaction, with the
    message and the per-transaction step callback (``step_cb``) bound
    once at issue so the walk schedules no per-hop closures.  ``msg``
    is set in ``__init__`` and only becomes ``None`` at retirement,
    when the message returns to the system's pool.
    """

    __slots__ = (
        "txn_id",
        "kind",
        "address",
        "requester_cmp",
        "core",
        "issue_time",
        "msg",
        "needs_data",
        "write_version",
        "expected_version",
        "data_arrival",
        "supplied_version",
        "supplier_cmp",
        "prefetch_initiated",
        "waiters",
        "retry_count",
        "retired",
        "next_node",
        "path",
        "step_cb",
    )

    msg: Optional[RingMessage]

    def __init__(
        self,
        txn_id: int,
        kind: SnoopKind,
        address: int,
        requester_cmp: int,
        core: Core,
        issue_time: int,
        msg: RingMessage,
        expected_version: int = 0,
    ) -> None:
        self.txn_id = txn_id
        self.kind = kind
        self.address = address
        self.requester_cmp = requester_cmp
        self.core = core
        self.issue_time = issue_time
        self.msg = msg
        self.needs_data = True
        self.write_version = 0
        self.expected_version = expected_version
        self.data_arrival: Optional[int] = None
        self.supplied_version = 0
        self.supplier_cmp: Optional[int] = None
        self.prefetch_initiated = False
        self.waiters: List[Core] = []
        #: requester's retry count for the current access, snapshotted
        #: at issue (the ``retries`` field of the decision context the
        #: walker builds at each read hop)
        self.retry_count = 0
        self.retired = False
        #: node the next scheduled walk event processes (primed with
        #: the topology's first route stop at issue, then maintained by
        #: the walk loop right before scheduling ``step_cb``)
        self.next_node = -1
        #: nodes visited so far, tracked only for topologies with
        #: path-dependent routing (None on the table-exporting builtins)
        self.path: Optional[List[int]] = None
        self.step_cb: Callable[[], None] = _noop

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Transaction(txn_id=%d, kind=%s, address=%#x, cmp=%d)" % (
            self.txn_id,
            self.kind,
            self.address,
            self.requester_cmp,
        )


def _noop() -> None:  # placeholder step callback before the walk starts
    return None


class TransactionManager:
    """Issue/collision/squash/retry/MSHR lifecycle (see module doc)."""

    def __init__(
        self,
        engine: "EventEngine",
        config: "MachineConfig",
        topology: "SnoopTopology",
        stats: "RunStats",
        nodes: List["CMPNode"],
        cores: List[Core],
        trace: Optional[TraceSink] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.topology = topology
        self.stats = stats
        self.nodes = nodes
        self.cores = cores
        # Observability: None when tracing is off, so every emission
        # site below costs one attribute load plus an identity test.
        self._trace = trace
        # One reusable issue callback per core (indexed by core_id), so
        # completing an access does not allocate a fresh closure for
        # the next one.
        self._issue_cbs: List[Callable[[], None]] = [
            self._make_issue_handler(core) for core in cores
        ]
        self._active: Dict[int, List[Transaction]] = {}
        # Requester criticality: squash/retry cycles survived by each
        # core's *current* access (reset when a fresh access issues,
        # bumped on every retry).  Snapshotted onto the transaction at
        # ring issue for the walker's decision context.
        self._core_retries: List[int] = [0] * len(cores)
        self._txn_seq = 0
        self._write_counter = 0
        # Message pool + simulator-efficiency counters (surfaced on
        # RunStats at the end of the run).
        self._msg_pool: List[RingMessage] = []
        self.messages_allocated = 0
        self.messages_reused = 0
        self.last_completed_write: Dict[int, int] = {}
        # Warmup window mirror (rebound by the WarmupController so the
        # per-access check below stays a plain attribute read).
        self._completed_accesses = 0
        self._warmup_target = 0
        self._in_warmup = False

    def wire(
        self,
        walker: "RingWalker",
        datapath: "DataPathModel",
        warmup: "WarmupController",
        system: "RingMultiprocessor",
    ) -> None:
        """Bind the collaborating subsystems (called once by the
        facade, before any event fires)."""
        self._walker = walker
        self._datapath = datapath
        self._warmup = warmup
        self._system = system
        self._warmup_target = warmup.warmup_target
        self._in_warmup = warmup.in_warmup

    def on_warmup_end(self, stats: "RunStats") -> None:
        """Warmup reset notification: measurement restarts on ``stats``."""
        self.stats = stats
        self._in_warmup = False

    # ==================================================================
    # Core replay

    def start(self) -> None:
        """Schedule every core's first access (or mark idle cores
        finished at time 0)."""
        for core in self.cores:
            if not core.done:
                self.engine.call_after(
                    core.current_access.think_time,
                    self._issue_cbs[core.core_id],
                )
            else:
                core.finish_time = 0

    def _make_issue_handler(self, core: Core) -> Callable[[], None]:
        return lambda: self._issue_access(core)

    def _issue_access(self, core: Core) -> None:
        access = core.current_access
        self._core_retries[core.core_id] = 0
        core.block(self.engine.now)
        if access.is_write:
            self.handle_write(core, access)
        else:
            self.handle_read(core, access)

    def complete_access(self, core: Core, at_time: int) -> None:
        core.unblock(at_time)
        core.advance()
        self._completed_accesses += 1
        if self._in_warmup and self._completed_accesses >= self._warmup_target:
            self._warmup.end_warmup()
        if core.done:
            core.finish_time = at_time
            return
        next_access = core.current_access
        now = self.engine.now
        if at_time < now:
            at_time = now
        self.engine.call_at(
            at_time + next_access.think_time,
            self._issue_cbs[core.core_id],
        )

    # ==================================================================
    # Reads

    def handle_read(self, core: Core, access: Access) -> None:
        self.stats.reads += 1
        address = access.address
        node = self.nodes[core.cmp_id]
        own = node.caches[core.local_id]

        line = own.lookup(address)
        if line is not None:
            self.stats.read_hits_local_cache += 1
            self.check_version(address, line.version, at_issue=True)
            self.complete_access(
                core, self.engine.now + self.config.cache.hit_latency
            )
            return

        master_core = node.local_master_core(address)
        if master_core is not None:
            master_cache = node.caches[master_core]
            master_line = master_cache.lookup(address)
            assert master_line is not None
            self.stats.read_hits_local_master += 1
            if master_line.state in SUPPLIER_STATES:
                # A dirty or exclusive master now shares the line:
                # D becomes T, E becomes SG (SG and T are unchanged),
                # exactly as when supplying a ring read.
                master_cache.set_state(
                    address,
                    supplier_next_state_on_read(master_line.state),
                )
            self._datapath.fill(
                core, address, local_reader_state(), master_line.version
            )
            self.check_version(address, master_line.version, at_issue=True)
            self.complete_access(
                core,
                self.engine.now + self.config.cache.local_master_latency,
            )
            return

        self.start_ring_transaction(core, address, SnoopKind.READ)

    # ==================================================================
    # Writes

    def handle_write(self, core: Core, access: Access) -> None:
        self.stats.writes += 1
        address = access.address
        node = self.nodes[core.cmp_id]
        own = node.caches[core.local_id]
        state = own.state_of(address)

        if state in (LineState.E, LineState.D):
            # Silent upgrade: exclusive ownership already held.
            self.stats.write_hits_exclusive += 1
            version = self.allocate_write_version()
            own.set_state(address, LineState.D)
            resident = own.lookup(address)
            assert resident is not None
            resident.version = version
            done = self.engine.now + self.config.cache.hit_latency
            self.note_write_completed(address, version, done)
            self.complete_access(core, done)
            return

        self.start_ring_transaction(core, address, SnoopKind.WRITE)

    def allocate_write_version(self) -> int:
        """Next write version; allocation order IS the global write
        serialization order."""
        self._write_counter += 1
        return self._write_counter

    # ==================================================================
    # Ring transaction issue

    def start_ring_transaction(
        self, core: Core, address: int, kind: SnoopKind
    ) -> None:
        now = self.engine.now
        active_list = self._active.get(address)
        squashed = False
        if active_list:
            for txn in active_list:
                if txn.requester_cmp == core.cmp_id:
                    position = len(txn.waiters)
                    txn.waiters.append(core)
                    self.stats.mshr_queued += 1
                    trace = self._trace
                    if trace is not None:
                        trace.emit(
                            TraceEvent(
                                now,
                                EventType.MSHR,
                                txn.txn_id,
                                core.cmp_id,
                                address,
                                {
                                    "phase": "wait",
                                    "core": core.core_id,
                                    "position": position,
                                },
                            )
                        )
                    return
            # A write-involving overlap on the same line from another
            # CMP is a collision; the younger message is squashed and
            # retried (Section 2.1.4).  Already-squashed messages are
            # ignored: they circulate for serialization only and must
            # never squash others, or two retrying requesters would
            # livelock each other.  Concurrent *reads* proceed - the
            # memory-race between two reads that both miss all caches
            # is reconciled at data-delivery time.
            squashed = any(
                t.msg is not None
                and not t.msg.squashed
                and (kind is SnoopKind.WRITE or t.kind is SnoopKind.WRITE)
                for t in active_list
            )

        self._txn_seq += 1
        if self._msg_pool:
            msg = self._msg_pool.pop()
            msg.reinit(
                self._txn_seq,
                kind,
                address,
                core.cmp_id,
                request_time=now,
                squashed=squashed,
            )
            self.messages_reused += 1
        else:
            msg = RingMessage(
                self._txn_seq,
                kind,
                address,
                core.cmp_id,
                request_time=now,
                squashed=squashed,
            )
            self.messages_allocated += 1
        txn = Transaction(
            txn_id=self._txn_seq,
            kind=kind,
            address=address,
            requester_cmp=core.cmp_id,
            core=core,
            issue_time=now,
            msg=msg,
            expected_version=self.last_completed_write.get(address, 0),
        )
        txn.retry_count = self._core_retries[core.core_id]
        if kind is SnoopKind.WRITE:
            # Data for the write can come from the writer's own copy
            # or from any valid copy in the CMP (supplied over the CMP
            # bus); only a CMP-wide miss needs data from the ring or
            # memory.  The version is allocated at commit time so that
            # write serialization order matches commit order.
            txn.needs_data = not self.nodes[core.cmp_id].holders(address)
        # Prime the walk with the topology's first route stop (the
        # walk loop re-derives it per hop; this replaces the old -1
        # sentinel with the node the request actually heads for).
        txn.next_node = self.topology.route(core.cmp_id, ())
        txn.step_cb = self._walker.make_step_handler(txn)
        self._active.setdefault(address, []).append(txn)

        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    now,
                    EventType.ISSUE,
                    txn.txn_id,
                    core.cmp_id,
                    address,
                    {
                        "kind": kind.value,
                        "core": core.core_id,
                        "squashed": squashed,
                        "retries": txn.retry_count,
                    },
                )
            )

        if not squashed:
            if kind is SnoopKind.READ:
                self.stats.read_ring_transactions += 1
            else:
                self.stats.write_ring_transactions += 1

        self._walker.forward_request(txn, core.cmp_id, now)

    # ==================================================================
    # Retirement, retries, MSHR waiters

    def retire(self, txn: Transaction) -> None:
        if txn.retired:
            return
        txn.retired = True
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    self.engine.now,
                    EventType.RETIRE,
                    txn.txn_id,
                    txn.requester_cmp,
                    txn.address,
                    {
                        "kind": txn.kind.value,
                        "squashed": txn.msg is not None and txn.msg.squashed,
                    },
                )
            )
        active_list = self._active.get(txn.address)
        if active_list and txn in active_list:
            active_list.remove(txn)
            if not active_list:
                del self._active[txn.address]
        if self.config.check_invariants:
            self._system._check_line_invariants(txn.address)
        # The walk is over and nothing reads the message after
        # retirement: return it to the pool for the next transaction.
        msg = txn.msg
        if msg is not None:
            txn.msg = None
            self._msg_pool.append(msg)
        waiters, txn.waiters = txn.waiters, []
        for position, waiter in enumerate(waiters):
            if trace is not None:
                trace.emit(
                    TraceEvent(
                        self.engine.now,
                        EventType.MSHR,
                        txn.txn_id,
                        txn.requester_cmp,
                        txn.address,
                        {
                            "phase": "reissue",
                            "core": waiter.core_id,
                            "position": position,
                        },
                    )
                )
            self.engine.call_after(0, self._make_reissue_handler(waiter))

    def _make_reissue_handler(self, core: Core) -> Callable[[], None]:
        def reissue() -> None:
            access = core.current_access
            if access.is_write:
                self._handle_write_reissue(core, access)
            else:
                self._handle_read_reissue(core, access)

        return reissue

    def _handle_read_reissue(self, core: Core, access: Access) -> None:
        # Identical to handle_read but without re-counting the access.
        self.stats.reads -= 1
        self.handle_read(core, access)

    def _handle_write_reissue(self, core: Core, access: Access) -> None:
        self.stats.writes -= 1
        self.handle_write(core, access)

    def retry(self, txn: Transaction) -> None:
        self.stats.retries += 1
        self._core_retries[txn.core.core_id] += 1
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    self.engine.now,
                    EventType.RETRY,
                    txn.txn_id,
                    txn.requester_cmp,
                    txn.address,
                    {},
                )
            )
        core = txn.core
        access = core.current_access
        if access.is_write:
            self._handle_write_reissue(core, access)
        else:
            self._handle_read_reissue(core, access)

    # ==================================================================
    # Introspection

    def inflight(self) -> int:
        """In-flight ring transactions right now (the timeline's
        ring-occupancy sample)."""
        return sum(len(txns) for txns in self._active.values())

    # ==================================================================
    # Write/version bookkeeping

    def note_write_completed(
        self, address: int, version: int, at_time: int
    ) -> None:
        if version > self.last_completed_write.get(address, 0):
            self.last_completed_write[address] = version

    def check_version(
        self,
        address: int,
        obtained: int,
        txn: Optional[Transaction] = None,
        at_issue: bool = False,
    ) -> None:
        if not self.config.track_versions:
            return
        if txn is not None:
            expected = txn.expected_version
        else:
            expected = self.last_completed_write.get(address, 0)
        if obtained < expected:
            self.stats.version_violations += 1

"""A minimal deterministic discrete-event engine.

Events are ``(time, sequence, callback)`` triples kept in a binary
heap.  The sequence number breaks ties so that events scheduled first
fire first, which makes every simulation fully deterministic for a
given seed and input trace.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass
class Event:
    """Handle to one scheduled callback.

    The heap itself stores ``(time, seq, event)`` tuples so ordering
    comparisons run at C speed and never touch this object.
    """

    time: int
    seq: int
    callback: Callable[[], None]
    cancelled: bool = False

    def cancel(self) -> None:
        """Prevent the callback from firing when the event is popped."""
        self.cancelled = True


class EventEngine:
    """Binary-heap event queue with a monotonic simulation clock."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0
        self.now = 0
        self.events_processed = 0

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        return self._push(self.now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(
                "cannot schedule at %d, current time is %d" % (time, self.now)
            )
        return self._push(time, callback)

    def _push(self, time: int, callback: Callable[[], None]) -> Event:
        event = Event(time=time, seq=self._seq, callback=callback)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        return event

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or None when empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next event; return False when the queue is empty."""
        heap = self._heap
        while heap:
            time, _, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue.

        Args:
            until: stop once the clock would pass this time.
            max_events: safety valve against runaway simulations.

        Returns the number of events processed by this call.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if self.step():
                processed += 1
        return processed

    @property
    def pending(self) -> int:
        return sum(1 for entry in self._heap if not entry[2].cancelled)

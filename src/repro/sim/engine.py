"""A minimal deterministic discrete-event engine.

Events are ``(time, sequence, handle, callback)`` tuples kept in a
binary heap.  The sequence number breaks ties so that events scheduled
first fire first, which makes every simulation fully deterministic for
a given seed and input trace.

The engine sits on the hot path of every simulation (a full-matrix
harness run drains tens of millions of events), so the implementation
leans on a few deliberate micro-optimizations:

* :meth:`EventEngine.call_at` / :meth:`EventEngine.call_after` push a
  bare callback with no :class:`Event` handle at all (the heap entry's
  handle slot is ``None``).  Simulators that never cancel use these
  and skip one object allocation per event.
* :class:`Event` (returned by the cancellable :meth:`schedule` /
  :meth:`schedule_at`) uses ``__slots__`` - handles never need a
  ``__dict__``.
* :meth:`EventEngine.run` walks the heap directly instead of going
  through :meth:`peek_time`/:meth:`step`, saving two method calls and
  a tuple unpack per event.
* Cancelled events are dropped lazily when they surface at the heap
  top, but the engine also compacts the heap outright once cancelled
  entries dominate it, keeping pop cost logarithmic in the number of
  *live* events.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional


#: Compaction is considered once at least this many cancelled entries
#: are buried in the heap (below that, lazy pop-time dropping is
#: cheaper than a rebuild).
_COMPACT_MIN_CANCELLED = 64


class Event:
    """Handle to one scheduled callback.

    The heap itself stores ``(time, seq, event, callback)`` tuples so
    ordering comparisons run at C speed and never touch this object.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_engine")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[], None],
        engine: Optional["EventEngine"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from firing when the event is popped.

        Cancelling an event that already fired is a harmless no-op:
        the engine detaches itself on pop, so the cancelled-in-heap
        accounting only ever covers events still queued.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._note_cancelled()

    def __repr__(self) -> str:
        return "Event(time=%r, seq=%r, cancelled=%r)" % (
            self.time,
            self.seq,
            self.cancelled,
        )


class EventEngine:
    """Binary-heap event queue with a monotonic simulation clock."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0
        self.now = 0
        self.events_processed = 0
        # Number of cancelled events still buried in the heap; kept
        # live so ``pending`` is O(1) and compaction can trigger
        # without scanning.
        self._cancelled_in_heap = 0

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        return self._push(self.now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(
                "cannot schedule at %d, current time is %d" % (time, self.now)
            )
        return self._push(time, callback)

    def call_after(self, delay: int, callback: Callable[[], None]) -> None:
        """Like :meth:`schedule`, without allocating a cancellation
        handle.  The hot-path variant for callers that never cancel."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        seq = self._seq
        heapq.heappush(self._heap, (self.now + delay, seq, None, callback))
        self._seq = seq + 1

    def call_at(self, time: int, callback: Callable[[], None]) -> None:
        """Like :meth:`schedule_at`, without allocating a cancellation
        handle.  The hot-path variant for callers that never cancel."""
        if time < self.now:
            raise ValueError(
                "cannot schedule at %d, current time is %d" % (time, self.now)
            )
        seq = self._seq
        heapq.heappush(self._heap, (time, seq, None, callback))
        self._seq = seq + 1

    def call_every(
        self, interval: int, callback: Callable[[], None]
    ) -> None:
        """Run ``callback`` every ``interval`` cycles, starting one
        interval from now, until it is the only work left.

        Built for observability samplers (see
        :class:`repro.obs.timeline.MetricsTimeline`): after each tick
        the next one is scheduled only while other live events remain,
        so a sampler never keeps an otherwise-drained simulation
        spinning.  The callback must not assume it fires after the
        last real event of an instant - ties are broken by scheduling
        order as usual.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")

        def tick() -> None:
            callback()
            # ``pending`` no longer counts this tick (it was popped);
            # zero means the simulation has fully drained.
            if self.pending > 0:
                seq = self._seq
                heapq.heappush(
                    self._heap, (self.now + interval, seq, None, tick)
                )
                self._seq = seq + 1

        self.call_after(interval, tick)

    def _push(self, time: int, callback: Callable[[], None]) -> Event:
        event = Event(time, self._seq, callback, self)
        heapq.heappush(self._heap, (time, self._seq, event, callback))
        self._seq += 1
        return event

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; keeps the live count exact
        and compacts the heap when cancelled entries dominate it."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries.

        The list is filtered in place (slice assignment) because the
        hot loop in :meth:`run` holds a direct reference to it across
        callbacks, and a callback may cancel enough events to trigger
        this compaction mid-drain.
        """
        self._heap[:] = [
            entry
            for entry in self._heap
            if entry[2] is None or not entry[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or None when empty."""
        heap = self._heap
        while heap and heap[0][2] is not None and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Run the next event; return False when the queue is empty."""
        heap = self._heap
        while heap:
            time, _, event, callback = heapq.heappop(heap)
            if event is not None:
                if event.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                event._engine = None
            self.now = time
            self.events_processed += 1
            callback()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue.

        Args:
            until: stop once the clock would pass this time.
            max_events: safety valve against runaway simulations.

        Returns the number of events processed by this call.
        """
        # Hot loop: bind everything once and look at the heap top
        # directly rather than via peek_time()/step(), which would
        # cost two extra method calls per event.
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        while heap:
            if max_events is not None and processed >= max_events:
                break
            time, _, event, callback = heap[0]
            if event is not None and event.cancelled:
                pop(heap)
                self._cancelled_in_heap -= 1
                continue
            if until is not None and time > until:
                break
            pop(heap)
            if event is not None:
                event._engine = None
            self.now = time
            self.events_processed += 1
            processed += 1
            callback()
        return processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued; O(1)."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (fired, pending or cancelled)."""
        return self._seq

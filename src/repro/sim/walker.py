"""Ring-walk subsystem: per-hop processing of snoop messages.

Interface contract
==================

:class:`RingWalker` drives a :class:`~repro.sim.transactions.Transaction`'s
message around its embedded ring, applying the exact Table 2
primitive semantics at every node:

* **Inbound** (called by the
  :class:`~repro.sim.transactions.TransactionManager` at issue time):
  ``make_step_handler`` binds the transaction's single reusable walk
  callback; ``forward_request`` launches (and later continues) the
  walk from a node at a departure time.
* **Inbound** (called by the event engine): the per-transaction step
  callback, which lands in ``walk_from``.
* **Outbound**: supplier hits hand data scheduling to the
  :class:`~repro.sim.datapath.DataPathModel` (``supply_read`` /
  ``capture_write_supply``); a completed circuit hands the transaction
  to the data path (``read_done`` / ``write_done``) or, when squashed,
  back to the transaction manager for its back-off retry.

State owned here: hop batching (enablement, the ``hops_batched``
counter, and the in-warmup suspension mirror), the optional
link/snoop-port contention reservations, and the hot-path constants
hoisted from the algorithm and machine config.

Performance contract: the walk schedules no per-hop closures (the
transaction carries one prebound callback) and batches pass-through
hops into a single engine event whenever that is behaviourally
invisible - both invariants are guarded by
``tests/golden/test_golden_equivalence.py`` and ``flexsnoop bench``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.coherence.protocol import CoherenceError
from repro.core.decision import DecisionContext
from repro.core.predictors import PerfectPredictor
from repro.core.primitives import Primitive, apply_primitive
from repro.obs.trace import EventType, TraceEvent, TraceSink
from repro.ring.messages import MessageMode, SnoopKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.config import MachineConfig
    from repro.core.algorithms import SnoopingAlgorithm
    from repro.core.presence import PresencePredictor
    from repro.energy.model import EnergyModel
    from repro.metrics.stats import RunStats
    from repro.ring.node import CMPNode
    from repro.ring.topology import SnoopTopology
    from repro.sim.datapath import DataPathModel
    from repro.sim.engine import EventEngine
    from repro.sim.memory import MainMemory
    from repro.sim.transactions import Transaction, TransactionManager
    from repro.sim.warmup import WarmupController


class RingWalker:
    """Per-hop walk, hop batching and Table 2 primitive application."""

    def __init__(
        self,
        engine: "EventEngine",
        config: "MachineConfig",
        topology: "SnoopTopology",
        memory: "MainMemory",
        stats: "RunStats",
        energy: "EnergyModel",
        nodes: List["CMPNode"],
        algorithm: "SnoopingAlgorithm",
        supplier_of: Dict[int, Tuple[int, int]],
        presence: List["PresencePredictor"],
        collect_perfect: bool,
        trace: Optional[TraceSink] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.topology = topology
        self.memory = memory
        self.stats = stats
        self.energy = energy
        self.nodes = nodes
        self.algorithm = algorithm
        self.presence = presence
        self.collect_perfect = collect_perfect
        self._supplier_of = supplier_of
        # Observability: None when tracing is off, so every emission
        # site below costs one attribute load plus an identity test.
        self._trace = trace
        # Hot-path constants hoisted out of the per-event handlers.
        self._predictor_kind = config.predictor.kind
        self._uses_predictor = algorithm.uses_predictor()
        self._choose = algorithm.choose
        # Decision-context plumbing: policies that read only the
        # prediction (every paper algorithm, and dynamic policies like
        # the pressured SupersetHybrid whose extra input lives outside
        # the context) get two preallocated contexts, keeping the
        # common read hop allocation-free; policies that read the
        # requester's urgency fields get a fresh context per decision.
        inputs = algorithm.decision_inputs()
        self._ctx_needs_txn = bool(
            set(inputs) & {"retries", "waiters", "ring_age"}
        )
        self._ctx_true = DecisionContext(True)
        self._ctx_false = DecisionContext(False)
        self._prefetch_on_snoop = config.memory.prefetch_on_snoop
        self._home_of = memory.home_of
        self._ring_of = topology.ring_of
        # Topology tables hoisted for the per-hop hot path: successor,
        # outbound per-segment latency, inbound (entry) latency, and
        # predecessor of every node.  A topology whose routing is
        # path-dependent cannot export them; the walk then falls back
        # to calling ``route``/``segment_latency`` per hop with the
        # path tracked on the transaction (only this object core
        # supports that - the fused cores require the tables).
        from repro.ring.topology import TopologyTablesUnavailable

        try:
            succ, out_lat, in_lat = topology.export_tables()
        except TopologyTablesUnavailable:
            self._dynamic_route = True
            self._succ: List[int] = []
            self._out_lat: List[int] = []
            self._in_lat: List[int] = []
            self._pred: List[int] = []
        else:
            self._dynamic_route = False
            self._succ = succ
            self._out_lat = out_lat
            self._in_lat = in_lat
            self._pred = [0] * len(succ)
            for node, downstream in enumerate(succ):
                self._pred[downstream] = node
        # Hop batching: walk consecutive ring hops of one transaction
        # inside a single engine event (at "virtual" times ahead of the
        # engine clock) instead of scheduling one event per hop.  Only
        # safe when nothing order-sensitive is shared between in-flight
        # messages at sub-hop granularity, so it auto-disables under
        # the contention models and the presence-filter extension; it
        # is also suspended while warmup statistics can still be reset
        # (see walk_from).
        self._hop_batching = (
            config.ring.hop_batching
            and config.ring.link_occupancy == 0
            and not config.ring.serialize_snoop_port
            and not config.filter_write_snoops
        )
        self.hops_batched = 0
        # Optional contention modeling: next-free times of each
        # physical link and of each CMP's snoop port.  The topology
        # describes the physical links behind each outbound segment as
        # scoped descriptors (see ``SnoopTopology.segment_links``):
        # "ring"-scoped links are replicated per embedded ring and
        # keyed ``(ring index, link id)``; "shared"-scoped links (e.g.
        # the hier_ring global ring) are one physical resource crossed
        # by every embedded ring and keyed ``(-1, link id)``.
        self._link_free: Dict[Tuple[int, int], int] = {}
        self._snoop_port_free: List[int] = [0] * config.num_cmps
        if self._dynamic_route:
            # Path-dependent routing: descriptors are fetched per hop.
            self._ring_links: Optional[List[Tuple[int, ...]]] = None
            self._shared_links: Optional[List[Tuple[int, ...]]] = None
        else:
            ring_links: List[Tuple[int, ...]] = []
            shared_links: List[Tuple[int, ...]] = []
            for node in range(len(self._succ)):
                links = topology.segment_links(node)
                ring_links.append(
                    tuple(lid for scope, lid in links if scope == "ring")
                )
                shared_links.append(
                    tuple(lid for scope, lid in links if scope != "ring")
                )
            self._ring_links = ring_links
            self._shared_links = shared_links
        per_ring, shared = topology.link_counts()
        #: Physical link count across the whole machine (per-ring
        #: links exist once per embedded ring); the denominator of the
        #: timeline's link-utilization channel.
        self.total_links = per_ring * config.ring.num_rings + shared
        #: Cumulative link-reservation cycles (occupancy x links per
        #: crossing), charged when the reservation is made.  Not reset
        #: at warmup end - samplers difference it per window.
        self.link_busy_cycles = 0
        #: Cumulative snoop-port queueing delay (cycles).
        self.port_wait_cycles = 0
        self._in_warmup = False

    def wire(
        self,
        txns: "TransactionManager",
        datapath: "DataPathModel",
        warmup: "WarmupController",
    ) -> None:
        """Bind the collaborating subsystems (called once by the
        facade, before any event fires)."""
        self._txns = txns
        self._datapath = datapath
        self._in_warmup = warmup.in_warmup

    def on_warmup_end(self, stats: "RunStats", energy: "EnergyModel") -> None:
        """Warmup reset notification: measurement restarts on the new
        stats/energy objects and hop batching un-suspends.

        The contention reservations are cleared along with the
        counters: link and snoop-port bookings made by warmup-era
        traffic must not delay the first measured transactions, so the
        measured phase starts from an idle interconnect exactly like a
        warmup-free run does (pinned by
        ``tests/integration/test_warmup_contention.py``).
        """
        self.stats = stats
        self.energy = energy
        self._link_free.clear()
        self._snoop_port_free = [0] * len(self._snoop_port_free)
        self._in_warmup = False

    # ==================================================================
    # Walk driving

    def make_step_handler(self, txn: "Transaction") -> Callable[[], None]:
        """One walk callback per transaction, reused for every
        scheduled hop (``txn.next_node`` carries the target node)."""

        def step() -> None:
            self.walk_from(txn, txn.next_node, self.engine.now)

        return step

    def _cross_link(
        self, txn: "Transaction", from_node: int, departure: int
    ) -> int:
        """Reserve every physical link behind one segment crossing;
        returns the actual departure time (== requested time unless
        link contention modeling is on and a link is busy).

        The segment out of ``from_node`` may be more than one physical
        link (a hier_ring block-crossing is the local hand-off plus a
        global-ring link) and a link may be private to the message's
        embedded ring ("ring" scope) or shared by all embedded rings
        ("shared" scope, e.g. the single bridge each local ring owns
        onto the global ring).  The message departs when the last of
        its links frees up and holds all of them for ``occupancy``
        cycles.
        """
        occupancy = self.config.ring.link_occupancy
        if not occupancy:
            return departure
        if (
            self._ring_links is not None
            and self._shared_links is not None
        ):
            ring_links = self._ring_links[from_node]
            shared_links = self._shared_links[from_node]
        else:
            links = self.topology.segment_links(from_node)
            ring_links = tuple(
                lid for scope, lid in links if scope == "ring"
            )
            shared_links = tuple(
                lid for scope, lid in links if scope != "ring"
            )
        ring = self._ring_of(txn.address)
        link_free = self._link_free
        actual = departure
        for lid in ring_links:
            free = link_free.get((ring, lid), 0)
            if free > actual:
                actual = free
        for lid in shared_links:
            free = link_free.get((-1, lid), 0)
            if free > actual:
                actual = free
        until = actual + occupancy
        for lid in ring_links:
            link_free[(ring, lid)] = until
        for lid in shared_links:
            link_free[(-1, lid)] = until
        self.link_busy_cycles += occupancy * (
            len(ring_links) + len(shared_links)
        )
        return actual

    def _reserve_snoop_port(self, node_id: int, ready: int) -> int:
        """Queueing delay before a snoop can start at ``node_id``."""
        if not self.config.ring.serialize_snoop_port:
            return 0
        start = max(ready, self._snoop_port_free[node_id])
        self._snoop_port_free[node_id] = (
            start + self.config.ring.snoop_time
        )
        self.port_wait_cycles += start - ready
        return start - ready

    def links_busy(self, now: int) -> int:
        """Physical links with a reservation extending past ``now``."""
        return sum(1 for free in self._link_free.values() if free > now)

    def snoop_port_backlog(self, now: int) -> float:
        """Mean pending snoops per CMP port at time ``now``.

        Each port's backlog is its booked-beyond-now time divided by
        the per-snoop service time; 0.0 whenever port serialization is
        off (the bookings then never exist).
        """
        snoop_time = self.config.ring.snoop_time
        if not snoop_time or not self._snoop_port_free:
            return 0.0
        backlog = sum(
            free - now for free in self._snoop_port_free if free > now
        )
        return backlog / (len(self._snoop_port_free) * snoop_time)

    def forward_request(
        self, txn: "Transaction", from_node: int, departure: int
    ) -> None:
        """Send the request/combined form across one ring segment,
        leaving ``from_node`` at ``departure``, then walk onward."""
        msg = txn.msg
        assert msg is not None
        msg.hops_request += 1
        self._charge_crossing(txn)
        departure = self._cross_link(txn, from_node, departure)
        if self._dynamic_route:
            path = txn.path
            if path is None:
                path = txn.path = []
            arrival = departure + self.topology.segment_latency(from_node)
            to_node = self.topology.route(txn.requester_cmp, path)
            if to_node != txn.requester_cmp:
                path.append(to_node)
        else:
            arrival = departure + self._out_lat[from_node]
            to_node = self._succ[from_node]
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    departure,
                    EventType.HOP,
                    txn.txn_id,
                    from_node,
                    txn.address,
                    {
                        "to": to_node,
                        "arrival": arrival,
                        "mode": msg.mode.value,
                        "satisfied": msg.satisfied,
                        "squashed": msg.squashed,
                    },
                )
            )
        if (
            self._hop_batching
            and not self._in_warmup
            and (msg.squashed or msg.satisfied)
            and to_node != txn.requester_cmp
        ):
            # Batched: the message is circulating (squashed, or a
            # satisfied combined R/R) so the next node is guaranteed
            # not to snoop or touch any shared state - its processing
            # runs inline at the "virtual" arrival time instead of
            # through a scheduled event.  Every timing value computed
            # downstream is identical to the event-per-hop execution;
            # only the engine's event count shrinks.  Nodes that might
            # snoop and the requester keep their own events so all
            # coherence-state mutations still execute in engine order.
            # Suspended during warmup so counters land on the correct
            # side of the warmup statistics reset (the reset fires
            # from a completion event that may interleave with hops).
            self.hops_batched += 1
            self.walk_from(txn, to_node, arrival)
            return
        txn.next_node = to_node
        self.engine.call_at(arrival, txn.step_cb)

    def _charge_crossing(self, txn: "Transaction") -> None:
        self.energy.charge_ring_crossing()
        if txn.kind is SnoopKind.READ:
            self.stats.read_ring_crossings += 1
        else:
            self.stats.write_ring_crossings += 1

    def _advance_trailing_reply(
        self, txn: "Transaction", node_id: int
    ) -> None:
        """Move the trailing reply across the segment into ``node_id``
        (the node currently processing the request).

        With link-contention modeling on, the reply reserves the same
        link the request used; the reservation is made when the
        request is processed, a one-hop-early approximation that keeps
        the reply's timing analytic.
        """
        msg = txn.msg
        assert msg is not None
        if msg.mode is MessageMode.SPLIT:
            assert msg.reply_time is not None
            if self._dynamic_route:
                path = txn.path or []
                upstream = (
                    path[-2] if len(path) >= 2 else txn.requester_cmp
                )
                hop = self.topology.segment_latency(upstream)
            else:
                upstream = self._pred[node_id]
                hop = self._in_lat[node_id]
            departure = self._cross_link(txn, upstream, msg.reply_time)
            msg.reply_time = departure + hop
            msg.hops_reply += 1
            self._charge_crossing(txn)

    def walk_from(
        self, txn: "Transaction", node_id: int, now: int
    ) -> None:
        """Process the request's arrival at ``node_id`` at time
        ``now``.

        ``now`` equals ``engine.now`` when entered from a scheduled
        walk event; with hop batching it runs ahead of the engine
        clock (the hop's computed arrival time), which is transparent
        to everything downstream because all timing is derived from
        ``now`` rather than read off the engine.
        """
        msg = txn.msg
        assert msg is not None
        if node_id == txn.requester_cmp:
            # The final reply crossing is accounted by _walk_returned.
            self._walk_returned(txn, now)
            return
        self._advance_trailing_reply(txn, node_id)

        if msg.squashed or msg.satisfied:
            # Squashed messages circulate for serialization only; a
            # satisfied combined R/R is a reply and induces no snoops.
            self.forward_request(txn, node_id, now)
            return

        if txn.kind is SnoopKind.WRITE:
            self._write_step(txn, node_id, now)
            return

        self._read_step(txn, node_id, now)

    # ------------------------------------------------------------------
    # Read walk

    def _read_step(
        self, txn: "Transaction", node_id: int, now: int
    ) -> None:
        msg = txn.msg
        assert msg is not None
        node = self.nodes[node_id]
        address = txn.address
        entry = self._supplier_of.get(address)
        supplier_here = entry is not None and entry[0] == node_id

        if (
            self.collect_perfect
            and not msg.satisfied_reply
            and not msg.satisfied
        ):
            # The paper's "perfect predictor" is checked at every node
            # until the request finds the supplier.
            self.stats.perfect_accuracy.record(supplier_here, supplier_here)

        if self._uses_predictor:
            predictor = node.predictor
            prediction = predictor.lookup(address)
            predictor_latency = predictor.latency
            if not isinstance(predictor, PerfectPredictor):
                self.stats.accuracy.record(prediction, supplier_here)
            trace = self._trace
            if trace is not None:
                trace.emit(
                    TraceEvent(
                        now,
                        EventType.PREDICTOR,
                        txn.txn_id,
                        node_id,
                        address,
                        {
                            "kind": self._predictor_kind,
                            "prediction": prediction,
                            "truth": supplier_here,
                        },
                    )
                )
        else:
            prediction = True
            predictor_latency = 0

        if self._ctx_needs_txn:
            ctx = DecisionContext(
                prediction,
                retries=txn.retry_count,
                waiters=len(txn.waiters),
                ring_age=msg.hops_request,
            )
        else:
            ctx = self._ctx_true if prediction else self._ctx_false
        primitive = self._choose(ctx)
        if primitive is Primitive.FORWARD:
            if supplier_here:
                raise CoherenceError(
                    "algorithm %s filtered the snoop at the supplier node "
                    "(false negative on line %#x at CMP %d)"
                    % (self.algorithm.name, address, node_id)
                )
            # Filtered hop - apply_primitive's FORWARD branch inlined:
            # both physical forms pass through unchanged after the
            # predictor access, so no outcome object is needed on the
            # read walk's most common step.
            if (
                self._prefetch_on_snoop
                and node_id == self._home_of(address)
                and not txn.prefetch_initiated
                and not msg.satisfied_reply
            ):
                txn.prefetch_initiated = True
                self.memory.note_prefetch()
            self.forward_request(txn, node_id, now + predictor_latency)
            return

        snoop_queue_delay = self._reserve_snoop_port(
            node_id, now + predictor_latency
        )
        outcome = apply_primitive(
            msg,
            primitive,
            now=now,
            snoop_time=self.config.ring.snoop_time,
            predictor_latency=predictor_latency,
            node_is_supplier=supplier_here,
            node=node_id,
            snoop_queue_delay=snoop_queue_delay,
        )

        if outcome.snooped:
            self.stats.read_snoops += 1
            self.energy.charge_snoop()
            trace = self._trace
            if trace is not None:
                trace.emit(
                    TraceEvent(
                        now,
                        EventType.SNOOP,
                        txn.txn_id,
                        node_id,
                        address,
                        {
                            "kind": "read",
                            "primitive": primitive.value,
                            "snoop_done": outcome.snoop_done,
                            "supplied": outcome.supplied,
                        },
                    )
                )
            if (
                not supplier_here
                and prediction
                and self.algorithm.uses_predictor()
            ):
                node.predictor.observe_false_positive(address)
            if outcome.supplied:
                assert outcome.snoop_done is not None
                self._datapath.supply_read(txn, node_id, outcome.snoop_done)

        if self.memory.config.prefetch_on_snoop and node_id == (
            self.memory.home_of(address)
        ):
            if not txn.prefetch_initiated and not msg.satisfied_reply:
                txn.prefetch_initiated = True
                self.memory.note_prefetch()

        self.forward_request(txn, node_id, outcome.request_departure)

    # ------------------------------------------------------------------
    # Write walk

    def _write_step(
        self, txn: "Transaction", node_id: int, now: int
    ) -> None:
        msg = txn.msg
        assert msg is not None
        node = self.nodes[node_id]
        address = txn.address
        entry = self._supplier_of.get(address)
        supplier_here = entry is not None and entry[0] == node_id

        # Writes snoop (and invalidate) at every node; decoupling only
        # changes whether invalidations proceed in parallel.  With the
        # presence-predictor extension, a node that provably caches no
        # copy skips the snoop entirely (the filter has no false
        # negatives, so this never misses a copy).
        predictor_latency = 0
        if self.presence:
            presence = self.presence[node_id]
            predictor_latency = presence.access_latency
            if not presence.may_be_present(address):
                outcome = apply_primitive(
                    msg,
                    Primitive.FORWARD,
                    now=now,
                    snoop_time=self.config.ring.snoop_time,
                    predictor_latency=predictor_latency,
                    node_is_supplier=False,
                    node=node_id,
                )
                self.forward_request(
                    txn, node_id, outcome.request_departure
                )
                return
        primitive = (
            Primitive.FORWARD_THEN_SNOOP
            if self.algorithm.decouple_writes
            else Primitive.SNOOP_THEN_FORWARD
        )
        outcome = apply_primitive(
            msg,
            primitive,
            now=now,
            snoop_time=self.config.ring.snoop_time,
            predictor_latency=predictor_latency,
            node_is_supplier=False,  # writes never mark the message satisfied
            node=node_id,
            snoop_queue_delay=self._reserve_snoop_port(
                node_id, now + predictor_latency
            ),
        )
        assert outcome.snooped and outcome.snoop_done is not None
        self.stats.write_snoops += 1
        self.energy.charge_snoop()
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    now,
                    EventType.SNOOP,
                    txn.txn_id,
                    node_id,
                    address,
                    {
                        "kind": "write",
                        "primitive": primitive.value,
                        "snoop_done": outcome.snoop_done,
                        "supplied": False,
                    },
                )
            )

        if supplier_here and txn.needs_data and txn.data_arrival is None:
            self._datapath.capture_write_supply(
                txn, node_id, outcome.snoop_done
            )

        snoop_done = outcome.snoop_done
        self.engine.call_at(
            snoop_done, lambda: self.nodes[node_id].invalidate_all(address)
        )

        self.forward_request(txn, node_id, outcome.request_departure)

    # ------------------------------------------------------------------
    # Walk completion

    def _walk_returned(self, txn: "Transaction", now: int) -> None:
        """The request form is back at the requester; wait for the
        trailing reply if the message is split.  ``now`` is the
        request's arrival time (virtual when hops were batched)."""
        msg = txn.msg
        assert msg is not None
        if msg.mode is MessageMode.SPLIT:
            assert msg.reply_time is not None
            if self._dynamic_route:
                path = txn.path
                assert path, "split reply with no walked path"
                hop = self.topology.segment_latency(path[-1])
            else:
                hop = self._in_lat[txn.requester_cmp]
            info_time = msg.reply_time + hop
            msg.hops_reply += 1
            self._charge_crossing(txn)
        else:
            info_time = now
        self.engine.call_at(
            max(info_time, now), lambda: self._walk_done(txn)
        )

    def _walk_done(self, txn: "Transaction") -> None:
        now = self.engine.now
        msg = txn.msg
        assert msg is not None
        if msg.squashed:
            trace = self._trace
            if trace is not None:
                trace.emit(
                    TraceEvent(
                        now,
                        EventType.SQUASH,
                        txn.txn_id,
                        txn.requester_cmp,
                        txn.address,
                        {},
                    )
                )
            txns = self._txns
            txns.retire(txn)
            self.stats.squashes += 1
            self.engine.call_after(
                self.config.squash_backoff, lambda: txns.retry(txn)
            )
            return
        if txn.kind is SnoopKind.WRITE:
            self._datapath.write_done(txn, now)
        else:
            self._datapath.read_done(txn, now)

"""Trace-replay core model.

Each core replays its access trace: it computes for the access's think
time, issues the access, and blocks until the memory system completes
it.  Read misses block until the data line arrives (the paper lets the
processor use the line as soon as it arrives, before the snoop reply
returns); writes block until the invalidation acknowledgement.

This deliberately simple model makes the average miss-service latency
the first-order determinant of execution time, which is exactly the
quantity the snooping algorithms differentiate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.workloads.trace import Access, CoreTrace


@dataclass
class Core:
    """Replay state of one core."""

    core_id: int
    cmp_id: int
    local_id: int
    trace: CoreTrace
    index: int = 0
    finish_time: Optional[int] = None
    blocked_since: Optional[int] = None
    stall_cycles: int = 0

    @property
    def done(self) -> bool:
        return self.index >= len(self.trace)

    @property
    def current_access(self) -> Access:
        return self.trace[self.index]

    def block(self, now: int) -> None:
        self.blocked_since = now

    def unblock(self, now: int) -> None:
        if self.blocked_since is not None:
            self.stall_cycles += now - self.blocked_since
            self.blocked_since = None

    def advance(self) -> None:
        self.index += 1


def build_cores(traces: List[CoreTrace], cores_per_cmp: int) -> List[Core]:
    """Construct the core replay states for a workload's traces."""
    return [
        Core(
            core_id=i,
            cmp_id=i // cores_per_cmp,
            local_id=i % cores_per_cmp,
            trace=trace,
        )
        for i, trace in enumerate(traces)
    ]

"""Trace-replay core model.

Each core replays its access stream: it computes for the access's
think time, issues the access, and blocks until the memory system
completes it.  Read misses block until the data line arrives (the
paper lets the processor use the line as soon as it arrives, before
the snoop reply returns); writes block until the invalidation
acknowledgement.

The feed is a lazily-consumed iterator (see
:class:`repro.workloads.source.WorkloadSource`): a core holds only
the *current* access, so replaying a million-access file trace never
materializes the list.  Passing ``trace=`` (a list) still works - it
is wrapped in an iterator - and keeps the whole-trace reference for
callers that want it.

This deliberately simple model makes the average miss-service latency
the first-order determinant of execution time, which is exactly the
quantity the snooping algorithms differentiate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.workloads.trace import Access, CoreTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.source import WorkloadSource


@dataclass
class Core:
    """Replay state of one core.

    Exactly one of ``trace`` (materialized list) or ``stream`` (lazy
    iterator) feeds the core; ``index`` counts completed advances
    either way.
    """

    core_id: int
    cmp_id: int
    local_id: int
    trace: CoreTrace = field(default_factory=list)
    stream: Optional[Iterator[Access]] = None
    index: int = 0
    finish_time: Optional[int] = None
    blocked_since: Optional[int] = None
    stall_cycles: int = 0

    def __post_init__(self) -> None:
        if self.stream is None:
            self.stream = iter(self.trace[self.index:])
        self._current: Optional[Access] = next(self.stream, None)

    @property
    def done(self) -> bool:
        return self._current is None

    @property
    def current_access(self) -> Access:
        access = self._current
        if access is None:
            raise IndexError(
                "core %d has exhausted its access stream" % self.core_id
            )
        return access

    def block(self, now: int) -> None:
        self.blocked_since = now

    def unblock(self, now: int) -> None:
        if self.blocked_since is not None:
            self.stall_cycles += now - self.blocked_since
            self.blocked_since = None

    def advance(self) -> None:
        self.index += 1
        self._current = next(self.stream, None)  # type: ignore[arg-type]


def build_cores(traces: List[CoreTrace], cores_per_cmp: int) -> List[Core]:
    """Construct the core replay states for a workload's traces."""
    return [
        Core(
            core_id=i,
            cmp_id=i // cores_per_cmp,
            local_id=i % cores_per_cmp,
            trace=trace,
        )
        for i, trace in enumerate(traces)
    ]


def build_cores_from_source(source: "WorkloadSource") -> List[Core]:
    """Construct streaming cores fed by a workload source.

    The cores never see the full lists; each holds one lazy iterator
    from :meth:`~repro.workloads.source.WorkloadSource.core_stream`.
    """
    cores_per_cmp = source.cores_per_cmp
    return [
        Core(
            core_id=i,
            cmp_id=i // cores_per_cmp,
            local_id=i % cores_per_cmp,
            stream=source.core_stream(i),
        )
        for i in range(source.num_cores)
    ]

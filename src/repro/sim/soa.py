"""Struct-of-arrays fused simulation core (``core=soa``).

An opt-in alternative to :class:`repro.sim.system.RingMultiprocessor`
that produces **bit-identical** :meth:`SimulationResult.summary`
output for the configurations it supports, several times faster.  It
is selected through the component registry (``core=soa`` vs the
default ``core=object``; see ``repro.sim.cores``), so the harness,
the result cache and the CLI treat the two implementations as
interchangeable engines behind one seam.

Where the speed comes from
--------------------------

The object core is a faithful layered decomposition: engine, walker,
transaction manager, datapath, caches, nodes - each hop of a ring walk
crosses several of those layers through bound methods, per-event
closures and ``OrderedDict`` operations.  This core flattens all of it
into **one function frame**:

* **Struct-of-arrays state.**  Cache lines are 3-slot lists
  ``[address, state, version]`` with integer-coded states, stored in
  plain per-set dicts (insertion order *is* LRU order: a touch is
  ``del d[a]; d[a] = line``).  Transactions are flat lists indexed by
  module-level slot constants; there are no message objects, no
  dataclasses and no closures on the hot path.
* **A fused event loop.**  One ``heapq`` of ``(time, seq, op, a, b)``
  tuples replaces the engine + callback indirection; each ring walk
  processes as many hops as legally possible in a single dispatch
  (the same hop-group batching rule the object core proves safe).
* **Single-frame counters.**  Every statistic and energy accumulator
  is a local variable of :meth:`SoaRingMultiprocessor.run`; the
  warmup reset is a block of assignments instead of object churn.
* **Shared, vectorized prewarm.**  The prewarm walk outcome is
  memoized process-wide (addresses/states as packed ``numpy`` arrays)
  and - unlike the object core's memo - *also* covers the Exact
  predictor, whose conflict downgrades make the walk depend on the
  predictor configuration, so every cell of a matrix column shares
  one warmup walk.

Equivalence contract
--------------------

``summary()`` (and the full ``RunStats`` / energy breakdown) is
bit-identical to the object core because every counter is incremented
at the same simulated instant in the same relative event order, and
every float in the output is either a sum of identically-ordered
additions of one constant or a single division of integer counters.
The golden suite (``tests/golden``) and a Hypothesis property test
(``tests/property/test_core_equivalence.py``) enforce this.

Supported envelope
------------------

The fused loop only implements the paper's main configuration space.
Features that need per-link or per-port arbitration state, the
presence-filter extension, or observability hooks fall back to the
object core; :func:`check_soa_supported` raises
:class:`SoaUnsupportedError` with the concrete reason.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.coherence.protocol import CoherenceError
from repro.coherence.states import LineState
from repro.config import MachineConfig, PredictorConfig
from repro.core.algorithms import SnoopingAlgorithm
from repro.core.decision import DecisionContext
from repro.core.predictors import (
    ExactPredictor,
    PerfectPredictor,
    SupplierPredictor,
    build_predictor,
)
from repro.core.primitives import Primitive
from repro.energy.model import EnergyModel
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.stats import PredictorAccuracy, RunStats
from repro.ring.topology import TopologyTablesUnavailable, build_topology
from repro.sim.system import SimulationResult
from repro.workloads.source import WorkloadSource, as_source, descriptor_key

__all__ = [
    "SoaRingMultiprocessor",
    "SoaUnsupportedError",
    "check_soa_supported",
]


class SoaUnsupportedError(ValueError):
    """The requested configuration needs the object core."""


def check_soa_supported(
    config: MachineConfig, trace_sink: object = None
) -> None:
    """Raise :class:`SoaUnsupportedError` unless ``config`` is inside
    the SoA core's envelope.

    The excluded features all thread per-event mutable state through
    the object core's subsystem seams (link reservations, snoop-port
    queues, presence filters, trace emission); supporting them here
    would reintroduce exactly the indirection this core removes.
    """
    reasons = []
    if config.ring.link_occupancy:
        reasons.append("ring.link_occupancy (link contention modeling)")
    if config.ring.serialize_snoop_port:
        reasons.append("ring.serialize_snoop_port (snoop-port queueing)")
    if config.filter_write_snoops:
        reasons.append("filter_write_snoops (presence-filter extension)")
    if config.check_invariants:
        reasons.append("check_invariants (per-retire invariant checks)")
    if config.track_versions:
        reasons.append("track_versions (version violation tracking)")
    if trace_sink is not None or config.tracing.enabled:
        reasons.append("transaction tracing")
    if config.tracing.sample_window > 0:
        reasons.append("tracing.sample_window (metrics timeline)")
    if reasons:
        raise SoaUnsupportedError(
            "core=soa does not support: %s; use core=object"
            % "; ".join(reasons)
        )


# ----------------------------------------------------------------------
# Integer state coding.  Lines are never resident in state I, so it has
# no code; flag tables are indexed by the state integer.

_S, _SL, _SG, _E, _D, _T = 0, 1, 2, 3, 4, 5

_INT_OF_STATE = {
    LineState.S: _S,
    LineState.SL: _SL,
    LineState.SG: _SG,
    LineState.E: _E,
    LineState.D: _D,
    LineState.T: _T,
}
_STATE_OF_INT = [
    LineState.S,
    LineState.SL,
    LineState.SG,
    LineState.E,
    LineState.D,
    LineState.T,
]

#: state.supplier / state.local_master / state.dirty by integer code.
_SUP = (False, False, True, True, True, True)
_LM = (False, True, True, True, True, True)
_DIRTY = (False, False, False, False, True, True)

#: supplier_next_state_on_read by integer code (SG->SG, E->SG, D->T,
#: T->T; other entries are never read).
_NEXT_ON_READ = (_S, _SL, _SG, _SG, _T, _T)

# Primitive codes (``repro.core.primitives.Primitive`` mapped to ints).
_P_FWD, _P_FTS, _P_STF = 0, 1, 2
_PRIM_INT = {
    Primitive.FORWARD: _P_FWD,
    Primitive.FORWARD_THEN_SNOOP: _P_FTS,
    Primitive.SNOOP_THEN_FORWARD: _P_STF,
}

#: Legacy export (pre-decision-seam): algorithms whose ``choose`` was
#: a pure function of the prediction.  The cores now hoist whatever
#: ``algorithm.decision_table()`` publishes instead of consulting this
#: set; it is kept only for external callers pinned to the old name.
_PURE_CHOICE = frozenset(
    ("lazy", "eager", "oracle", "subset", "superset_con", "superset_agg", "exact")
)

# Transaction record slots.
_T_WRITE = 0  # bool: write transaction
_T_ADDR = 1
_T_REQ = 2  # requester CMP
_T_CORE = 3  # core record (list, see _K_* below)
_T_ISSUE = 4  # issue time
_T_NEEDS = 5  # write needs data from ring/memory
_T_DA = 6  # data arrival time or None
_T_SVER = 7  # supplied version
_T_PREF = 8  # prefetch initiated
_T_WAIT = 9  # MSHR waiter core records
_T_RET = 10  # retired
_T_NEXT = 11  # next ring node (pending STEP event)
_T_SPLIT = 12  # message mode is SPLIT
_T_REPLY = 13  # trailing reply time (SPLIT only)
_T_SAT = 14  # satisfied (combined reply)
_T_SATR = 15  # satisfied_reply
_T_SQ = 16  # squashed
_T_RETRY = 17  # requester retry count snapshot (decision context)

# Core record slots.
_K_ID = 0
_K_CMP = 1
_K_LOC = 2
_K_STREAM = 3
_K_CUR = 4
_K_FIN = 5

# Event op codes (heap entries are ``(time, seq, op, a, b)``).
_OP_ISSUE = 0
_OP_STEP = 1
_OP_WALKDONE = 2
_OP_INVAL = 3
_OP_RETRY = 4
_OP_DELIVER_READ = 5
_OP_DELIVER_MEM = 6
_OP_COMMIT = 7
_OP_RETIRE = 8
_OP_REISSUE = 9


# ----------------------------------------------------------------------
# Prewarm memo (shared across every SoA machine in the process).


class _SoaPrewarmMemo:
    """Recorded outcome of one prewarm walk over SoA structures.

    ``core_lines`` stores, per core, a dict mapping set index to
    ``(addresses, states)`` numpy arrays - the bulk of the memo - so a
    32-cache machine snapshot stays compact.  ``states`` is None when
    every line is E (any non-Exact predictor).  Restores *share* these
    dicts read-only as their ``_pending_sets``: a machine only reads
    the arrays while materializing a set, so restore is O(cores), not
    O(lines).
    """

    __slots__ = (
        "pin",
        "core_lines",
        "holder_count",
        "supplier_of",
        "ops",
        "predictor_snapshots",
        "downgraded",
        "downgrades",
        "e_downgrade_ops",
    )

    def __init__(
        self,
        pin: object,
        core_lines: List[Dict[int, Tuple[Any, Any]]],
        holder_count: Dict[int, int],
        supplier_of: Dict[int, Tuple[int, int]],
        ops: Optional[List[List[int]]],
    ) -> None:
        self.pin = pin
        self.core_lines = core_lines
        self.holder_count = holder_count
        self.supplier_of = supplier_of
        self.ops = ops
        self.predictor_snapshots: Dict[PredictorConfig, List[object]] = {}
        self.downgraded: frozenset = frozenset()
        self.downgrades = 0
        self.e_downgrade_ops = 0.0


_SOA_PREWARM_MEMOS: "OrderedDict[tuple, _SoaPrewarmMemo]" = OrderedDict()
#: The main matrix keeps six memos live at once (three workloads, each
#: with one shared non-exact key and one exact key); eight gives
#: headroom so a full 7x3 sweep never thrashes the memo LRU.
_SOA_PREWARM_MEMO_LIMIT = 8


class SoaRingMultiprocessor:
    """Drop-in fused-core replacement for ``RingMultiprocessor``.

    Same constructor signature and the same
    :class:`~repro.sim.system.SimulationResult` out of :meth:`run`;
    raises :class:`SoaUnsupportedError` for configurations outside the
    fused loop's envelope (see :func:`check_soa_supported`).
    """

    def __init__(
        self,
        config: MachineConfig,
        algorithm: SnoopingAlgorithm,
        workload: object,
        collect_perfect: bool = True,
        warmup_fraction: float = 0.0,
        trace_sink: object = None,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        check_soa_supported(config, trace_sink)
        source = as_source(workload)
        if not source.streaming:
            source.materialize().validate()
        if source.num_cmps != config.num_cmps:
            raise ValueError(
                "workload spans %d CMPs but machine has %d"
                % (source.num_cmps, config.num_cmps)
            )
        if source.cores_per_cmp != config.cores_per_cmp:
            raise ValueError(
                "workload uses %d cores/CMP but machine has %d"
                % (source.cores_per_cmp, config.cores_per_cmp)
            )
        self.config = config
        self.algorithm = algorithm
        # Resolved predictor kind onto the policy (see
        # SnoopingAlgorithm.bind_predictor_kind): a predictor override
        # must charge lookup latency/energy like the object core does.
        algorithm.bind_predictor_kind(config.predictor.kind)
        self.source = source
        self.collect_perfect = collect_perfect
        self.warmup_fraction = warmup_fraction

        num_cmps = config.num_cmps
        cpc = config.cores_per_cmp
        num_cores = num_cmps * cpc
        num_sets = config.cache.num_sets
        # Per-core cache state: one dict per set, insertion order = LRU
        # order, values are [address, state_int, version] lists.  Sets
        # start as ``None`` placeholders and materialize on first touch
        # (from ``_pending_sets`` when a prewarm memo restored content
        # for them): a short run visits a small fraction of the
        # num_cores x num_sets grid, and skipping the untouched
        # majority makes construction - the prewarm restore above all -
        # nearly free.
        self._core_sets: List[List[Optional[Dict[int, List[int]]]]] = [
            [None] * num_sets for _ in range(num_cores)
        ]
        #: Lazily-restored prewarm content: per core, set index ->
        #: (address array, state array or None-for-all-E).
        self._pending_sets: List[Dict[int, tuple]] = [
            {} for _ in range(num_cores)
        ]
        self._supplier_of: Dict[int, Tuple[int, int]] = {}
        self._holder_count: Dict[int, int] = {}
        self._downgraded: set = set()
        self._mem_versions: Dict[int, int] = {}
        self._predictors: List[SupplierPredictor] = [
            build_predictor(config.predictor) for _ in range(num_cmps)
        ]
        # Prewarm-time stat/energy charges (an Exact predictor's
        # conflict downgrades fire during the walk, exactly as the
        # object core charges them on its construction-time stats).
        self._init_downgrades = 0
        self._init_downgrade_writebacks = 0
        self._init_e_downgrade_ops = 0.0
        self._init_e_downgrade_memory = 0.0
        for cmp_id, predictor in enumerate(self._predictors):
            if isinstance(predictor, ExactPredictor):
                predictor.set_downgrade_callback(
                    self._make_prewarm_downgrade(cmp_id)
                )
            elif isinstance(predictor, PerfectPredictor):
                predictor.set_truth(self._make_truth(cmp_id))
        self._ran = False
        self._apply_prewarm()

    # ------------------------------------------------------------------
    # Construction helpers

    def _make_truth(self, cmp_id: int) -> Callable[[int], bool]:
        supplier_of = self._supplier_of

        def truth(address: int) -> bool:
            entry = supplier_of.get(address)
            return entry is not None and entry[0] == cmp_id

        return truth

    def _make_prewarm_downgrade(self, cmp_id: int) -> Callable[[int], None]:
        """Exact conflict-downgrade handler for the prewarm phase
        (the run loop rebinds its own, counting into run-local
        accumulators); transliterates
        ``DataPathModel.make_downgrade_handler``."""

        def downgrade(address: int) -> None:
            cpc = self.config.cores_per_cmp
            num_sets = self.config.cache.num_sets
            base = cmp_id * cpc
            set_index = address % num_sets
            line = None
            local = 0
            for local in range(cpc):
                cache_set = self._core_sets[base + local][set_index]
                candidate = (
                    cache_set.get(address) if cache_set is not None else None
                )
                if candidate is not None and _SUP[candidate[1]]:
                    line = candidate
                    break
            if line is None:
                return
            if _DIRTY[line[1]]:
                version = line[2]
                current = self._mem_versions.get(address, 0)
                if version >= current:
                    self._mem_versions[address] = version
                self._init_downgrade_writebacks += 1
                self._init_e_downgrade_memory += (
                    self.config.energy.memory_line_access
                )
            # set_state(SL): supplier loss fires predictor removal then
            # registry cleanup, in the object core's callback order.
            line[1] = _SL
            self._predictors[cmp_id].remove(address)
            if self._supplier_of.get(address) == (cmp_id, local):
                del self._supplier_of[address]
            self._init_downgrades += 1
            self._init_e_downgrade_ops += (
                self.config.energy.downgrade_cache_access
            )
            self._downgraded.add(address)

        return downgrade

    # ------------------------------------------------------------------
    # Prewarm walk + memo

    def _apply_prewarm(self) -> None:
        """Install the workload's prewarm lines (transliteration of
        ``WarmupController.apply_prewarm`` over SoA structures).

        Unlike the object core's memo, the SoA memo also covers the
        Exact predictor: its conflict downgrades make the walk depend
        on the predictor configuration, so those entries are keyed by
        it - and a whole matrix column (every algorithm x one
        workload) then shares warmup state instead of re-walking.
        """
        source = self.source
        prewarm = source.prewarm()
        if not prewarm:
            return
        config = self.config
        kind = config.predictor.kind
        is_exact = kind == "exact"
        num_sets = config.cache.num_sets
        associativity = config.cache.associativity
        descriptor = source.descriptor()
        pin: object
        pred_key = config.predictor if is_exact else None
        if descriptor is not None:
            key = (
                "desc",
                descriptor_key(descriptor),
                num_sets,
                associativity,
                pred_key,
            )
            pin = source
            memo = _SOA_PREWARM_MEMOS.get(key)
            if memo is not None:
                self._restore_prewarm(memo)
                return
        else:
            trace = source.materialize()
            key = ("id", id(trace), num_sets, associativity, pred_key)
            pin = trace
            memo = _SOA_PREWARM_MEMOS.get(key)
            if memo is not None and memo.pin is trace:
                self._restore_prewarm(memo)
                return

        # Full walk.  ``ops`` records the predictor training stream so
        # a later machine with a *different* (non-exact) predictor can
        # restore from the same cache-content memo.  It is recorded
        # even when this run has no predictor table: the stream only
        # depends on cache geometry, and a predictor-less walk may be
        # the one that populates the memo a subset/superset run later
        # restores from.
        ops: Optional[List[List[int]]] = None if is_exact else []
        core_sets = self._core_sets
        # A full walk touches sets all over the grid, so materialize
        # every set eagerly and let the walk below run check-free.
        for core_id in range(len(core_sets)):
            core_sets[core_id] = [{} for _ in range(num_sets)]
        supplier_of = self._supplier_of
        holder_count = self._holder_count
        predictors = self._predictors
        cpc = config.cores_per_cmp
        has_pred_table = kind not in ("none", "perfect")
        for core_id, lines in enumerate(prewarm):
            cmp_id = core_id // cpc
            local_id = core_id % cpc
            home_key = (cmp_id, local_id)
            sets = core_sets[core_id]
            if has_pred_table:
                predictor_insert = predictors[cmp_id].insert
                predictor_remove = predictors[cmp_id].remove
            else:
                predictor_insert = predictor_remove = None  # type: ignore
            core_ops: List[int] = []
            if ops is not None:
                ops.append(core_ops)
            for address in reversed(lines):
                cache_set = sets[address % num_sets]
                line = cache_set.get(address)
                if line is not None:
                    # Duplicate prewarm line: generic fill-in-place
                    # (state callbacks fire if an Exact downgrade had
                    # demoted it to SL).
                    old_state = line[1]
                    line[1] = _E
                    line[2] = 0
                    if not _SUP[old_state]:
                        existing = supplier_of.get(address)
                        if existing is not None and existing != home_key:
                            raise CoherenceError(
                                "line %#x gained supplier at %s while %s "
                                "still holds it"
                                % (address, home_key, existing)
                            )
                        supplier_of[address] = home_key
                        if predictor_insert is not None:
                            predictor_insert(address)
                    del cache_set[address]
                    cache_set[address] = line
                    continue
                if len(cache_set) >= associativity:
                    victim_address = next(iter(cache_set))
                    victim = cache_set.pop(victim_address)
                    if _SUP[victim[1]]:
                        if ops is not None:
                            core_ops.append(~victim_address)
                        if predictor_remove is not None:
                            predictor_remove(victim_address)
                        if supplier_of.get(victim_address) == home_key:
                            del supplier_of[victim_address]
                    count = holder_count.get(victim_address, 0) - 1
                    if count <= 0:
                        holder_count.pop(victim_address, None)
                    else:
                        holder_count[victim_address] = count
                cache_set[address] = [address, _E, 0]
                holder_count[address] = holder_count.get(address, 0) + 1
                existing = supplier_of.get(address)
                if existing is not None and existing != home_key:
                    raise CoherenceError(
                        "line %#x gained supplier at %s while %s still "
                        "holds it" % (address, home_key, existing)
                    )
                supplier_of[address] = home_key
                if ops is not None:
                    core_ops.append(address)
                if predictor_insert is not None:
                    predictor_insert(address)
        self._record_prewarm(key, ops, pin)

    def _record_prewarm(
        self,
        key: tuple,
        ops: Optional[List[List[int]]],
        pin: object,
    ) -> None:
        is_exact = self.config.predictor.kind == "exact"
        core_lines: List[Dict[int, Tuple[Any, Any]]] = []
        for sets in self._core_sets:
            recorded: Dict[int, Tuple[Any, Any]] = {}
            for set_index, cache_set in enumerate(sets):
                if not cache_set:
                    continue
                addresses = np.fromiter(
                    cache_set, dtype=np.int64, count=len(cache_set)
                )
                states = None
                if is_exact:
                    states = np.fromiter(
                        (line[1] for line in cache_set.values()),
                        dtype=np.int8,
                        count=len(cache_set),
                    )
                recorded[set_index] = (addresses, states)
            core_lines.append(recorded)
        memo = _SoaPrewarmMemo(
            pin,
            core_lines,
            dict(self._holder_count),
            dict(self._supplier_of),
            ops,
        )
        if is_exact:
            memo.downgraded = frozenset(self._downgraded)
            memo.downgrades = self._init_downgrades
            memo.e_downgrade_ops = self._init_e_downgrade_ops
        self._store_predictor_snapshot(memo)
        _SOA_PREWARM_MEMOS[key] = memo
        while len(_SOA_PREWARM_MEMOS) > _SOA_PREWARM_MEMO_LIMIT:
            _SOA_PREWARM_MEMOS.popitem(last=False)

    def _restore_prewarm(self, memo: _SoaPrewarmMemo) -> None:
        # Don't build the line dicts here: a short run touches a small
        # fraction of the restored sets, so the memo's per-core array
        # dicts become ``_pending_sets`` directly (shared, read-only -
        # ``materialize`` only reads them; re-entry is guarded by the
        # ``core_sets`` None check) and ``run()`` materializes a set
        # the first time something looks at it.
        self._pending_sets = memo.core_lines
        self._holder_count.update(memo.holder_count)
        self._supplier_of.update(memo.supplier_of)
        kind = self.config.predictor.kind
        if kind == "exact":
            self._downgraded.update(memo.downgraded)
            self._init_downgrades = memo.downgrades
            self._init_e_downgrade_ops = memo.e_downgrade_ops
        if kind in ("none", "perfect"):
            return
        snapshots = memo.predictor_snapshots.get(self.config.predictor)
        if snapshots is not None:
            for predictor, snapshot in zip(self._predictors, snapshots):
                predictor.prewarm_restore(snapshot)
            return
        assert memo.ops is not None
        cpc = self.config.cores_per_cmp
        for core_id, core_ops in enumerate(memo.ops):
            predictor = self._predictors[core_id // cpc]
            insert = predictor.insert
            remove = predictor.remove
            for op in core_ops:
                if op >= 0:
                    insert(op)
                else:
                    remove(~op)
        self._store_predictor_snapshot(memo)

    def _store_predictor_snapshot(self, memo: _SoaPrewarmMemo) -> None:
        if self.config.predictor.kind in ("none", "perfect"):
            return
        snapshots: List[object] = []
        for predictor in self._predictors:
            snapshot = predictor.prewarm_snapshot()
            if snapshot is None:
                return
            snapshots.append(snapshot)
        memo.predictor_snapshots[self.config.predictor] = snapshots

    # ------------------------------------------------------------------
    # Array-image export seam

    def export_cache_image(self, set_indices=None):
        """Yield ``(core_id, set_index, addresses, states)`` for every
        non-empty cache set, addresses in LRU-first order with
        integer-coded states.

        This is the construction-time image - materialized dicts plus
        lazily-pending prewarm arrays (whose ``None`` state array means
        all-``E``) - and is the seam a flat-array core (``core=jit``)
        imports its state through.  All versions are 0 at this point:
        prewarm installs version-0 lines only.

        ``set_indices`` restricts the export to those set indices (in
        every core): a run can only observe sets its address universe
        maps to, and skipping the untouched majority of a large
        prewarm footprint is what keeps flat-array construction
        proportional to the workload, not the prewarm.
        """
        if set_indices is None:
            indices = None
        else:
            indices = sorted(set_indices)
        for core_id, sets in enumerate(self._core_sets):
            pending = self._pending_sets[core_id]
            for set_index in (
                range(len(sets)) if indices is None else indices
            ):
                cache_set = sets[set_index]
                if cache_set is not None:
                    if not cache_set:
                        continue
                    lines = list(cache_set.values())
                    yield (
                        core_id,
                        set_index,
                        [line[0] for line in lines],
                        [line[1] for line in lines],
                    )
                else:
                    entry = pending.get(set_index)
                    if entry is None:
                        continue
                    addresses, states = entry
                    address_list = addresses.tolist()
                    yield (
                        core_id,
                        set_index,
                        address_list,
                        [_E] * len(address_list)
                        if states is None
                        else states.tolist(),
                    )

    # ------------------------------------------------------------------
    # The fused run loop

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        """Replay the workload to completion; one function frame holds
        the event heap, all machine state and every counter."""
        if self._ran:
            raise RuntimeError("a SoaRingMultiprocessor can only run once")
        self._ran = True

        config = self.config
        algorithm = self.algorithm
        source = self.source
        num_cmps = config.num_cmps
        cpc = config.cores_per_cmp
        num_cores = num_cmps * cpc
        num_sets = config.cache.num_sets
        associativity = config.cache.associativity
        snoop_time = config.ring.snoop_time
        batching = config.ring.hop_batching
        hit_latency = config.cache.hit_latency
        local_master_latency = config.cache.local_master_latency
        squash_backoff = config.squash_backoff
        prefetch_on_snoop = config.memory.prefetch_on_snoop
        mem_local = config.memory.local_round_trip
        mem_remote = config.memory.remote_round_trip
        mem_prefetched = config.memory.remote_round_trip_prefetched
        cost_ring = config.energy.ring_link_message
        cost_snoop = config.energy.cmp_snoop
        cost_dop = config.energy.downgrade_cache_access
        cost_dmem = config.energy.memory_line_access
        collect_perfect = self.collect_perfect

        # Topology tables hoisted for the fused loop: successor of each
        # node, outbound per-segment latency, inbound (entry) latency,
        # and the full data-network latency matrix.  A topology that
        # cannot export static tables needs the object core's dynamic
        # routing, so it is outside this core's envelope.
        topology = build_topology(config)
        try:
            succ, out_lat, in_lat = topology.export_tables()
        except TopologyTablesUnavailable as error:
            raise SoaUnsupportedError(
                "core=soa needs a table-exporting topology: %s; "
                "use core=object" % error
            ) from error
        torus_lat = [
            [
                topology.transfer_latency(src, dst)
                for dst in range(num_cmps)
            ]
            for src in range(num_cmps)
        ]

        uses_pred = algorithm.uses_predictor()
        decouple = algorithm.decouple_writes
        # Decision seam: a policy that publishes a static table is
        # hoisted into plain ints here and never called per hop; a
        # dynamic policy (table is None, e.g. SupersetHybrid with an
        # energy-pressure probe) keeps the per-hop Python call with a
        # full decision context.
        table = algorithm.decision_table()
        static_choice = table is not None
        if static_choice:
            prim_true = _PRIM_INT[table.on_true]
            prim_false = _PRIM_INT[table.on_false]
            crit_true = _PRIM_INT[table.critical_true]
            crit_false = _PRIM_INT[table.critical_false]
            retry_thr = table.retry_threshold
            waiter_thr = table.waiter_threshold
            has_crit = table.has_criticality()
            count_pred_true = table.counts == "pred_true"
            count_critical = table.counts == "critical"
        else:
            prim_true = prim_false = crit_true = crit_false = _P_FWD
            retry_thr = waiter_thr = 1 << 62
            has_crit = False
            count_pred_true = count_critical = False
        counted = static_choice and table.counts is not None
        #: counted-output tally (folded back into the algorithm's
        #: declared counter after the run; never reset at warmup end,
        #: matching the object core's counters)
        choice_count = 0
        choose = algorithm.choose
        # Ring age of a message at each node = successor-cycle distance
        # from its requester (only the dynamic decision path reads it).
        if not static_choice:
            ring_dist = [[0] * num_cmps for _ in range(num_cmps)]
            for _src in range(num_cmps):
                _node, _d = _src, 0
                while True:
                    _node = succ[_node]
                    _d += 1
                    ring_dist[_src][_node] = _d
                    if _node == _src:
                        break
        else:
            ring_dist = []
        predictors = self._predictors
        is_perfect = isinstance(predictors[0], PerfectPredictor)
        kind = config.predictor.kind
        is_superset = kind == "superset"
        pred_latency = 0 if is_perfect else predictors[0].latency
        pred_lookup = [p.lookup for p in predictors]
        pred_insert = [p.insert for p in predictors]
        pred_remove = [p.remove for p in predictors]
        pred_observe = [p.observe_false_positive for p in predictors]
        has_pred_table = kind not in ("none", "perfect")

        core_sets = self._core_sets
        pending_sets = self._pending_sets
        supplier_of = self._supplier_of
        holder_count = self._holder_count
        downgraded = self._downgraded
        mem_versions = self._mem_versions

        def materialize(core_id: int, set_index: int) -> Dict[int, List[int]]:
            """Build a cache set on first touch.  Restored prewarm
            content waits in ``pending_sets`` as numpy arrays (shared
            read-only with the memo) until something actually looks at
            the set; everything else starts empty.  Access sites check
            ``is None`` inline and only pay this call once per touched
            set."""
            data = pending_sets[core_id].get(set_index)
            if data is None:
                cache_set: Dict[int, List[int]] = {}
            elif data[1] is None:
                cache_set = {
                    address: [address, _E, 0]
                    for address in data[0].tolist()
                }
            else:
                cache_set = {
                    address: [address, state, 0]
                    for address, state in zip(
                        data[0].tolist(), data[1].tolist()
                    )
                }
            core_sets[core_id][set_index] = cache_set
            return cache_set

        # Requester criticality: retry count of each core's current
        # access (reset at fresh issue, bumped per retry, snapshotted
        # onto the transaction record at ring issue).
        core_retries = [0] * num_cores

        # --- measurement state (single-frame locals) -------------------
        reads = writes = 0
        read_hits_local_cache = read_hits_local_master = 0
        write_hits_exclusive = 0
        read_ring_transactions = read_snoops = read_ring_crossings = 0
        reads_supplied_by_cache = reads_supplied_by_memory = 0
        reads_prefetched = 0
        write_ring_transactions = write_snoops = write_ring_crossings = 0
        writes_supplied_by_cache = writes_supplied_by_memory = 0
        squashes = retries = mshr_queued = 0
        a_tp = a_tn = a_fp = a_fn = 0  # predictor accuracy
        p_tp = p_tn = 0  # perfect-predictor accuracy (TP/TN only)
        writebacks = dirty_evictions = 0
        downgrades = self._init_downgrades
        downgrade_writebacks = self._init_downgrade_writebacks
        downgrade_rereads = 0
        read_miss_latency_sum = read_miss_count = 0
        supplier_latency_sum = supplier_latency_count = 0
        histogram = LatencyHistogram()
        e_ring = e_snoop = 0.0
        e_dops = self._init_e_downgrade_ops
        e_dmem = self._init_e_downgrade_memory

        # --- machine state --------------------------------------------
        heap: List[tuple] = []
        push = heapq.heappush
        pop = heapq.heappop
        seq = 0
        now = 0
        processed = 0
        write_counter = 0
        active: Dict[int, List[list]] = {}

        total_accesses = source.total_accesses()
        warmup_target = (
            int(total_accesses * self.warmup_fraction)
            if self.warmup_fraction > 0.0
            else 0
        )
        in_warmup = warmup_target > 0
        completed = 0
        warmup_end_time = 0

        cores: List[list] = []
        for i in range(num_cores):
            stream = iter(source.core_stream(i))
            first = next(stream, None)
            cores.append([i, i // cpc, i % cpc, stream, first, None])

        # --- fused subsystem closures ---------------------------------

        def end_warmup() -> None:
            nonlocal in_warmup, warmup_end_time, reads, writes
            nonlocal read_hits_local_cache, read_hits_local_master
            nonlocal write_hits_exclusive, read_ring_transactions
            nonlocal read_snoops, read_ring_crossings
            nonlocal reads_supplied_by_cache, reads_supplied_by_memory
            nonlocal reads_prefetched, write_ring_transactions
            nonlocal write_snoops, write_ring_crossings
            nonlocal writes_supplied_by_cache, writes_supplied_by_memory
            nonlocal squashes, retries, mshr_queued
            nonlocal a_tp, a_tn, a_fp, a_fn, p_tp, p_tn
            nonlocal writebacks, dirty_evictions, downgrades
            nonlocal downgrade_writebacks, downgrade_rereads
            nonlocal read_miss_latency_sum, read_miss_count
            nonlocal supplier_latency_sum, supplier_latency_count
            nonlocal histogram, e_ring, e_snoop, e_dops, e_dmem
            in_warmup = False
            warmup_end_time = now
            reads = writes = 0
            read_hits_local_cache = read_hits_local_master = 0
            write_hits_exclusive = 0
            read_ring_transactions = read_snoops = read_ring_crossings = 0
            reads_supplied_by_cache = reads_supplied_by_memory = 0
            reads_prefetched = 0
            write_ring_transactions = write_snoops = write_ring_crossings = 0
            writes_supplied_by_cache = writes_supplied_by_memory = 0
            squashes = retries = mshr_queued = 0
            a_tp = a_tn = a_fp = a_fn = 0
            p_tp = p_tn = 0
            writebacks = dirty_evictions = 0
            downgrades = downgrade_writebacks = downgrade_rereads = 0
            read_miss_latency_sum = read_miss_count = 0
            supplier_latency_sum = supplier_latency_count = 0
            histogram = LatencyHistogram()
            e_ring = e_snoop = e_dops = e_dmem = 0.0
            for predictor in predictors:
                predictor.lookups = 0
                predictor.updates = 0

        if has_pred_table and kind == "exact":
            # Rebind the conflict-downgrade callback to a run-phase
            # handler charging the loop-local accumulators.
            def _make_run_downgrade(cmp_id: int) -> Callable[[int], None]:
                remove = pred_remove[cmp_id]
                base = cmp_id * cpc

                def downgrade(address: int) -> None:
                    nonlocal downgrades, downgrade_writebacks
                    nonlocal e_dops, e_dmem, writebacks
                    line = None
                    local = 0
                    set_index = address % num_sets
                    for local in range(cpc):
                        cache_set = core_sets[base + local][set_index]
                        if cache_set is None:
                            # A never-touched set without pending
                            # prewarm content cannot hold the line.
                            if set_index not in pending_sets[base + local]:
                                continue
                            cache_set = materialize(base + local, set_index)
                        candidate = cache_set.get(address)
                        if candidate is not None and _SUP[candidate[1]]:
                            line = candidate
                            break
                    if line is None:
                        return
                    if _DIRTY[line[1]]:
                        version = line[2]
                        if version >= mem_versions.get(address, 0):
                            mem_versions[address] = version
                        downgrade_writebacks += 1
                        e_dmem += cost_dmem
                    line[1] = _SL
                    remove(address)
                    if supplier_of.get(address) == (cmp_id, local):
                        del supplier_of[address]
                    downgrades += 1
                    e_dops += cost_dop
                    downgraded.add(address)

                return downgrade

            for cmp_id, predictor in enumerate(predictors):
                predictor.set_downgrade_callback(  # type: ignore[attr-defined]
                    _make_run_downgrade(cmp_id)
                )

        def fill(core: list, address: int, state: int, version: int) -> None:
            nonlocal dirty_evictions, writebacks
            cmp_id = core[1]
            local_id = core[2]
            set_index = address % num_sets
            cache_set = core_sets[core[0]][set_index]
            if cache_set is None:
                cache_set = materialize(core[0], set_index)
            line = cache_set.get(address)
            if line is not None:
                old_state = line[1]
                line[1] = state
                if _SUP[old_state]:
                    if not _SUP[state]:
                        # supplier loss: predictor, then registry.
                        if has_pred_table:
                            pred_remove[cmp_id](address)
                        if supplier_of.get(address) == (cmp_id, local_id):
                            del supplier_of[address]
                elif _SUP[state]:
                    existing = supplier_of.get(address)
                    if existing is not None and existing != (
                        cmp_id,
                        local_id,
                    ):
                        raise CoherenceError(
                            "line %#x gained supplier at %s while %s "
                            "still holds it"
                            % (address, (cmp_id, local_id), existing)
                        )
                    supplier_of[address] = (cmp_id, local_id)
                    if has_pred_table:
                        pred_insert[cmp_id](address)
                line[2] = version
                del cache_set[address]
                cache_set[address] = line
                return
            if len(cache_set) >= associativity:
                victim_address = next(iter(cache_set))
                victim = cache_set.pop(victim_address)
                victim_state = victim[1]
                if _SUP[victim_state]:
                    if has_pred_table:
                        pred_remove[cmp_id](victim_address)
                    if supplier_of.get(victim_address) == (cmp_id, local_id):
                        del supplier_of[victim_address]
                count = holder_count.get(victim_address, 0) - 1
                if count <= 0:
                    holder_count.pop(victim_address, None)
                else:
                    holder_count[victim_address] = count
                if _DIRTY[victim_state]:
                    dirty_evictions += 1
                    version_out = victim[2]
                    if version_out >= mem_versions.get(victim_address, 0):
                        mem_versions[victim_address] = version_out
                    writebacks += 1
            cache_set[address] = [address, state, version]
            holder_count[address] = holder_count.get(address, 0) + 1
            if _SUP[state]:
                existing = supplier_of.get(address)
                if existing is not None and existing != (cmp_id, local_id):
                    raise CoherenceError(
                        "line %#x gained supplier at %s while %s still "
                        "holds it" % (address, (cmp_id, local_id), existing)
                    )
                supplier_of[address] = (cmp_id, local_id)
                if has_pred_table:
                    pred_insert[cmp_id](address)

        def invalidate_all(cmp_id: int, address: int) -> None:
            base = cmp_id * cpc
            set_index = address % num_sets
            for local_id in range(cpc):
                cache_set = core_sets[base + local_id][set_index]
                if cache_set is None:
                    if set_index not in pending_sets[base + local_id]:
                        continue
                    cache_set = materialize(base + local_id, set_index)
                line = cache_set.pop(address, None)
                if line is None:
                    continue
                if _SUP[line[1]]:
                    if has_pred_table:
                        pred_remove[cmp_id](address)
                    if supplier_of.get(address) == (cmp_id, local_id):
                        del supplier_of[address]
                count = holder_count.get(address, 0) - 1
                if count <= 0:
                    holder_count.pop(address, None)
                else:
                    holder_count[address] = count

        def retire(txn: list) -> None:
            nonlocal seq
            if txn[_T_RET]:
                return
            txn[_T_RET] = True
            address = txn[_T_ADDR]
            active_list = active.get(address)
            if active_list and txn in active_list:
                active_list.remove(txn)
                if not active_list:
                    del active[address]
            waiters = txn[_T_WAIT]
            if waiters:
                txn[_T_WAIT] = []
                for waiter in waiters:
                    seq += 1
                    push(heap, (now, seq, _OP_REISSUE, waiter, 0))

        def complete_access(core: list, at_time: int) -> None:
            nonlocal completed, seq
            core[_K_CUR] = current = next(core[_K_STREAM], None)
            completed += 1
            if in_warmup and completed >= warmup_target:
                end_warmup()
            if current is None:
                core[_K_FIN] = at_time
                return
            if at_time < now:
                at_time = now
            seq += 1
            push(
                heap,
                (at_time + current.think_time, seq, _OP_ISSUE, core, 0),
            )

        def walk(txn: list, node_id: int, at: int, entering: bool) -> None:
            """Process the ring walk from ``node_id``: the arrival at
            that node when ``entering``, else the initial forward out
            of the requester.  Batches consecutive hops inline exactly
            where the object core's walker does."""
            nonlocal seq, read_ring_crossings, write_ring_crossings
            nonlocal e_ring, e_snoop, read_snoops, write_snoops
            nonlocal p_tp, p_tn, a_tp, a_tn, a_fp, a_fn
            nonlocal reads_supplied_by_cache, supplier_latency_sum
            nonlocal supplier_latency_count, writes_supplied_by_cache
            nonlocal choice_count
            requester = txn[_T_REQ]
            is_write = txn[_T_WRITE]
            address = txn[_T_ADDR]
            while True:
                if entering:
                    if node_id == requester:
                        # _walk_returned: the final reply crossing.
                        if txn[_T_SPLIT]:
                            info_time = txn[_T_REPLY] + in_lat[requester]
                            e_ring += cost_ring
                            if is_write:
                                write_ring_crossings += 1
                            else:
                                read_ring_crossings += 1
                        else:
                            info_time = at
                        if info_time < at:
                            info_time = at
                        seq += 1
                        push(heap, (info_time, seq, _OP_WALKDONE, txn, 0))
                        return
                    if txn[_T_SPLIT]:
                        # Advance the trailing reply into this node.
                        txn[_T_REPLY] += in_lat[node_id]
                        e_ring += cost_ring
                        if is_write:
                            write_ring_crossings += 1
                        else:
                            read_ring_crossings += 1
                    if txn[_T_SQ] or txn[_T_SAT]:
                        departure = at
                    elif is_write:
                        # ------------------- write step ----------------
                        entry = supplier_of.get(address)
                        supplier_here = (
                            entry is not None and entry[0] == node_id
                        )
                        snoop_done = at + snoop_time
                        if decouple:
                            # FORWARD_THEN_SNOOP
                            if txn[_T_SPLIT]:
                                reply_time = txn[_T_REPLY]
                                if snoop_done > reply_time:
                                    reply_time = snoop_done
                            else:
                                reply_time = snoop_done
                            txn[_T_SPLIT] = True
                            txn[_T_REPLY] = reply_time
                            departure = at
                        else:
                            # SNOOP_THEN_FORWARD, never the supplier.
                            if txn[_T_SPLIT]:
                                departure = txn[_T_REPLY]
                                if snoop_done > departure:
                                    departure = snoop_done
                                if txn[_T_SATR]:
                                    txn[_T_SAT] = True
                                txn[_T_SPLIT] = False
                                txn[_T_REPLY] = 0
                            else:
                                departure = snoop_done
                        write_snoops += 1
                        e_snoop += cost_snoop
                        if (
                            supplier_here
                            and txn[_T_NEEDS]
                            and txn[_T_DA] is None
                        ):
                            # capture_write_supply
                            base = node_id * cpc
                            set_index = address % num_sets
                            for local_id in range(cpc):
                                cache_set = core_sets[base + local_id][
                                    set_index
                                ]
                                if cache_set is None:
                                    if (
                                        set_index
                                        not in pending_sets[base + local_id]
                                    ):
                                        continue
                                    cache_set = materialize(
                                        base + local_id, set_index
                                    )
                                line = cache_set.get(address)
                                if line is not None and _SUP[line[1]]:
                                    break
                            txn[_T_SVER] = line[2]
                            txn[_T_DA] = (
                                snoop_done + torus_lat[node_id][requester]
                            )
                            writes_supplied_by_cache += 1
                        seq += 1
                        push(
                            heap,
                            (snoop_done, seq, _OP_INVAL, node_id, address),
                        )
                    else:
                        # ------------------- read step -----------------
                        entry = supplier_of.get(address)
                        supplier_here = (
                            entry is not None and entry[0] == node_id
                        )
                        if (
                            collect_perfect
                            and not txn[_T_SATR]
                            and not txn[_T_SAT]
                        ):
                            if supplier_here:
                                p_tp += 1
                            else:
                                p_tn += 1
                        if uses_pred:
                            if is_perfect:
                                predictors[node_id].lookups += 1
                                prediction = supplier_here
                            else:
                                prediction = pred_lookup[node_id](address)
                                if prediction:
                                    if supplier_here:
                                        a_tp += 1
                                    else:
                                        a_fp += 1
                                else:
                                    if supplier_here:
                                        a_fn += 1
                                    else:
                                        a_tn += 1
                            plat = pred_latency
                        else:
                            prediction = True
                            plat = 0
                        if static_choice:
                            if has_crit and (
                                txn[_T_RETRY] >= retry_thr
                                or len(txn[_T_WAIT]) >= waiter_thr
                            ):
                                primitive = (
                                    crit_true if prediction else crit_false
                                )
                                if count_critical:
                                    choice_count += 1
                            else:
                                primitive = (
                                    prim_true if prediction else prim_false
                                )
                            if count_pred_true and prediction:
                                choice_count += 1
                        else:
                            primitive = _PRIM_INT[
                                choose(
                                    DecisionContext(
                                        prediction,
                                        retries=txn[_T_RETRY],
                                        waiters=len(txn[_T_WAIT]),
                                        ring_age=ring_dist[txn[_T_REQ]][
                                            node_id
                                        ],
                                    )
                                )
                            ]
                        if primitive == _P_FWD:
                            if supplier_here:
                                raise CoherenceError(
                                    "algorithm %s filtered the snoop at the "
                                    "supplier node (false negative on line "
                                    "%#x at CMP %d)"
                                    % (algorithm.name, address, node_id)
                                )
                            if (
                                prefetch_on_snoop
                                and node_id == address % num_cmps
                                and not txn[_T_PREF]
                                and not txn[_T_SATR]
                            ):
                                txn[_T_PREF] = True
                            departure = at + plat
                        else:
                            start = at + plat
                            snoop_done = start + snoop_time
                            supplied = False
                            if primitive == _P_STF:
                                if supplier_here:
                                    txn[_T_SAT] = True
                                    txn[_T_SATR] = True
                                    txn[_T_SPLIT] = False
                                    txn[_T_REPLY] = 0
                                    departure = snoop_done
                                    supplied = True
                                elif txn[_T_SPLIT]:
                                    departure = txn[_T_REPLY]
                                    if snoop_done > departure:
                                        departure = snoop_done
                                    if txn[_T_SATR]:
                                        txn[_T_SAT] = True
                                    txn[_T_SPLIT] = False
                                    txn[_T_REPLY] = 0
                                else:
                                    departure = snoop_done
                            else:
                                # FORWARD_THEN_SNOOP
                                if txn[_T_SPLIT]:
                                    reply_time = txn[_T_REPLY]
                                    if snoop_done > reply_time:
                                        reply_time = snoop_done
                                else:
                                    reply_time = snoop_done
                                if supplier_here:
                                    txn[_T_SATR] = True
                                    supplied = True
                                txn[_T_SPLIT] = True
                                txn[_T_REPLY] = reply_time
                                departure = start
                            read_snoops += 1
                            e_snoop += cost_snoop
                            if (
                                is_superset
                                and uses_pred
                                and not supplier_here
                                and prediction
                            ):
                                pred_observe[node_id](address)
                            if supplied:
                                # supply_read
                                base = node_id * cpc
                                set_index = address % num_sets
                                for local_id in range(cpc):
                                    cache_set = core_sets[base + local_id][
                                        set_index
                                    ]
                                    if cache_set is None:
                                        if (
                                            set_index
                                            not in pending_sets[
                                                base + local_id
                                            ]
                                        ):
                                            continue
                                        cache_set = materialize(
                                            base + local_id, set_index
                                        )
                                    line = cache_set.get(address)
                                    if line is not None and _SUP[line[1]]:
                                        break
                                line[1] = _NEXT_ON_READ[line[1]]
                                txn[_T_SVER] = line[2]
                                data_arrival = (
                                    snoop_done
                                    + torus_lat[node_id][requester]
                                )
                                txn[_T_DA] = data_arrival
                                reads_supplied_by_cache += 1
                                supplier_latency_sum += (
                                    snoop_done - txn[_T_ISSUE]
                                )
                                supplier_latency_count += 1
                                seq += 1
                                push(
                                    heap,
                                    (
                                        data_arrival,
                                        seq,
                                        _OP_DELIVER_READ,
                                        txn,
                                        0,
                                    ),
                                )
                            if (
                                prefetch_on_snoop
                                and node_id == address % num_cmps
                                and not txn[_T_PREF]
                                and not txn[_T_SATR]
                            ):
                                txn[_T_PREF] = True
                else:
                    departure = at
                    entering = True
                # ----------------------- forward_request ---------------
                e_ring += cost_ring
                if is_write:
                    write_ring_crossings += 1
                else:
                    read_ring_crossings += 1
                arrival = departure + out_lat[node_id]
                to_node = succ[node_id]
                if (
                    batching
                    and not in_warmup
                    and (txn[_T_SQ] or txn[_T_SAT])
                    and to_node != requester
                ):
                    node_id = to_node
                    at = arrival
                    continue
                txn[_T_NEXT] = to_node
                seq += 1
                push(heap, (arrival, seq, _OP_STEP, txn, 0))
                return

        def handle_read(core: list) -> None:
            nonlocal reads, read_hits_local_cache, read_hits_local_master
            reads += 1
            address = core[_K_CUR].address
            set_index = address % num_sets
            cache_set = core_sets[core[0]][set_index]
            if cache_set is None:
                cache_set = materialize(core[0], set_index)
            line = cache_set.get(address)
            if line is not None:
                read_hits_local_cache += 1
                del cache_set[address]
                cache_set[address] = line
                complete_access(core, now + hit_latency)
                return
            if cpc == 1:
                # A single-core CMP is its own local master, so the
                # scan below would only repeat the failed lookup.
                start_ring(core, address, False)
                return
            base = core[1] * cpc
            master_line = None
            master_local = 0
            for master_local in range(cpc):
                master_set = core_sets[base + master_local][set_index]
                if master_set is None:
                    master_set = materialize(base + master_local, set_index)
                candidate = master_set.get(address)
                if candidate is not None and _LM[candidate[1]]:
                    master_line = candidate
                    break
            if master_line is not None:
                master_set = core_sets[base + master_local][set_index]
                del master_set[address]
                master_set[address] = master_line
                read_hits_local_master += 1
                if _SUP[master_line[1]]:
                    master_line[1] = _NEXT_ON_READ[master_line[1]]
                fill(core, address, _S, master_line[2])
                complete_access(core, now + local_master_latency)
                return
            start_ring(core, address, False)

        def handle_write(core: list) -> None:
            nonlocal writes, write_hits_exclusive, write_counter
            writes += 1
            address = core[_K_CUR].address
            set_index = address % num_sets
            cache_set = core_sets[core[0]][set_index]
            if cache_set is None:
                cache_set = materialize(core[0], set_index)
            line = cache_set.get(address)
            if line is not None and (line[1] == _E or line[1] == _D):
                write_hits_exclusive += 1
                write_counter += 1
                line[1] = _D
                line[2] = write_counter
                # The object core's silent-upgrade path ends with an
                # own.lookup(address), which touches the LRU.
                del cache_set[address]
                cache_set[address] = line
                complete_access(core, now + hit_latency)
                return
            start_ring(core, address, True)

        def start_ring(core: list, address: int, is_write: bool) -> None:
            nonlocal mshr_queued, read_ring_transactions
            nonlocal write_ring_transactions
            cmp_id = core[1]
            active_list = active.get(address)
            squashed = False
            if active_list:
                for txn in active_list:
                    if txn[_T_REQ] == cmp_id:
                        txn[_T_WAIT].append(core)
                        mshr_queued += 1
                        return
                if is_write:
                    squashed = any(
                        not t[_T_RET] and not t[_T_SQ] for t in active_list
                    )
                else:
                    squashed = any(
                        not t[_T_RET] and not t[_T_SQ] and t[_T_WRITE]
                        for t in active_list
                    )
            txn = [
                is_write,  # _T_WRITE
                address,  # _T_ADDR
                cmp_id,  # _T_REQ
                core,  # _T_CORE
                now,  # _T_ISSUE
                False,  # _T_NEEDS
                None,  # _T_DA
                0,  # _T_SVER
                False,  # _T_PREF
                [],  # _T_WAIT
                False,  # _T_RET
                0,  # _T_NEXT
                False,  # _T_SPLIT
                0,  # _T_REPLY
                False,  # _T_SAT
                False,  # _T_SATR
                squashed,  # _T_SQ
                core_retries[core[_K_ID]],  # _T_RETRY
            ]
            if is_write:
                base = cmp_id * cpc
                set_index = address % num_sets
                needs_data = True
                for local_id in range(cpc):
                    cache_set = core_sets[base + local_id][set_index]
                    if cache_set is None:
                        if set_index not in pending_sets[base + local_id]:
                            continue
                        cache_set = materialize(base + local_id, set_index)
                    if address in cache_set:
                        needs_data = False
                        break
                txn[_T_NEEDS] = needs_data
            if active_list is not None:
                active_list.append(txn)
            else:
                active[address] = [txn]
            if not squashed:
                if is_write:
                    write_ring_transactions += 1
                else:
                    read_ring_transactions += 1
            walk(txn, cmp_id, now, False)

        def commit_write(txn: list, at_time: int) -> None:
            nonlocal write_counter
            write_counter += 1
            core = txn[_T_CORE]
            address = txn[_T_ADDR]
            invalidate_all(core[1], address)
            fill(core, address, _D, write_counter)
            complete_access(core, at_time)
            retire(txn)

        # --- start: every core's first access -------------------------
        for core in cores:
            current = core[_K_CUR]
            if current is not None:
                seq += 1
                push(heap, (current.think_time, seq, _OP_ISSUE, core, 0))
            else:
                core[_K_FIN] = 0

        # --- the event loop -------------------------------------------
        while heap:
            if max_events is not None and processed >= max_events:
                break
            event = pop(heap)
            now = event[0]
            op = event[2]
            processed += 1
            if op == _OP_STEP:
                txn = event[3]
                walk(txn, txn[_T_NEXT], now, True)
            elif op == _OP_ISSUE:
                core = event[3]
                core_retries[core[_K_ID]] = 0
                if core[_K_CUR].is_write:
                    handle_write(core)
                else:
                    handle_read(core)
            elif op == _OP_WALKDONE:
                txn = event[3]
                if txn[_T_SQ]:
                    retire(txn)
                    squashes += 1
                    seq += 1
                    push(
                        heap,
                        (now + squash_backoff, seq, _OP_RETRY, txn, 0),
                    )
                elif txn[_T_WRITE]:
                    # write_done(txn, now)
                    if txn[_T_NEEDS]:
                        data_arrival = txn[_T_DA]
                        if data_arrival is not None:
                            complete_at = (
                                data_arrival if data_arrival > now else now
                            )
                        else:
                            address = txn[_T_ADDR]
                            requester = txn[_T_REQ]
                            if address % num_cmps == requester:
                                latency = mem_local
                            elif txn[_T_PREF] and prefetch_on_snoop:
                                latency = mem_prefetched
                            else:
                                latency = mem_remote
                            writes_supplied_by_memory += 1
                            complete_at = now + latency
                    else:
                        complete_at = now
                    if complete_at > now:
                        seq += 1
                        push(
                            heap,
                            (complete_at, seq, _OP_COMMIT, txn, complete_at),
                        )
                    else:
                        commit_write(txn, complete_at)
                else:
                    # read_done(txn, now)
                    if txn[_T_SAT] or txn[_T_SATR]:
                        data_arrival = txn[_T_DA]
                        if data_arrival > now:
                            seq += 1
                            push(
                                heap,
                                (data_arrival, seq, _OP_RETIRE, txn, 0),
                            )
                        else:
                            retire(txn)
                    else:
                        address = txn[_T_ADDR]
                        requester = txn[_T_REQ]
                        home = address % num_cmps
                        if home == requester:
                            latency = mem_local
                        elif txn[_T_PREF] and prefetch_on_snoop:
                            latency = mem_prefetched
                        else:
                            latency = mem_remote
                        if txn[_T_PREF] and home != requester:
                            reads_prefetched += 1
                        reads_supplied_by_memory += 1
                        if address in downgraded:
                            if holder_count.get(address, 0) > 0:
                                e_dmem += cost_dmem
                                downgrade_rereads += 1
                            downgraded.discard(address)
                        data_arrival = now + latency
                        txn[_T_DA] = data_arrival
                        seq += 1
                        push(
                            heap,
                            (data_arrival, seq, _OP_DELIVER_MEM, txn, 0),
                        )
            elif op == _OP_DELIVER_READ:
                txn = event[3]
                fill(txn[_T_CORE], txn[_T_ADDR], _SL, txn[_T_SVER])
                latency = txn[_T_DA] - txn[_T_ISSUE]
                read_miss_latency_sum += latency
                read_miss_count += 1
                histogram.record(latency)
                complete_access(txn[_T_CORE], now)
            elif op == _OP_DELIVER_MEM:
                txn = event[3]
                address = txn[_T_ADDR]
                entry = supplier_of.get(address)
                if entry is not None:
                    supplier_cmp, supplier_local = entry
                    supplier_id = supplier_cmp * cpc + supplier_local
                    set_index = address % num_sets
                    cache_set = core_sets[supplier_id][set_index]
                    if cache_set is None:
                        cache_set = materialize(supplier_id, set_index)
                    line = cache_set[address]
                    line[1] = _NEXT_ON_READ[line[1]]
                    version = line[2]
                    state = _SL
                else:
                    version = mem_versions.get(address, 0)
                    state = (
                        _SG if holder_count.get(address, 0) > 0 else _E
                    )
                fill(txn[_T_CORE], address, state, version)
                latency = txn[_T_DA] - txn[_T_ISSUE]
                read_miss_latency_sum += latency
                read_miss_count += 1
                histogram.record(latency)
                complete_access(txn[_T_CORE], now)
                retire(txn)
            elif op == _OP_INVAL:
                invalidate_all(event[3], event[4])
            elif op == _OP_COMMIT:
                commit_write(event[3], event[4])
            elif op == _OP_RETIRE:
                retire(event[3])
            elif op == _OP_RETRY:
                txn = event[3]
                retries += 1
                core = txn[_T_CORE]
                core_retries[core[_K_ID]] += 1
                if core[_K_CUR].is_write:
                    writes -= 1
                    handle_write(core)
                else:
                    reads -= 1
                    handle_read(core)
            else:  # _OP_REISSUE
                core = event[3]
                if core[_K_CUR].is_write:
                    writes -= 1
                    handle_write(core)
                else:
                    reads -= 1
                    handle_read(core)

        # --- finalize --------------------------------------------------
        stats = RunStats()
        stats.reads = reads
        stats.writes = writes
        stats.read_hits_local_cache = read_hits_local_cache
        stats.read_hits_local_master = read_hits_local_master
        stats.write_hits_exclusive = write_hits_exclusive
        stats.read_ring_transactions = read_ring_transactions
        stats.read_snoops = read_snoops
        stats.read_ring_crossings = read_ring_crossings
        stats.reads_supplied_by_cache = reads_supplied_by_cache
        stats.reads_supplied_by_memory = reads_supplied_by_memory
        stats.reads_prefetched = reads_prefetched
        stats.write_ring_transactions = write_ring_transactions
        stats.write_snoops = write_snoops
        stats.write_ring_crossings = write_ring_crossings
        stats.writes_supplied_by_cache = writes_supplied_by_cache
        stats.writes_supplied_by_memory = writes_supplied_by_memory
        stats.squashes = squashes
        stats.retries = retries
        stats.mshr_queued = mshr_queued
        stats.accuracy = PredictorAccuracy(a_tp, a_tn, a_fp, a_fn)
        stats.perfect_accuracy = PredictorAccuracy(p_tp, p_tn, 0, 0)
        stats.writebacks = writebacks
        stats.dirty_evictions = dirty_evictions
        stats.downgrades = downgrades
        stats.downgrade_writebacks = downgrade_writebacks
        stats.downgrade_rereads = downgrade_rereads
        stats.read_miss_latency_sum = read_miss_latency_sum
        stats.read_miss_count = read_miss_count
        stats.supplier_latency_sum = supplier_latency_sum
        stats.supplier_latency_count = supplier_latency_count
        stats.read_miss_histogram = histogram
        stats.core_finish_times = [
            core[_K_FIN] if core[_K_FIN] is not None else -1
            for core in cores
        ]
        unfinished = [
            core[_K_ID] for core in cores if core[_K_FIN] is None
        ]
        if unfinished:
            raise RuntimeError(
                "simulation ended with unfinished cores: %s" % unfinished
            )
        finish = max(stats.core_finish_times, default=0)
        stats.exec_time = max(finish - warmup_end_time, 0)
        stats.events_scheduled = seq
        stats.events_fired = processed

        if counted:
            # Counted policy output (e.g. hybrid aggressive_choices,
            # criticality critical_choices): fold the fused loop's
            # tally back into the algorithm's declared counter.
            algorithm.fold_choice_counts(choice_count)

        energy = EnergyModel(config.energy, kind)
        breakdown = energy.breakdown
        breakdown.ring_links = e_ring
        breakdown.snoops = e_snoop
        breakdown.downgrade_ops = e_dops
        breakdown.downgrade_memory = e_dmem
        for predictor in predictors:
            energy.charge_predictor_lookup(predictor.lookups)
            energy.charge_predictor_update(predictor.updates)

        return SimulationResult(
            algorithm=algorithm.name,
            workload=source.name,
            stats=stats,
            energy=breakdown.as_dict(),
            exec_time=stats.exec_time,
            events=processed,
            config=config,
        )

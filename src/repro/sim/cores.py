"""The simulation-core registry kind: ``object`` vs ``soa`` vs ``jit``.

A *core* is the engine that actually advances a configured machine
over a workload: construction signature
``(config, algorithm, workload, *, collect_perfect, warmup_fraction,
trace_sink)`` and a single ``run()`` returning a
:class:`~repro.sim.system.SimulationResult`.  Three implementations are
registered:

* ``object`` - the default :class:`~repro.sim.system.RingMultiprocessor`:
  one Python object per subsystem (engine, walker, datapath,
  transaction manager), full observability (tracing sinks, invariant
  checking, link contention).
* ``soa`` - :class:`~repro.sim.soa.SoaRingMultiprocessor`: the
  struct-of-arrays fused hot loop.  Bit-identical ``summary()`` output
  for the supported configuration envelope (the golden and property
  suites enforce this), raises
  :class:`~repro.sim.soa.SoaUnsupportedError` outside it.
* ``jit`` - :class:`~repro.sim.jit.JitRingMultiprocessor`: the SoA
  state flattened into preallocated integer arrays and run by one
  fused kernel, compiled with numba when importable and executed as
  plain Python otherwise (same code body, so both paths are covered by
  the same equivalence suites).  Envelope is the SoA one minus
  algorithms with dynamic ``choose()`` pressure sources; raises
  :class:`~repro.sim.jit.JitUnsupportedError` outside it.

Select a core through :class:`~repro.harness.parallel.RunSpec`'s
``core`` field, ``ExperimentMatrix(core=...)``, or the CLI's
``--core`` flag.  Third-party cores can register under the
``flexsnoop.cores`` entry-point group.
"""

from __future__ import annotations

from repro.registry import REGISTRY
from repro.sim.jit import JitRingMultiprocessor
from repro.sim.soa import SoaRingMultiprocessor
from repro.sim.system import RingMultiprocessor

REGISTRY.register(
    "core",
    "object",
    RingMultiprocessor,
    metadata={
        "description": "per-subsystem object model (default; full "
        "observability: tracing, invariant checks, link contention)",
    },
)

REGISTRY.register(
    "core",
    "soa",
    SoaRingMultiprocessor,
    aliases=("vectorized", "fused"),
    metadata={
        "description": "struct-of-arrays fused event loop; "
        "bit-identical summaries within its supported envelope",
    },
)

REGISTRY.register(
    "core",
    "jit",
    JitRingMultiprocessor,
    aliases=("compiled", "kernel"),
    metadata={
        "description": "flat-array kernel over the SoA state, "
        "numba-compiled when importable with a pure-Python fallback; "
        "bit-identical summaries within its supported envelope",
    },
)

"""Data-path subsystem: torus data replies and home-memory timing.

Interface contract
==================

:class:`DataPathModel` owns everything that happens after the ring
walk has located (or failed to locate) a supplier: the data line's
trip over the topology's data network (the point-to-point torus on
the flat ring, hierarchical data rings on ``hier_ring`` - the model
only consumes :meth:`~repro.ring.topology.SnoopTopology.transfer_latency`),
home-memory reads (with the prefetch-heuristic latency hiding), write
commit, cache fills with eviction/writeback accounting, and the Exact
predictor's downgrade bookkeeping.

* **Inbound** (called by the :class:`~repro.sim.walker.RingWalker`):
  ``supply_read`` / ``capture_write_supply`` when a snoop hits the
  supplier, and ``read_done`` / ``write_done`` when the message
  returns to the requester.
* **Inbound** (called by the
  :class:`~repro.sim.transactions.TransactionManager` and the facade):
  ``fill`` installs a line in a requester cache, handling the evicted
  victim; ``make_downgrade_handler`` builds the per-CMP callback the
  Exact predictor invokes on replacement-driven downgrades.
* **Outbound**: completion flows back to the
  :class:`~repro.sim.transactions.TransactionManager`
  (``complete_access``, ``retire``, ``check_version``,
  ``note_write_completed``, ``allocate_write_version``).

State owned here: the ``_downgraded`` address set (lines the Exact
predictor downgraded, consumed by the memory-read accounting) and
references to the machine-wide supplier/holder indexes (shared by
object identity with the facade, which mutates them through the
LineRegistry hooks).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.coherence.protocol import (
    downgrade_state,
    requester_state_from_cache,
    requester_state_from_memory,
    supplier_next_state_on_read,
    writer_state,
)
from repro.obs.trace import NO_TXN, EventType, TraceEvent, TraceSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.coherence.cache import EvictionRecord
    from repro.coherence.states import LineState
    from repro.energy.model import EnergyModel
    from repro.metrics.stats import RunStats
    from repro.ring.node import CMPNode
    from repro.ring.topology import SnoopTopology
    from repro.sim.engine import EventEngine
    from repro.sim.memory import MainMemory
    from repro.sim.processor import Core
    from repro.sim.transactions import Transaction, TransactionManager
    from repro.sim.warmup import WarmupController


class DataPathModel:
    """Torus data-reply, home-memory and fill/eviction timing."""

    def __init__(
        self,
        engine: "EventEngine",
        nodes: List["CMPNode"],
        memory: "MainMemory",
        topology: "SnoopTopology",
        stats: "RunStats",
        energy: "EnergyModel",
        supplier_of: Dict[int, Tuple[int, int]],
        holder_count: Dict[int, int],
        trace: Optional[TraceSink] = None,
    ) -> None:
        self.engine = engine
        self.nodes = nodes
        self.memory = memory
        self.topology = topology
        self.stats = stats
        self.energy = energy
        self._supplier_of = supplier_of
        self._holder_count = holder_count
        self._downgraded: Set[int] = set()
        # None when tracing is off, so every emission site below costs
        # one attribute load plus an identity test.
        self._trace = trace

    def wire(
        self, txns: "TransactionManager", warmup: "WarmupController"
    ) -> None:
        """Bind the collaborating subsystems (called once by the
        facade, before any event fires)."""
        self._txns = txns

    def on_warmup_end(self, stats: "RunStats", energy: "EnergyModel") -> None:
        """Warmup reset notification: measurement restarts on the new
        stats/energy objects."""
        self.stats = stats
        self.energy = energy

    # ------------------------------------------------------------------
    # Supplier data replies

    def supply_read(
        self, txn: "Transaction", node_id: int, snoop_done: int
    ) -> None:
        node = self.nodes[node_id]
        found = node.supplier_line(txn.address)
        assert found is not None, "supplier vanished mid-transaction"
        supplier_core, line = found
        next_state = supplier_next_state_on_read(line.state)
        node.caches[supplier_core].set_state(txn.address, next_state)

        txn.supplier_cmp = node_id
        txn.supplied_version = line.version
        data_arrival = snoop_done + self.topology.transfer_latency(
            node_id, txn.requester_cmp
        )
        txn.data_arrival = data_arrival
        self.stats.reads_supplied_by_cache += 1
        self.stats.supplier_latency_sum += snoop_done - txn.issue_time
        self.stats.supplier_latency_count += 1
        trace = self._trace
        if trace is not None:
            msg = txn.msg
            trace.emit(
                TraceEvent(
                    snoop_done,
                    EventType.SUPPLY,
                    txn.txn_id,
                    node_id,
                    txn.address,
                    {
                        "kind": "read",
                        "form": (
                            "combined"
                            if msg is not None and msg.satisfied
                            else "reply"
                        ),
                        "version": line.version,
                        "data_arrival": data_arrival,
                    },
                )
            )
        self.engine.call_at(
            data_arrival, lambda: self._deliver_read_data(txn)
        )

    def capture_write_supply(
        self, txn: "Transaction", node_id: int, snoop_done: int
    ) -> None:
        """A write walk snooped the supplier and the writer's CMP has
        no copy: the data line travels the torus to the requester."""
        found = self.nodes[node_id].supplier_line(txn.address)
        assert found is not None
        _, line = found
        txn.supplied_version = line.version
        txn.supplier_cmp = node_id
        txn.data_arrival = snoop_done + self.topology.transfer_latency(
            node_id, txn.requester_cmp
        )
        self.stats.writes_supplied_by_cache += 1
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    snoop_done,
                    EventType.SUPPLY,
                    txn.txn_id,
                    node_id,
                    txn.address,
                    {
                        "kind": "write",
                        "form": "reply",
                        "version": line.version,
                        "data_arrival": txn.data_arrival,
                    },
                )
            )

    def _deliver_read_data(self, txn: "Transaction") -> None:
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    self.engine.now,
                    EventType.FILL,
                    txn.txn_id,
                    txn.requester_cmp,
                    txn.address,
                    {"source": "cache", "version": txn.supplied_version},
                )
            )
        self.fill(
            txn.core,
            txn.address,
            requester_state_from_cache(),
            txn.supplied_version,
        )
        self._txns.check_version(txn.address, txn.supplied_version, txn=txn)
        self._record_read_latency(txn)
        self._txns.complete_access(txn.core, self.engine.now)

    # ------------------------------------------------------------------
    # Walk completion

    def read_done(self, txn: "Transaction", info_time: int) -> None:
        msg = txn.msg
        assert msg is not None
        if msg.satisfied or msg.satisfied_reply:
            # Data delivery is already scheduled; retire once both the
            # reply has returned and the data has arrived.
            assert txn.data_arrival is not None
            retire_at = max(info_time, txn.data_arrival)
            if retire_at > self.engine.now:
                self.engine.call_at(
                    retire_at, lambda: self._txns.retire(txn)
                )
            else:
                self._txns.retire(txn)
            return

        # Negative response: fetch from the home memory.
        address = txn.address
        latency = self.memory.read_latency(
            txn.requester_cmp, address, txn.prefetch_initiated
        )
        if (
            txn.prefetch_initiated
            and self.memory.home_of(address) != txn.requester_cmp
        ):
            self.stats.reads_prefetched += 1
        self.stats.reads_supplied_by_memory += 1

        if address in self._downgraded:
            # The Exact predictor downgraded this line; had it not, a
            # cache could have supplied it.  Charge the re-read.
            if self._any_holder(address):
                self.energy.charge_downgrade_reread()
                self.stats.downgrade_rereads += 1
            self._downgraded.discard(address)

        data_arrival = info_time + latency
        txn.data_arrival = data_arrival
        self.engine.call_at(
            data_arrival, lambda: self._deliver_memory_data(txn)
        )

    def _deliver_memory_data(self, txn: "Transaction") -> None:
        address = txn.address
        # Reconcile with the global state *now*: a concurrent read from
        # another CMP may have installed a supplier after our walk
        # passed it (both walks found no supplier and both went to
        # memory).  In that case we take the shared role, keeping the
        # single-supplier invariant; the racing supplier can only be
        # clean (a write would have squashed this read), so memory's
        # data is current.
        supplier = self._find_global_supplier(address)
        if supplier is not None:
            node_id, core_id = supplier
            cache = self.nodes[node_id].caches[core_id]
            line = cache.lookup(address, touch=False)
            assert line is not None
            cache.set_state(
                address, supplier_next_state_on_read(line.state)
            )
            version = line.version
            state = requester_state_from_cache()
        else:
            version = self.memory.read(address)
            state = requester_state_from_memory(self._any_holder(address))
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    self.engine.now,
                    EventType.FILL,
                    txn.txn_id,
                    txn.requester_cmp,
                    address,
                    {
                        "source": (
                            "cache" if supplier is not None else "memory"
                        ),
                        "version": version,
                    },
                )
            )
        self.fill(txn.core, address, state, version)
        self._txns.check_version(address, version, txn=txn)
        self._record_read_latency(txn)
        self._txns.complete_access(txn.core, self.engine.now)
        self._txns.retire(txn)

    def write_done(self, txn: "Transaction", info_time: int) -> None:
        address = txn.address
        if txn.needs_data:
            if txn.data_arrival is not None:
                complete_at = max(info_time, txn.data_arrival)
            else:
                latency = self.memory.read_latency(
                    txn.requester_cmp, address, txn.prefetch_initiated
                )
                self.memory.read(address)
                self.stats.writes_supplied_by_memory += 1
                complete_at = info_time + latency
        else:
            complete_at = info_time

        if complete_at > self.engine.now:
            self.engine.call_at(
                complete_at, lambda: self._commit_write(txn, complete_at)
            )
        else:
            self._commit_write(txn, complete_at)

    def _commit_write(self, txn: "Transaction", at_time: int) -> None:
        core = txn.core
        address = txn.address
        node = self.nodes[core.cmp_id]
        # The version is allocated here, at commit, so that it is
        # consistent with the global serialization order of writes
        # (an owner's silent write that slipped in while this
        # transaction was in flight must order before it).
        txn.write_version = self._txns.allocate_write_version()
        # Local copies (including the writer's own old copy) are
        # invalidated on the CMP bus, then the writer installs the
        # dirty line.
        node.invalidate_all(address)
        trace = self._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    at_time,
                    EventType.FILL,
                    txn.txn_id,
                    core.cmp_id,
                    address,
                    {"source": "write", "version": txn.write_version},
                )
            )
        self.fill(core, address, writer_state(), txn.write_version)
        self._txns.note_write_completed(address, txn.write_version, at_time)
        self._txns.complete_access(core, at_time)
        self._txns.retire(txn)

    # ------------------------------------------------------------------
    # Cache mutation helpers

    def fill(
        self, core: "Core", address: int, state: "LineState", version: int
    ) -> None:
        cache = self.nodes[core.cmp_id].caches[core.local_id]
        victim = cache.fill(address, state, version)
        if victim is not None:
            self._handle_eviction(victim)

    def _handle_eviction(self, victim: "EvictionRecord") -> None:
        self.stats.dirty_evictions += victim.dirty
        if victim.dirty:
            self.memory.writeback(victim.address, victim.version)
            self.stats.writebacks += 1

    def make_downgrade_handler(self, cmp_id: int) -> Callable[[int], None]:
        def downgrade(address: int) -> None:
            node = self.nodes[cmp_id]
            core = node.find_downgrade_victim(address)
            if core is None:
                return
            cache = node.caches[core]
            line = cache.lookup(address, touch=False)
            assert line is not None
            new_state, needs_writeback = downgrade_state(line.state)
            if needs_writeback:
                self.memory.writeback(address, line.version)
                self.stats.downgrade_writebacks += 1
                self.energy.charge_downgrade_writeback()
            cache.set_state(address, new_state)
            self.stats.downgrades += 1
            self.energy.charge_downgrade()
            self._downgraded.add(address)
            trace = self._trace
            if trace is not None:
                trace.emit(
                    TraceEvent(
                        self.engine.now,
                        EventType.DOWNGRADE,
                        NO_TXN,
                        cmp_id,
                        address,
                        {"writeback": needs_writeback},
                    )
                )

        return downgrade

    # ------------------------------------------------------------------
    # Bookkeeping helpers

    def _any_holder(self, address: int) -> bool:
        return self._holder_count.get(address, 0) > 0

    def _find_global_supplier(
        self, address: int
    ) -> Optional[Tuple[int, int]]:
        """(cmp, core) of the machine-wide supplier copy, if any."""
        return self._supplier_of.get(address)

    def _record_read_latency(self, txn: "Transaction") -> None:
        assert txn.data_arrival is not None
        latency = txn.data_arrival - txn.issue_time
        self.stats.read_miss_latency_sum += latency
        self.stats.read_miss_count += 1
        self.stats.read_miss_histogram.record(latency)

"""Compiled-kernel fused simulation core (``core=jit``).

The third tier of the ``core`` registry kind: the SoA core's fused
event loop re-expressed over **preallocated flat integer arrays** so
the whole hot path - issue, ring walk, snoop, fill, invalidate,
retire - is one monomorphic kernel that `numba`_ can compile with
``@njit``.  When numba is not importable (the default container has
only numpy) the *same kernel body* runs as plain Python over lists:
one code body, two execution modes, bit-identical results either way.

Layout
------

* **Cache lines** live in three parallel arrays ``way_addr`` /
  ``way_state`` / ``way_ver`` with a fixed-capacity set layout
  (``(core * num_sets + set) * assoc + way``); ``set_len`` holds the
  fill level and LRU order is positional (victim at way 0, MRU last).
* **Addresses are dense**: every address the run can ever touch
  (trace, prewarm image, predictor tables) is remapped to a compact
  ``0..U-1`` index so registries (``sup_cmp``/``sup_loc``,
  ``holders``, ``down_flag``, ``mem_ver``, active-transaction lists)
  become direct-indexed arrays instead of dicts.  ``raw_of`` keeps
  the original address for set/home/bloom arithmetic.
* **The event heap** is an integer array-heap of five parallel arrays
  ``(time, seq, op, a, b)`` with the exact ``(time, seq)``
  lexicographic order of the SoA core's tuple heap (``seq`` is
  unique, so the order is total and identical).
* **Transactions** are rows of a flat ``tx`` array (stride
  :data:`_NT`); MSHR waiters sit in a per-transaction strip of
  ``tw``; per-address active lists are intrusive doubly-linked lists
  threaded through transaction slots.
* **Predictor state** is flattened per kind: subset/exact tables and
  the superset Exclude cache as fixed-associativity address arrays,
  the counting Bloom filter as one counter array per CMP, superset
  reference counts as a dense ``num_cmps x U`` array.

Equivalence contract
--------------------

Identical to the SoA core's: every counter increments at the same
simulated instant in the same relative event order, and every float
output is a sum of identically-ordered additions of one constant per
accumulator.  Two restructurings are proven order-neutral: the
warmup reset is deferred to the end of the dispatch iteration (no
counter-bearing code runs between ``complete_access`` and the arm
end in any arm), and the ring walk / write commit run as single
funnel blocks after dispatch (each arm sets at most one of them and
nothing follows them in their arm).

Envelope
--------

Everything outside the SoA envelope is outside this one too, plus
algorithms whose ``choose`` is not a pure function of the prediction
(the kernel cannot call back into Python).  The built-in seven and
``superset_hybrid`` without an energy-pressure source are supported;
:func:`check_jit_supported` raises :class:`JitUnsupportedError`
(a :class:`SoaUnsupportedError` subclass, so ``except`` sites and
the CLI fallback treat the two cores uniformly).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

import numpy as np

from repro.coherence.protocol import CoherenceError
from repro.config import MachineConfig
from repro.core.algorithms import SnoopingAlgorithm
from repro.core.predictors import PerfectPredictor
from repro.energy.model import EnergyModel
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.stats import PredictorAccuracy, RunStats
from repro.ring.topology import TopologyTablesUnavailable, build_topology
from repro.sim.soa import (
    _P_FTS,
    _P_FWD,
    _PRIM_INT,
    SoaRingMultiprocessor,
    SoaUnsupportedError,
    check_soa_supported,
)
from repro.sim.system import SimulationResult

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None

#: True when the ``@njit`` path is available in this interpreter.
NUMBA_AVAILABLE = _numba is not None

#: Environment variable forcing the pure-Python fallback even when
#: numba is importable (the CI fallback leg and A/B tests use it).
JIT_DISABLE_ENV = "FLEXSNOOP_JIT_DISABLE"

__all__ = [
    "JitRingMultiprocessor",
    "JitUnsupportedError",
    "NUMBA_AVAILABLE",
    "check_jit_supported",
]


class JitUnsupportedError(SoaUnsupportedError):
    """The requested configuration needs the object (or SoA) core."""


def check_jit_supported(
    config: MachineConfig,
    algorithm: Optional[SnoopingAlgorithm] = None,
    trace_sink: object = None,
) -> None:
    """Raise :class:`JitUnsupportedError` unless ``config`` (and
    ``algorithm``, when given) fit the compiled kernel's envelope.

    The config envelope is exactly the SoA core's.  On top of it the
    kernel requires the snooping algorithm to publish a static
    :class:`~repro.core.decision.DecisionTable` (the decision seam's
    contract): the table, its criticality thresholds, and its counted
    output are hoisted into plain kernel ints.  Every built-in
    qualifies - including ``superset_hybrid`` without an
    energy-pressure source and ``criticality`` - so the only excluded
    policies are genuinely dynamic ones (``decision_table()`` is
    None), whose ``choose`` must run as Python per hop.
    """
    try:
        check_soa_supported(config, trace_sink)
    except SoaUnsupportedError as error:
        raise JitUnsupportedError(
            str(error).replace("core=soa", "core=jit")
        ) from None
    if algorithm is None:
        return
    if algorithm.decision_table() is not None:
        return
    raise JitUnsupportedError(
        "core=jit does not support: algorithm %r (dynamic choose(), "
        "decision inputs %s); use core=object"
        % (algorithm.name, "/".join(algorithm.decision_inputs()))
    )


# ----------------------------------------------------------------------
# Kernel layout constants.

#: Transaction row stride.  Slots 0-15 mirror the SoA ``_T_*`` slots
#: (``DA`` uses -1 for "no data arrival yet"); 16-19 are the intrusive
#: active-list links and the MSHR waiter count; 20 is the requester's
#: retry-count snapshot (the decision context's ``retries`` field).
_NT = 21
# 0 write  1 addr(dense)  2 req cmp  3 core  4 issue  5 needs
# 6 da(-1) 7 sver  8 pref  9 retired  10 next node  11 split
# 12 reply 13 sat  14 satr  15 squashed
# 16 active-next  17 active-prev  18 in-active-list  19 waiter count
# 20 retry snapshot

# Event op codes (identical to the SoA core's).
_OP_ISSUE = 0
_OP_STEP = 1
_OP_WALKDONE = 2
_OP_INVAL = 3
_OP_RETRY = 4
_OP_DELIVER_READ = 5
_OP_DELIVER_MEM = 6
_OP_COMMIT = 7
_OP_RETIRE = 8
_OP_REISSUE = 9

# Predictor kind codes.
_PK_NONE = 0
_PK_PERFECT = 1
_PK_SUBSET = 2
_PK_EXACT = 3
_PK_SUPERSET = 4
_PKIND_OF = {
    "none": _PK_NONE,
    "perfect": _PK_PERFECT,
    "subset": _PK_SUBSET,
    "exact": _PK_EXACT,
    "superset": _PK_SUPERSET,
}


def _build(decorate, alloc_i64):
    """Build the kernel helper suite + main kernel.

    ``decorate`` is ``numba.njit`` or the identity; ``alloc_i64``
    allocates a zeroed int64 buffer (numpy array or plain list) and
    must itself be callable from decorated code.  Every helper below
    mutates arrays in place and reports scalar effects through return
    values, because the compiled mode has no closures or nonlocals.
    """

    @decorate
    def _heap_push(ht, hs, ho, ha, hb, n, t, s, op, a, b):
        """Push ``(t, s, op, a, b)``; returns the new size.  Order is
        lexicographic on ``(time, seq)`` - ``seq`` is unique, so this
        reproduces the tuple heap's total order exactly."""
        i = n
        while i > 0:
            p = (i - 1) >> 1
            if ht[p] < t or (ht[p] == t and hs[p] < s):
                break
            ht[i] = ht[p]
            hs[i] = hs[p]
            ho[i] = ho[p]
            ha[i] = ha[p]
            hb[i] = hb[p]
            i = p
        ht[i] = t
        hs[i] = s
        ho[i] = op
        ha[i] = a
        hb[i] = b
        return n + 1

    @decorate
    def _heap_pop(ht, hs, ho, ha, hb, n):
        """Pop the minimum; returns ``(t, s, op, a, b, new_size)``."""
        rt = ht[0]
        rs = hs[0]
        rop = ho[0]
        ra = ha[0]
        rb = hb[0]
        n -= 1
        if n > 0:
            t = ht[n]
            s = hs[n]
            op = ho[n]
            a = ha[n]
            b = hb[n]
            i = 0
            while True:
                c = 2 * i + 1
                if c >= n:
                    break
                r = c + 1
                if r < n and (
                    ht[r] < ht[c] or (ht[r] == ht[c] and hs[r] < hs[c])
                ):
                    c = r
                if ht[c] < t or (ht[c] == t and hs[c] < s):
                    ht[i] = ht[c]
                    hs[i] = hs[c]
                    ho[i] = ho[c]
                    ha[i] = ha[c]
                    hb[i] = hb[c]
                    i = c
                else:
                    break
            ht[i] = t
            hs[i] = s
            ho[i] = op
            ha[i] = a
            hb[i] = b
        return rt, rs, rop, ra, rb, n

    @decorate
    def _find_way(way_addr, off, ln, d):
        """Index of dense address ``d`` within a set, or -1."""
        for w in range(ln):
            if way_addr[off + w] == d:
                return w
        return -1

    @decorate
    def _touch_way(way_addr, way_state, way_ver, off, ln, w):
        """Move way ``w`` to the MRU position (end of the set)."""
        last = ln - 1
        if w == last:
            return
        a = way_addr[off + w]
        s = way_state[off + w]
        v = way_ver[off + w]
        for i in range(w, last):
            way_addr[off + i] = way_addr[off + i + 1]
            way_state[off + i] = way_state[off + i + 1]
            way_ver[off + i] = way_ver[off + i + 1]
        way_addr[off + last] = a
        way_state[off + last] = s
        way_ver[off + last] = v

    # -- set-associative predictor tables (subset/exact/exclude) ------
    # Layout: pt[(cmp * psets + set) * passoc + way], LRU-first like
    # the ``_AddressCache`` lists they mirror.

    @decorate
    def _pt_contains_touch(pt, ptlen, psets, passoc, cmp, raw, d):
        s = raw % psets
        b = cmp * psets + s
        off = b * passoc
        ln = ptlen[b]
        for w in range(ln):
            if pt[off + w] == d:
                last = ln - 1
                if w != last:
                    for i in range(w, last):
                        pt[off + i] = pt[off + i + 1]
                    pt[off + last] = d
                return 1
        return 0

    @decorate
    def _pt_insert(pt, ptlen, psets, passoc, cmp, raw, d):
        """Insert; returns the evicted victim (dense) or -1."""
        s = raw % psets
        b = cmp * psets + s
        off = b * passoc
        ln = ptlen[b]
        for w in range(ln):
            if pt[off + w] == d:
                last = ln - 1
                if w != last:
                    for i in range(w, last):
                        pt[off + i] = pt[off + i + 1]
                    pt[off + last] = d
                return -1
        if ln >= passoc:
            victim = pt[off]
            for i in range(ln - 1):
                pt[off + i] = pt[off + i + 1]
            pt[off + ln - 1] = d
            return victim
        pt[off + ln] = d
        ptlen[b] = ln + 1
        return -1

    @decorate
    def _pt_remove(pt, ptlen, psets, passoc, cmp, raw, d):
        s = raw % psets
        b = cmp * psets + s
        off = b * passoc
        ln = ptlen[b]
        for w in range(ln):
            if pt[off + w] == d:
                for i in range(w, ln - 1):
                    pt[off + i] = pt[off + i + 1]
                ptlen[b] = ln - 1
                return

    # -- counting Bloom filter (superset) -----------------------------
    # Layout: bl[cmp * ncnt + bloff[f] + field_index(raw, f)].

    @decorate
    def _bloom_add(bl, bloff, blshift, blmask, nf, ncnt, cmp, raw):
        base = cmp * ncnt
        for f in range(nf):
            bl[base + bloff[f] + ((raw >> blshift[f]) & blmask[f])] += 1

    @decorate
    def _bloom_discard(bl, bloff, blshift, blmask, nf, ncnt, cmp, raw):
        base = cmp * ncnt
        for f in range(nf):
            i = base + bloff[f] + ((raw >> blshift[f]) & blmask[f])
            if bl[i] <= 0:
                raise ValueError("bloom counter underflow")
            bl[i] -= 1

    @decorate
    def _bloom_query(bl, bloff, blshift, blmask, nf, ncnt, cmp, raw):
        base = cmp * ncnt
        for f in range(nf):
            if bl[base + bloff[f] + ((raw >> blshift[f]) & blmask[f])] <= 0:
                return 0
        return 1

    # -- predictor operations -----------------------------------------

    @decorate
    def _pred_lookup(
        pkind, pt, ptlen, psets, passoc,
        bl, bloff, blshift, blmask, nf, ncnt,
        ex, exlen, esets, easc, ex_hits,
        pred_lookups, cmp, raw, d,
    ):
        """Predictor lookup for table kinds (subset/exact/superset);
        returns the prediction as 0/1."""
        pred_lookups[cmp] += 1
        if pkind == 4:
            if _bloom_query(bl, bloff, blshift, blmask, nf, ncnt, cmp, raw) == 0:
                return 0
            if esets > 0 and _pt_contains_touch(
                ex, exlen, esets, easc, cmp, raw, d
            ):
                ex_hits[cmp] += 1
                return 0
            return 1
        return _pt_contains_touch(pt, ptlen, psets, passoc, cmp, raw, d)

    @decorate
    def _pred_remove(
        pkind, pt, ptlen, psets, passoc,
        bl, bloff, blshift, blmask, nf, ncnt,
        pres, nU, pred_updates, cmp, raw, d,
    ):
        """Training removal; idempotent exactly like the objects."""
        if pkind == 4:
            c = pres[cmp * nU + d]
            if c <= 0:
                return
            pred_updates[cmp] += 1
            _bloom_discard(bl, bloff, blshift, blmask, nf, ncnt, cmp, raw)
            pres[cmp * nU + d] = c - 1
            return
        pred_updates[cmp] += 1
        _pt_remove(pt, ptlen, psets, passoc, cmp, raw, d)

    @decorate
    def _pred_insert(
        pkind, pt, ptlen, psets, passoc,
        bl, bloff, blshift, blmask, nf, ncnt,
        ex, exlen, esets, easc,
        pres, nU, pextra, pred_updates,
        raw_of, way_addr, way_state, way_ver, set_len,
        sup_cmp, sup_loc, mem_ver, down_flag,
        num_sets, assoc, cpc, cmp, raw, d,
    ):
        """Training insert.  Returns ``(downgrades, downgrade_wbs)``
        increments (0/1 each) from the Exact predictor's conflict
        cascade; all other effects are in-place."""
        if pkind == 4:
            pred_updates[cmp] += 1
            _bloom_add(bl, bloff, blshift, blmask, nf, ncnt, cmp, raw)
            pres[cmp * nU + d] += 1
            if esets > 0:
                _pt_remove(ex, exlen, esets, easc, cmp, raw, d)
            return 0, 0
        pred_updates[cmp] += 1
        victim = _pt_insert(pt, ptlen, psets, passoc, cmp, raw, d)
        if victim < 0:
            return 0, 0
        pextra[cmp] += 1
        if pkind == 2:
            # Subset: the conflict silently drops the entry.
            return 0, 0
        # Exact: downgrade the victim line in the CMP (the run-phase
        # transliteration of ``_make_run_downgrade``).
        vraw = raw_of[victim]
        si = vraw % num_sets
        base = cmp * cpc
        floc = -1
        fw = -1
        for local in range(cpc):
            sl = (base + local) * num_sets + si
            off = sl * assoc
            w = _find_way(way_addr, off, set_len[sl], victim)
            if w >= 0 and way_state[off + w] >= 2:
                floc = local
                fw = off + w
                break
        if floc < 0:
            return 0, 0
        dgwb = 0
        if way_state[fw] >= 4:
            ver = way_ver[fw]
            if ver >= mem_ver[victim]:
                mem_ver[victim] = ver
            dgwb = 1
        way_state[fw] = 1
        # remove(victim): updates++, then (idempotent) table removal.
        pred_updates[cmp] += 1
        _pt_remove(pt, ptlen, psets, passoc, cmp, vraw, victim)
        if sup_cmp[victim] == cmp and sup_loc[victim] == floc:
            sup_cmp[victim] = -1
            sup_loc[victim] = -1
        down_flag[victim] = 1
        return 1, dgwb

    @decorate
    def _fill(
        core, cmp, local, d, raw, state, version,
        way_addr, way_state, way_ver, set_len,
        sup_cmp, sup_loc, holders, mem_ver, down_flag,
        raw_of, num_sets, assoc, cpc,
        pkind, pt, ptlen, psets, passoc,
        bl, bloff, blshift, blmask, nf, ncnt,
        ex, exlen, esets, easc, pres, nU, pextra, pred_updates,
    ):
        """Line fill; returns ``(dirty_evictions, writebacks,
        downgrades, downgrade_writebacks)`` increments (each 0/1)."""
        si = raw % num_sets
        sl = core * num_sets + si
        off = sl * assoc
        ln = set_len[sl]
        w = _find_way(way_addr, off, ln, d)
        if w >= 0:
            old = way_state[off + w]
            way_state[off + w] = state
            dg = 0
            dgwb = 0
            if old >= 2:
                if state < 2:
                    # supplier loss: predictor, then registry.
                    if pkind >= 2:
                        _pred_remove(
                            pkind, pt, ptlen, psets, passoc,
                            bl, bloff, blshift, blmask, nf, ncnt,
                            pres, nU, pred_updates, cmp, raw, d,
                        )
                    if sup_cmp[d] == cmp and sup_loc[d] == local:
                        sup_cmp[d] = -1
                        sup_loc[d] = -1
            elif state >= 2:
                if sup_cmp[d] >= 0 and (
                    sup_cmp[d] != cmp or sup_loc[d] != local
                ):
                    raise CoherenceError(
                        "line gained a supplier while another still holds it"
                    )
                sup_cmp[d] = cmp
                sup_loc[d] = local
                if pkind >= 2:
                    dg, dgwb = _pred_insert(
                        pkind, pt, ptlen, psets, passoc,
                        bl, bloff, blshift, blmask, nf, ncnt,
                        ex, exlen, esets, easc,
                        pres, nU, pextra, pred_updates,
                        raw_of, way_addr, way_state, way_ver, set_len,
                        sup_cmp, sup_loc, mem_ver, down_flag,
                        num_sets, assoc, cpc, cmp, raw, d,
                    )
            way_ver[off + w] = version
            _touch_way(way_addr, way_state, way_ver, off, ln, w)
            return 0, 0, dg, dgwb
        de = 0
        wb = 0
        if ln >= assoc:
            vd = way_addr[off]
            vst = way_state[off]
            vver = way_ver[off]
            for i in range(ln - 1):
                way_addr[off + i] = way_addr[off + i + 1]
                way_state[off + i] = way_state[off + i + 1]
                way_ver[off + i] = way_ver[off + i + 1]
            ln -= 1
            set_len[sl] = ln
            if vst >= 2:
                if pkind >= 2:
                    _pred_remove(
                        pkind, pt, ptlen, psets, passoc,
                        bl, bloff, blshift, blmask, nf, ncnt,
                        pres, nU, pred_updates, cmp, raw_of[vd], vd,
                    )
                if sup_cmp[vd] == cmp and sup_loc[vd] == local:
                    sup_cmp[vd] = -1
                    sup_loc[vd] = -1
            c = holders[vd] - 1
            holders[vd] = 0 if c <= 0 else c
            if vst >= 4:
                de = 1
                if vver >= mem_ver[vd]:
                    mem_ver[vd] = vver
                wb = 1
        way_addr[off + ln] = d
        way_state[off + ln] = state
        way_ver[off + ln] = version
        set_len[sl] = ln + 1
        holders[d] += 1
        dg = 0
        dgwb = 0
        if state >= 2:
            if sup_cmp[d] >= 0 and (
                sup_cmp[d] != cmp or sup_loc[d] != local
            ):
                raise CoherenceError(
                    "line gained a supplier while another still holds it"
                )
            sup_cmp[d] = cmp
            sup_loc[d] = local
            if pkind >= 2:
                dg, dgwb = _pred_insert(
                    pkind, pt, ptlen, psets, passoc,
                    bl, bloff, blshift, blmask, nf, ncnt,
                    ex, exlen, esets, easc,
                    pres, nU, pextra, pred_updates,
                    raw_of, way_addr, way_state, way_ver, set_len,
                    sup_cmp, sup_loc, mem_ver, down_flag,
                    num_sets, assoc, cpc, cmp, raw, d,
                )
        return de, wb, dg, dgwb

    @decorate
    def _invalidate_all(
        cmp, d, raw,
        way_addr, way_state, way_ver, set_len,
        sup_cmp, sup_loc, holders,
        raw_of, num_sets, assoc, cpc,
        pkind, pt, ptlen, psets, passoc,
        bl, bloff, blshift, blmask, nf, ncnt,
        pres, nU, pred_updates,
    ):
        si = raw % num_sets
        base = cmp * cpc
        for local in range(cpc):
            sl = (base + local) * num_sets + si
            off = sl * assoc
            ln = set_len[sl]
            w = _find_way(way_addr, off, ln, d)
            if w < 0:
                continue
            st = way_state[off + w]
            for i in range(off + w, off + ln - 1):
                way_addr[i] = way_addr[i + 1]
                way_state[i] = way_state[i + 1]
                way_ver[i] = way_ver[i + 1]
            set_len[sl] = ln - 1
            if st >= 2:
                if pkind >= 2:
                    _pred_remove(
                        pkind, pt, ptlen, psets, passoc,
                        bl, bloff, blshift, blmask, nf, ncnt,
                        pres, nU, pred_updates, cmp, raw, d,
                    )
                if sup_cmp[d] == cmp and sup_loc[d] == local:
                    sup_cmp[d] = -1
                    sup_loc[d] = -1
            c = holders[d] - 1
            holders[d] = 0 if c <= 0 else c

    @decorate
    def _kernel(
        num_cmps, cpc, num_sets, assoc, nU,
        succ, out_lat, in_lat,
        snoop_time, batching, hit_latency, local_master_latency,
        squash_backoff, prefetch_on_snoop,
        mem_local, mem_remote, mem_prefetched,
        warmup_target, max_events, collect_perfect,
        uses_pred, is_perfect, prim_true, prim_false,
        crit_true, crit_false, retry_thr, waiter_thr, has_crit,
        decouple, is_superset, pred_latency, pkind, counted,
        cost_ring, cost_snoop, cost_dop, cost_dmem,
        init_downgrades, init_dg_writebacks, init_e_dops, init_e_dmem,
        torus, raw_of,
        acc_addr, acc_write, acc_think, core_start, fin,
        way_addr, way_state, way_ver, set_len,
        sup_cmp, sup_loc, holders, down_flag, mem_ver,
        pt, ptlen, psets, passoc, pextra,
        bl, bloff, blshift, blmask, nf, ncnt,
        ex, exlen, esets, easc, ex_hits, ex_ins,
        pres, pred_lookups, pred_updates,
    ):
        """The fused event loop over flat arrays.  A line-for-line
        transliteration of ``SoaRingMultiprocessor.run``'s dispatch
        loop; the ring walk and the write commit run as funnel blocks
        after dispatch and the warmup reset is deferred to the end of
        the iteration (both proven order-neutral, see module doc)."""
        NT = 21
        num_cores = num_cmps * cpc

        # -- measurement state ----------------------------------------
        reads = 0
        writes = 0
        read_hits_local_cache = 0
        read_hits_local_master = 0
        write_hits_exclusive = 0
        read_ring_transactions = 0
        read_snoops = 0
        read_ring_crossings = 0
        reads_supplied_by_cache = 0
        reads_supplied_by_memory = 0
        reads_prefetched = 0
        write_ring_transactions = 0
        write_snoops = 0
        write_ring_crossings = 0
        writes_supplied_by_cache = 0
        writes_supplied_by_memory = 0
        squashes = 0
        retries = 0
        mshr_queued = 0
        a_tp = 0
        a_tn = 0
        a_fp = 0
        a_fn = 0
        p_tp = 0
        p_tn = 0
        writebacks = 0
        dirty_evictions = 0
        downgrades = init_downgrades
        downgrade_writebacks = init_dg_writebacks
        downgrade_rereads = 0
        read_miss_latency_sum = 0
        read_miss_count = 0
        supplier_latency_sum = 0
        supplier_latency_count = 0
        e_ring = 0.0
        e_snoop = 0.0
        e_dops = init_e_dops
        e_dmem = init_e_dmem
        # Counted policy output (``counted``: 0 none, 1 positive
        # predictions, 2 critical-row decisions).  Never reset at
        # warmup end - the object core's counters are not either.
        choice_count = 0

        # -- machine state --------------------------------------------
        heap_cap = 1024
        ht = alloc_i64(heap_cap)
        hs = alloc_i64(heap_cap)
        ho = alloc_i64(heap_cap)
        ha = alloc_i64(heap_cap)
        hb = alloc_i64(heap_cap)
        heap_n = 0
        txn_cap = 256
        tx = alloc_i64(txn_cap * NT)
        tw = alloc_i64(txn_cap * cpc)
        txn_n = 0
        lat_cap = 1024
        lat = alloc_i64(lat_cap)
        lat_len = 0
        act_head = alloc_i64(nU)
        act_tail = alloc_i64(nU)
        for i in range(nU):
            act_head[i] = -1
            act_tail[i] = -1
        core_pos = alloc_i64(num_cores)
        # Requester criticality: retry count of each core's current
        # access (reset at fresh issue, bumped per retry, snapshotted
        # onto the transaction row at ring issue).
        core_retry = alloc_i64(num_cores)
        seq = 0
        now = 0
        processed = 0
        write_counter = 0
        in_warmup = 1 if warmup_target > 0 else 0
        completed = 0
        warmup_end_time = 0

        # -- start: every core's first access -------------------------
        for c in range(num_cores):
            p = core_start[c]
            core_pos[c] = p
            if p < core_start[c + 1]:
                seq += 1
                heap_n = _heap_push(
                    ht, hs, ho, ha, hb, heap_n,
                    acc_think[p], seq, 0, c, 0,
                )
            else:
                fin[c] = 0

        # -- the event loop -------------------------------------------
        spare = cpc + 8
        while heap_n > 0:
            if max_events >= 0 and processed >= max_events:
                break
            # Capacity is only ever grown here, at the loop top, so
            # the helpers never need to reallocate or rebind.
            if heap_n + spare > heap_cap:
                nc = heap_cap * 2
                while heap_n + spare > nc:
                    nc *= 2
                nht = alloc_i64(nc)
                nhs = alloc_i64(nc)
                nho = alloc_i64(nc)
                nha = alloc_i64(nc)
                nhb = alloc_i64(nc)
                for i in range(heap_n):
                    nht[i] = ht[i]
                    nhs[i] = hs[i]
                    nho[i] = ho[i]
                    nha[i] = ha[i]
                    nhb[i] = hb[i]
                ht = nht
                hs = nhs
                ho = nho
                ha = nha
                hb = nhb
                heap_cap = nc
            if txn_n + 1 > txn_cap:
                nc = txn_cap * 2
                ntx = alloc_i64(nc * NT)
                ntw = alloc_i64(nc * cpc)
                for i in range(txn_n * NT):
                    ntx[i] = tx[i]
                for i in range(txn_n * cpc):
                    ntw[i] = tw[i]
                tx = ntx
                tw = ntw
                txn_cap = nc
            if lat_len + 2 > lat_cap:
                nc = lat_cap * 2
                nlat = alloc_i64(nc)
                for i in range(lat_len):
                    nlat[i] = lat[i]
                lat = nlat
                lat_cap = nc

            now, _s, op, a, b, heap_n = _heap_pop(
                ht, hs, ho, ha, hb, heap_n
            )
            processed += 1
            pending_reset = 0
            walk_ti = -1
            walk_node = 0
            walk_at = 0
            walk_entering = 0
            commit_ti = -1
            commit_at = 0

            if op == 1:  # STEP
                walk_ti = a
                walk_node = tx[a * NT + 10]
                walk_at = now
                walk_entering = 1
            elif op == 0 or op == 4 or op == 9:  # ISSUE / RETRY / REISSUE
                if op == 4:
                    retries += 1
                    c = tx[a * NT + 3]
                    core_retry[c] += 1
                else:
                    c = a
                    if op == 0:
                        core_retry[c] = 0
                cur = core_pos[c]
                is_w = acc_write[cur]
                if op != 0:
                    if is_w:
                        writes -= 1
                    else:
                        reads -= 1
                d = acc_addr[cur]
                raw = raw_of[d]
                si = raw % num_sets
                cmp = c // cpc
                sl = c * num_sets + si
                off = sl * assoc
                ln = set_len[sl]
                w = _find_way(way_addr, off, ln, d)
                go_ring = 0
                if is_w:
                    writes += 1
                    st = way_state[off + w] if w >= 0 else -1
                    if st == 3 or st == 4:  # E or D
                        write_hits_exclusive += 1
                        write_counter += 1
                        way_state[off + w] = 4
                        way_ver[off + w] = write_counter
                        _touch_way(way_addr, way_state, way_ver, off, ln, w)
                        # complete_access(core, now + hit_latency)
                        cat = now + hit_latency
                        p = core_pos[c] + 1
                        core_pos[c] = p
                        completed += 1
                        if in_warmup and completed >= warmup_target:
                            pending_reset = 1
                        if p >= core_start[c + 1]:
                            fin[c] = cat
                        else:
                            if cat < now:
                                cat = now
                            seq += 1
                            heap_n = _heap_push(
                                ht, hs, ho, ha, hb, heap_n,
                                cat + acc_think[p], seq, 0, c, 0,
                            )
                    else:
                        go_ring = 1
                else:
                    reads += 1
                    if w >= 0:
                        read_hits_local_cache += 1
                        _touch_way(way_addr, way_state, way_ver, off, ln, w)
                        cat = now + hit_latency
                        p = core_pos[c] + 1
                        core_pos[c] = p
                        completed += 1
                        if in_warmup and completed >= warmup_target:
                            pending_reset = 1
                        if p >= core_start[c + 1]:
                            fin[c] = cat
                        else:
                            if cat < now:
                                cat = now
                            seq += 1
                            heap_n = _heap_push(
                                ht, hs, ho, ha, hb, heap_n,
                                cat + acc_think[p], seq, 0, c, 0,
                            )
                    elif cpc == 1:
                        go_ring = 1
                    else:
                        base = cmp * cpc
                        floc = -1
                        fw = -1
                        foff = 0
                        fln = 0
                        for local in range(cpc):
                            sl2 = (base + local) * num_sets + si
                            off2 = sl2 * assoc
                            ln2 = set_len[sl2]
                            w2 = _find_way(way_addr, off2, ln2, d)
                            if w2 >= 0 and way_state[off2 + w2] >= 1:
                                floc = local
                                fw = w2
                                foff = off2
                                fln = ln2
                                break
                        if floc >= 0:
                            mst = way_state[foff + fw]
                            mver = way_ver[foff + fw]
                            _touch_way(
                                way_addr, way_state, way_ver, foff, fln, fw
                            )
                            read_hits_local_master += 1
                            if mst >= 2:
                                pos = foff + fln - 1
                                way_state[pos] = (
                                    2 if mst == 3 else (5 if mst >= 4 else mst)
                                )
                            de, wb, dg, dgwb = _fill(
                                c, cmp, c - cmp * cpc, d, raw, 0, mver,
                                way_addr, way_state, way_ver, set_len,
                                sup_cmp, sup_loc, holders, mem_ver, down_flag,
                                raw_of, num_sets, assoc, cpc,
                                pkind, pt, ptlen, psets, passoc,
                                bl, bloff, blshift, blmask, nf, ncnt,
                                ex, exlen, esets, easc, pres, nU,
                                pextra, pred_updates,
                            )
                            dirty_evictions += de
                            writebacks += wb
                            if dg:
                                downgrades += 1
                                e_dops += cost_dop
                            if dgwb:
                                downgrade_writebacks += 1
                                e_dmem += cost_dmem
                            cat = now + local_master_latency
                            p = core_pos[c] + 1
                            core_pos[c] = p
                            completed += 1
                            if in_warmup and completed >= warmup_target:
                                pending_reset = 1
                            if p >= core_start[c + 1]:
                                fin[c] = cat
                            else:
                                if cat < now:
                                    cat = now
                                seq += 1
                                heap_n = _heap_push(
                                    ht, hs, ho, ha, hb, heap_n,
                                    cat + acc_think[p], seq, 0, c, 0,
                                )
                        else:
                            go_ring = 1
                if go_ring:
                    # start_ring(core, address, is_write)
                    head = act_head[d]
                    waiting = 0
                    squashed = 0
                    if head >= 0:
                        t = head
                        while t >= 0:
                            if tx[t * NT + 2] == cmp:
                                tw[t * cpc + tx[t * NT + 19]] = c
                                tx[t * NT + 19] += 1
                                mshr_queued += 1
                                waiting = 1
                                break
                            t = tx[t * NT + 16]
                        if waiting == 0:
                            t = head
                            while t >= 0:
                                o2 = t * NT
                                if (
                                    tx[o2 + 9] == 0
                                    and tx[o2 + 15] == 0
                                    and (is_w or tx[o2 + 0])
                                ):
                                    squashed = 1
                                    break
                                t = tx[o2 + 16]
                    if waiting == 0:
                        ti = txn_n
                        txn_n += 1
                        o2 = ti * NT
                        tx[o2 + 0] = is_w
                        tx[o2 + 1] = d
                        tx[o2 + 2] = cmp
                        tx[o2 + 3] = c
                        tx[o2 + 4] = now
                        tx[o2 + 5] = 0
                        tx[o2 + 6] = -1
                        tx[o2 + 7] = 0
                        tx[o2 + 8] = 0
                        tx[o2 + 9] = 0
                        tx[o2 + 10] = 0
                        tx[o2 + 11] = 0
                        tx[o2 + 12] = 0
                        tx[o2 + 13] = 0
                        tx[o2 + 14] = 0
                        tx[o2 + 15] = squashed
                        tx[o2 + 19] = 0
                        tx[o2 + 20] = core_retry[c]
                        if is_w:
                            needs = 1
                            base = cmp * cpc
                            for local in range(cpc):
                                sl2 = (base + local) * num_sets + si
                                if (
                                    _find_way(
                                        way_addr, sl2 * assoc,
                                        set_len[sl2], d,
                                    )
                                    >= 0
                                ):
                                    needs = 0
                                    break
                            tx[o2 + 5] = needs
                        old_tail = act_tail[d]
                        tx[o2 + 17] = old_tail
                        tx[o2 + 16] = -1
                        tx[o2 + 18] = 1
                        if old_tail >= 0:
                            tx[old_tail * NT + 16] = ti
                        else:
                            act_head[d] = ti
                        act_tail[d] = ti
                        if squashed == 0:
                            if is_w:
                                write_ring_transactions += 1
                            else:
                                read_ring_transactions += 1
                        walk_ti = ti
                        walk_node = cmp
                        walk_at = now
                        walk_entering = 0
            elif op == 2:  # WALKDONE
                ti = a
                o = ti * NT
                if tx[o + 15]:  # squashed
                    # retire(txn)
                    if tx[o + 9] == 0:
                        tx[o + 9] = 1
                        rd = tx[o + 1]
                        if tx[o + 18]:
                            pv = tx[o + 17]
                            nx = tx[o + 16]
                            if pv >= 0:
                                tx[pv * NT + 16] = nx
                            else:
                                act_head[rd] = nx
                            if nx >= 0:
                                tx[nx * NT + 17] = pv
                            else:
                                act_tail[rd] = pv
                            tx[o + 18] = 0
                        wn = tx[o + 19]
                        if wn > 0:
                            tx[o + 19] = 0
                            for wi in range(wn):
                                seq += 1
                                heap_n = _heap_push(
                                    ht, hs, ho, ha, hb, heap_n,
                                    now, seq, 9, tw[ti * cpc + wi], 0,
                                )
                    squashes += 1
                    seq += 1
                    heap_n = _heap_push(
                        ht, hs, ho, ha, hb, heap_n,
                        now + squash_backoff, seq, 4, ti, 0,
                    )
                elif tx[o + 0]:  # write_done
                    if tx[o + 5]:
                        da = tx[o + 6]
                        if da >= 0:
                            complete_at = da if da > now else now
                        else:
                            raw = raw_of[tx[o + 1]]
                            requester = tx[o + 2]
                            if raw % num_cmps == requester:
                                latency = mem_local
                            elif tx[o + 8] and prefetch_on_snoop:
                                latency = mem_prefetched
                            else:
                                latency = mem_remote
                            writes_supplied_by_memory += 1
                            complete_at = now + latency
                    else:
                        complete_at = now
                    if complete_at > now:
                        seq += 1
                        heap_n = _heap_push(
                            ht, hs, ho, ha, hb, heap_n,
                            complete_at, seq, 7, ti, complete_at,
                        )
                    else:
                        commit_ti = ti
                        commit_at = complete_at
                else:  # read_done
                    if tx[o + 13] or tx[o + 14]:
                        da = tx[o + 6]
                        if da > now:
                            seq += 1
                            heap_n = _heap_push(
                                ht, hs, ho, ha, hb, heap_n,
                                da, seq, 8, ti, 0,
                            )
                        else:
                            # retire(txn)
                            if tx[o + 9] == 0:
                                tx[o + 9] = 1
                                rd = tx[o + 1]
                                if tx[o + 18]:
                                    pv = tx[o + 17]
                                    nx = tx[o + 16]
                                    if pv >= 0:
                                        tx[pv * NT + 16] = nx
                                    else:
                                        act_head[rd] = nx
                                    if nx >= 0:
                                        tx[nx * NT + 17] = pv
                                    else:
                                        act_tail[rd] = pv
                                    tx[o + 18] = 0
                                wn = tx[o + 19]
                                if wn > 0:
                                    tx[o + 19] = 0
                                    for wi in range(wn):
                                        seq += 1
                                        heap_n = _heap_push(
                                            ht, hs, ho, ha, hb, heap_n,
                                            now, seq, 9,
                                            tw[ti * cpc + wi], 0,
                                        )
                    else:
                        d = tx[o + 1]
                        raw = raw_of[d]
                        requester = tx[o + 2]
                        home = raw % num_cmps
                        if home == requester:
                            latency = mem_local
                        elif tx[o + 8] and prefetch_on_snoop:
                            latency = mem_prefetched
                        else:
                            latency = mem_remote
                        if tx[o + 8] and home != requester:
                            reads_prefetched += 1
                        reads_supplied_by_memory += 1
                        if down_flag[d]:
                            if holders[d] > 0:
                                e_dmem += cost_dmem
                                downgrade_rereads += 1
                            down_flag[d] = 0
                        da = now + latency
                        tx[o + 6] = da
                        seq += 1
                        heap_n = _heap_push(
                            ht, hs, ho, ha, hb, heap_n,
                            da, seq, 6, ti, 0,
                        )
            elif op == 5:  # DELIVER_READ
                ti = a
                o = ti * NT
                c = tx[o + 3]
                d = tx[o + 1]
                raw = raw_of[d]
                cmp = c // cpc
                de, wb, dg, dgwb = _fill(
                    c, cmp, c - cmp * cpc, d, raw, 1, tx[o + 7],
                    way_addr, way_state, way_ver, set_len,
                    sup_cmp, sup_loc, holders, mem_ver, down_flag,
                    raw_of, num_sets, assoc, cpc,
                    pkind, pt, ptlen, psets, passoc,
                    bl, bloff, blshift, blmask, nf, ncnt,
                    ex, exlen, esets, easc, pres, nU,
                    pextra, pred_updates,
                )
                dirty_evictions += de
                writebacks += wb
                if dg:
                    downgrades += 1
                    e_dops += cost_dop
                if dgwb:
                    downgrade_writebacks += 1
                    e_dmem += cost_dmem
                latency = tx[o + 6] - tx[o + 4]
                read_miss_latency_sum += latency
                read_miss_count += 1
                lat[lat_len] = latency
                lat_len += 1
                cat = now
                p = core_pos[c] + 1
                core_pos[c] = p
                completed += 1
                if in_warmup and completed >= warmup_target:
                    pending_reset = 1
                if p >= core_start[c + 1]:
                    fin[c] = cat
                else:
                    seq += 1
                    heap_n = _heap_push(
                        ht, hs, ho, ha, hb, heap_n,
                        cat + acc_think[p], seq, 0, c, 0,
                    )
            elif op == 6:  # DELIVER_MEM
                ti = a
                o = ti * NT
                c = tx[o + 3]
                d = tx[o + 1]
                raw = raw_of[d]
                cmp = c // cpc
                if sup_cmp[d] >= 0:
                    sid = sup_cmp[d] * cpc + sup_loc[d]
                    sl2 = sid * num_sets + raw % num_sets
                    off2 = sl2 * assoc
                    w2 = _find_way(way_addr, off2, set_len[sl2], d)
                    if w2 < 0:
                        raise CoherenceError(
                            "supplier registry points at a missing line"
                        )
                    st2 = way_state[off2 + w2]
                    way_state[off2 + w2] = (
                        2 if st2 == 3 else (5 if st2 >= 4 else st2)
                    )
                    version = way_ver[off2 + w2]
                    state = 1
                else:
                    version = mem_ver[d]
                    state = 2 if holders[d] > 0 else 3
                de, wb, dg, dgwb = _fill(
                    c, cmp, c - cmp * cpc, d, raw, state, version,
                    way_addr, way_state, way_ver, set_len,
                    sup_cmp, sup_loc, holders, mem_ver, down_flag,
                    raw_of, num_sets, assoc, cpc,
                    pkind, pt, ptlen, psets, passoc,
                    bl, bloff, blshift, blmask, nf, ncnt,
                    ex, exlen, esets, easc, pres, nU,
                    pextra, pred_updates,
                )
                dirty_evictions += de
                writebacks += wb
                if dg:
                    downgrades += 1
                    e_dops += cost_dop
                if dgwb:
                    downgrade_writebacks += 1
                    e_dmem += cost_dmem
                latency = tx[o + 6] - tx[o + 4]
                read_miss_latency_sum += latency
                read_miss_count += 1
                lat[lat_len] = latency
                lat_len += 1
                cat = now
                p = core_pos[c] + 1
                core_pos[c] = p
                completed += 1
                if in_warmup and completed >= warmup_target:
                    pending_reset = 1
                if p >= core_start[c + 1]:
                    fin[c] = cat
                else:
                    seq += 1
                    heap_n = _heap_push(
                        ht, hs, ho, ha, hb, heap_n,
                        cat + acc_think[p], seq, 0, c, 0,
                    )
                # retire(txn)
                if tx[o + 9] == 0:
                    tx[o + 9] = 1
                    rd = tx[o + 1]
                    if tx[o + 18]:
                        pv = tx[o + 17]
                        nx = tx[o + 16]
                        if pv >= 0:
                            tx[pv * NT + 16] = nx
                        else:
                            act_head[rd] = nx
                        if nx >= 0:
                            tx[nx * NT + 17] = pv
                        else:
                            act_tail[rd] = pv
                        tx[o + 18] = 0
                    wn = tx[o + 19]
                    if wn > 0:
                        tx[o + 19] = 0
                        for wi in range(wn):
                            seq += 1
                            heap_n = _heap_push(
                                ht, hs, ho, ha, hb, heap_n,
                                now, seq, 9, tw[ti * cpc + wi], 0,
                            )
            elif op == 3:  # INVAL
                _invalidate_all(
                    a, b, raw_of[b],
                    way_addr, way_state, way_ver, set_len,
                    sup_cmp, sup_loc, holders,
                    raw_of, num_sets, assoc, cpc,
                    pkind, pt, ptlen, psets, passoc,
                    bl, bloff, blshift, blmask, nf, ncnt,
                    pres, nU, pred_updates,
                )
            elif op == 7:  # COMMIT
                commit_ti = a
                commit_at = b
            else:  # op == 8: RETIRE
                ti = a
                o = ti * NT
                if tx[o + 9] == 0:
                    tx[o + 9] = 1
                    rd = tx[o + 1]
                    if tx[o + 18]:
                        pv = tx[o + 17]
                        nx = tx[o + 16]
                        if pv >= 0:
                            tx[pv * NT + 16] = nx
                        else:
                            act_head[rd] = nx
                        if nx >= 0:
                            tx[nx * NT + 17] = pv
                        else:
                            act_tail[rd] = pv
                        tx[o + 18] = 0
                    wn = tx[o + 19]
                    if wn > 0:
                        tx[o + 19] = 0
                        for wi in range(wn):
                            seq += 1
                            heap_n = _heap_push(
                                ht, hs, ho, ha, hb, heap_n,
                                now, seq, 9, tw[ti * cpc + wi], 0,
                            )

            # -- commit_write funnel ----------------------------------
            if commit_ti >= 0:
                o = commit_ti * NT
                write_counter += 1
                c = tx[o + 3]
                d = tx[o + 1]
                raw = raw_of[d]
                cmp = c // cpc
                _invalidate_all(
                    cmp, d, raw,
                    way_addr, way_state, way_ver, set_len,
                    sup_cmp, sup_loc, holders,
                    raw_of, num_sets, assoc, cpc,
                    pkind, pt, ptlen, psets, passoc,
                    bl, bloff, blshift, blmask, nf, ncnt,
                    pres, nU, pred_updates,
                )
                de, wb, dg, dgwb = _fill(
                    c, cmp, c - cmp * cpc, d, raw, 4, write_counter,
                    way_addr, way_state, way_ver, set_len,
                    sup_cmp, sup_loc, holders, mem_ver, down_flag,
                    raw_of, num_sets, assoc, cpc,
                    pkind, pt, ptlen, psets, passoc,
                    bl, bloff, blshift, blmask, nf, ncnt,
                    ex, exlen, esets, easc, pres, nU,
                    pextra, pred_updates,
                )
                dirty_evictions += de
                writebacks += wb
                if dg:
                    downgrades += 1
                    e_dops += cost_dop
                if dgwb:
                    downgrade_writebacks += 1
                    e_dmem += cost_dmem
                cat = commit_at
                p = core_pos[c] + 1
                core_pos[c] = p
                completed += 1
                if in_warmup and completed >= warmup_target:
                    pending_reset = 1
                if p >= core_start[c + 1]:
                    fin[c] = cat
                else:
                    if cat < now:
                        cat = now
                    seq += 1
                    heap_n = _heap_push(
                        ht, hs, ho, ha, hb, heap_n,
                        cat + acc_think[p], seq, 0, c, 0,
                    )
                # retire(txn)
                if tx[o + 9] == 0:
                    tx[o + 9] = 1
                    rd = tx[o + 1]
                    if tx[o + 18]:
                        pv = tx[o + 17]
                        nx = tx[o + 16]
                        if pv >= 0:
                            tx[pv * NT + 16] = nx
                        else:
                            act_head[rd] = nx
                        if nx >= 0:
                            tx[nx * NT + 17] = pv
                        else:
                            act_tail[rd] = pv
                        tx[o + 18] = 0
                    wn = tx[o + 19]
                    if wn > 0:
                        tx[o + 19] = 0
                        for wi in range(wn):
                            seq += 1
                            heap_n = _heap_push(
                                ht, hs, ho, ha, hb, heap_n,
                                now, seq, 9, tw[commit_ti * cpc + wi], 0,
                            )

            # -- ring walk funnel -------------------------------------
            if walk_ti >= 0:
                o = walk_ti * NT
                requester = tx[o + 2]
                is_w = tx[o + 0]
                d = tx[o + 1]
                raw = raw_of[d]
                node = walk_node
                at = walk_at
                entering = walk_entering
                while True:
                    if entering:
                        if node == requester:
                            # _walk_returned: the final reply crossing.
                            if tx[o + 11]:
                                info = tx[o + 12] + in_lat[requester]
                                e_ring += cost_ring
                                if is_w:
                                    write_ring_crossings += 1
                                else:
                                    read_ring_crossings += 1
                            else:
                                info = at
                            if info < at:
                                info = at
                            seq += 1
                            heap_n = _heap_push(
                                ht, hs, ho, ha, hb, heap_n,
                                info, seq, 2, walk_ti, 0,
                            )
                            break
                        if tx[o + 11]:
                            # Advance the trailing reply into this node.
                            tx[o + 12] += in_lat[node]
                            e_ring += cost_ring
                            if is_w:
                                write_ring_crossings += 1
                            else:
                                read_ring_crossings += 1
                        if tx[o + 15] or tx[o + 13]:
                            departure = at
                        elif is_w:
                            # ------------- write step ----------------
                            supplier_here = 1 if sup_cmp[d] == node else 0
                            snoop_done = at + snoop_time
                            if decouple:
                                # FORWARD_THEN_SNOOP
                                if tx[o + 11]:
                                    rt = tx[o + 12]
                                    if snoop_done > rt:
                                        rt = snoop_done
                                else:
                                    rt = snoop_done
                                tx[o + 11] = 1
                                tx[o + 12] = rt
                                departure = at
                            else:
                                # SNOOP_THEN_FORWARD
                                if tx[o + 11]:
                                    departure = tx[o + 12]
                                    if snoop_done > departure:
                                        departure = snoop_done
                                    if tx[o + 14]:
                                        tx[o + 13] = 1
                                    tx[o + 11] = 0
                                    tx[o + 12] = 0
                                else:
                                    departure = snoop_done
                            write_snoops += 1
                            e_snoop += cost_snoop
                            if (
                                supplier_here
                                and tx[o + 5]
                                and tx[o + 6] < 0
                            ):
                                # capture_write_supply
                                base = node * cpc
                                si = raw % num_sets
                                sver = -1
                                for local in range(cpc):
                                    sl2 = (base + local) * num_sets + si
                                    off2 = sl2 * assoc
                                    w2 = _find_way(
                                        way_addr, off2, set_len[sl2], d
                                    )
                                    if (
                                        w2 >= 0
                                        and way_state[off2 + w2] >= 2
                                    ):
                                        sver = way_ver[off2 + w2]
                                        break
                                if sver < 0:
                                    raise CoherenceError(
                                        "write supply found no supplier line"
                                    )
                                tx[o + 7] = sver
                                tx[o + 6] = snoop_done + torus[
                                    node * num_cmps + requester
                                ]
                                writes_supplied_by_cache += 1
                            seq += 1
                            heap_n = _heap_push(
                                ht, hs, ho, ha, hb, heap_n,
                                snoop_done, seq, 3, node, d,
                            )
                        else:
                            # ------------- read step -----------------
                            supplier_here = 1 if sup_cmp[d] == node else 0
                            if (
                                collect_perfect
                                and tx[o + 14] == 0
                                and tx[o + 13] == 0
                            ):
                                if supplier_here:
                                    p_tp += 1
                                else:
                                    p_tn += 1
                            if uses_pred:
                                if is_perfect:
                                    pred_lookups[node] += 1
                                    prediction = supplier_here
                                elif pkind == 0:
                                    # NullPredictor.lookup: always True,
                                    # no lookup counter.
                                    prediction = 1
                                    if supplier_here:
                                        a_tp += 1
                                    else:
                                        a_fp += 1
                                else:
                                    prediction = _pred_lookup(
                                        pkind, pt, ptlen, psets, passoc,
                                        bl, bloff, blshift, blmask, nf, ncnt,
                                        ex, exlen, esets, easc, ex_hits,
                                        pred_lookups, node, raw, d,
                                    )
                                    if prediction:
                                        if supplier_here:
                                            a_tp += 1
                                        else:
                                            a_fp += 1
                                    else:
                                        if supplier_here:
                                            a_fn += 1
                                        else:
                                            a_tn += 1
                                plat = pred_latency
                            else:
                                prediction = 1
                                plat = 0
                            if has_crit and (
                                tx[o + 20] >= retry_thr
                                or tx[o + 19] >= waiter_thr
                            ):
                                primitive = (
                                    crit_true if prediction else crit_false
                                )
                                if counted == 2:
                                    choice_count += 1
                            else:
                                primitive = (
                                    prim_true if prediction else prim_false
                                )
                            if counted == 1 and prediction:
                                choice_count += 1
                            if primitive == 0:  # FORWARD
                                if supplier_here:
                                    raise CoherenceError(
                                        "algorithm filtered the snoop at "
                                        "the supplier node (false negative)"
                                    )
                                if (
                                    prefetch_on_snoop
                                    and node == raw % num_cmps
                                    and tx[o + 8] == 0
                                    and tx[o + 14] == 0
                                ):
                                    tx[o + 8] = 1
                                departure = at + plat
                            else:
                                start = at + plat
                                snoop_done = start + snoop_time
                                supplied = 0
                                if primitive == 2:  # SNOOP_THEN_FORWARD
                                    if supplier_here:
                                        tx[o + 13] = 1
                                        tx[o + 14] = 1
                                        tx[o + 11] = 0
                                        tx[o + 12] = 0
                                        departure = snoop_done
                                        supplied = 1
                                    elif tx[o + 11]:
                                        departure = tx[o + 12]
                                        if snoop_done > departure:
                                            departure = snoop_done
                                        if tx[o + 14]:
                                            tx[o + 13] = 1
                                        tx[o + 11] = 0
                                        tx[o + 12] = 0
                                    else:
                                        departure = snoop_done
                                else:  # FORWARD_THEN_SNOOP
                                    if tx[o + 11]:
                                        rt = tx[o + 12]
                                        if snoop_done > rt:
                                            rt = snoop_done
                                    else:
                                        rt = snoop_done
                                    if supplier_here:
                                        tx[o + 14] = 1
                                        supplied = 1
                                    tx[o + 11] = 1
                                    tx[o + 12] = rt
                                    departure = start
                                read_snoops += 1
                                e_snoop += cost_snoop
                                if (
                                    is_superset
                                    and uses_pred
                                    and supplier_here == 0
                                    and prediction
                                ):
                                    # observe_false_positive
                                    if esets > 0:
                                        _pt_insert(
                                            ex, exlen, esets, easc,
                                            node, raw, d,
                                        )
                                        ex_ins[node] += 1
                                        pred_updates[node] += 1
                                if supplied:
                                    # supply_read
                                    base = node * cpc
                                    si = raw % num_sets
                                    fpos = -1
                                    for local in range(cpc):
                                        sl2 = (
                                            (base + local) * num_sets + si
                                        )
                                        off2 = sl2 * assoc
                                        w2 = _find_way(
                                            way_addr, off2,
                                            set_len[sl2], d,
                                        )
                                        if (
                                            w2 >= 0
                                            and way_state[off2 + w2] >= 2
                                        ):
                                            fpos = off2 + w2
                                            break
                                    if fpos < 0:
                                        raise CoherenceError(
                                            "read supply found no supplier "
                                            "line"
                                        )
                                    st2 = way_state[fpos]
                                    way_state[fpos] = (
                                        2
                                        if st2 == 3
                                        else (5 if st2 >= 4 else st2)
                                    )
                                    tx[o + 7] = way_ver[fpos]
                                    da = snoop_done + torus[
                                        node * num_cmps + requester
                                    ]
                                    tx[o + 6] = da
                                    reads_supplied_by_cache += 1
                                    supplier_latency_sum += (
                                        snoop_done - tx[o + 4]
                                    )
                                    supplier_latency_count += 1
                                    seq += 1
                                    heap_n = _heap_push(
                                        ht, hs, ho, ha, hb, heap_n,
                                        da, seq, 5, walk_ti, 0,
                                    )
                                if (
                                    prefetch_on_snoop
                                    and node == raw % num_cmps
                                    and tx[o + 8] == 0
                                    and tx[o + 14] == 0
                                ):
                                    tx[o + 8] = 1
                    else:
                        departure = at
                        entering = 1
                    # ------------------- forward_request -------------
                    e_ring += cost_ring
                    if is_w:
                        write_ring_crossings += 1
                    else:
                        read_ring_crossings += 1
                    arrival = departure + out_lat[node]
                    to_node = succ[node]
                    if (
                        batching
                        and in_warmup == 0
                        and (tx[o + 15] or tx[o + 13])
                        and to_node != requester
                    ):
                        node = to_node
                        at = arrival
                        continue
                    tx[o + 10] = to_node
                    seq += 1
                    heap_n = _heap_push(
                        ht, hs, ho, ha, hb, heap_n,
                        arrival, seq, 1, walk_ti, 0,
                    )
                    break

            # -- deferred end_warmup ----------------------------------
            if pending_reset:
                in_warmup = 0
                warmup_end_time = now
                reads = 0
                writes = 0
                read_hits_local_cache = 0
                read_hits_local_master = 0
                write_hits_exclusive = 0
                read_ring_transactions = 0
                read_snoops = 0
                read_ring_crossings = 0
                reads_supplied_by_cache = 0
                reads_supplied_by_memory = 0
                reads_prefetched = 0
                write_ring_transactions = 0
                write_snoops = 0
                write_ring_crossings = 0
                writes_supplied_by_cache = 0
                writes_supplied_by_memory = 0
                squashes = 0
                retries = 0
                mshr_queued = 0
                a_tp = 0
                a_tn = 0
                a_fp = 0
                a_fn = 0
                p_tp = 0
                p_tn = 0
                writebacks = 0
                dirty_evictions = 0
                downgrades = 0
                downgrade_writebacks = 0
                downgrade_rereads = 0
                read_miss_latency_sum = 0
                read_miss_count = 0
                supplier_latency_sum = 0
                supplier_latency_count = 0
                lat_len = 0
                e_ring = 0.0
                e_snoop = 0.0
                e_dops = 0.0
                e_dmem = 0.0
                for i in range(num_cmps):
                    pred_lookups[i] = 0
                    pred_updates[i] = 0

        return (
            reads, writes,
            read_hits_local_cache, read_hits_local_master,
            write_hits_exclusive,
            read_ring_transactions, read_snoops, read_ring_crossings,
            reads_supplied_by_cache, reads_supplied_by_memory,
            reads_prefetched,
            write_ring_transactions, write_snoops, write_ring_crossings,
            writes_supplied_by_cache, writes_supplied_by_memory,
            squashes, retries, mshr_queued,
            a_tp, a_tn, a_fp, a_fn, p_tp, p_tn,
            writebacks, dirty_evictions,
            downgrades, downgrade_writebacks, downgrade_rereads,
            read_miss_latency_sum, read_miss_count,
            supplier_latency_sum, supplier_latency_count,
            e_ring, e_snoop, e_dops, e_dmem,
            warmup_end_time, seq, processed, choice_count,
            lat, lat_len,
        )

    return _kernel


# Lazily-built kernel cache: {True: njit kernel, False: python kernel}.
_KERNELS: Dict[bool, Any] = {}


def _get_kernel(use_numba: bool):
    kernel = _KERNELS.get(use_numba)
    if kernel is None:
        if use_numba:
            if _numba is None:  # pragma: no cover - guarded by caller
                raise RuntimeError("numba is not importable")
            alloc = _numba.njit(cache=False)(
                lambda n: np.zeros(n, np.int64)
            )
            kernel = _build(_numba.njit(cache=False), alloc)
        else:
            kernel = _build(lambda f: f, lambda n: [0] * n)
        _KERNELS[use_numba] = kernel
    return kernel


class JitRingMultiprocessor(SoaRingMultiprocessor):
    """Compiled-kernel core: the SoA machine exported to flat arrays.

    Construction (geometry checks, prewarm walk/memo, predictor
    training) is inherited from :class:`SoaRingMultiprocessor`;
    :meth:`run` exports that state into preallocated integer arrays
    (``export_cache_image`` plus a dense address remap) and hands the
    whole event loop to the kernel built by :func:`_build` - compiled
    with numba when importable, executed as plain Python otherwise.
    Only predictor/algorithm *counters* flow back out: the flat tables
    are authoritative during the run and are discarded with it.
    """

    def __init__(
        self,
        config: MachineConfig,
        algorithm: SnoopingAlgorithm,
        workload: object,
        collect_perfect: bool = True,
        warmup_fraction: float = 0.0,
        trace_sink: object = None,
    ) -> None:
        check_jit_supported(config, algorithm, trace_sink)
        super().__init__(
            config,
            algorithm,
            workload,
            collect_perfect,
            warmup_fraction,
            trace_sink,
        )

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        if self._ran:
            raise RuntimeError("a JitRingMultiprocessor can only run once")
        self._ran = True

        config = self.config
        algorithm = self.algorithm
        source = self.source
        num_cmps = config.num_cmps
        cpc = config.cores_per_cmp
        num_cores = num_cmps * cpc
        num_sets = config.cache.num_sets
        assoc = config.cache.associativity
        kind = config.predictor.kind
        pkind = _PKIND_OF[kind]

        # Topology tables for the kernel: successor, outbound segment
        # latency, inbound (entry) latency, and the flattened
        # data-network latency matrix.  Table-less topologies need the
        # object core's dynamic routing.
        topology = build_topology(config)
        try:
            succ_list, out_lat_list, in_lat_list = topology.export_tables()
        except TopologyTablesUnavailable as error:
            raise JitUnsupportedError(
                "core=jit needs a table-exporting topology: %s; "
                "use core=object" % error
            ) from error
        torus_flat = [
            topology.transfer_latency(src, dst)
            for src in range(num_cmps)
            for dst in range(num_cmps)
        ]

        uses_pred = algorithm.uses_predictor()
        # Decision seam: the policy's static table (check_jit_supported
        # guarantees it exists) hoisted into plain kernel ints - the
        # table is data, so no choose() call (and no counter mutation)
        # happens here or anywhere on the kernel path.
        table = algorithm.decision_table()
        assert table is not None  # enforced by check_jit_supported
        prim_true = _PRIM_INT[table.on_true]
        prim_false = _PRIM_INT[table.on_false]
        crit_true = _PRIM_INT[table.critical_true]
        crit_false = _PRIM_INT[table.critical_false]
        retry_thr = table.retry_threshold
        waiter_thr = table.waiter_threshold
        has_crit = 1 if table.has_criticality() else 0
        if table.counts == "pred_true":
            counted = 1
        elif table.counts == "critical":
            counted = 2
        else:
            counted = 0
        predictors = self._predictors
        is_perfect = isinstance(predictors[0], PerfectPredictor)
        is_superset = kind == "superset"
        pred_latency = 0 if is_perfect else predictors[0].latency

        # -- materialize per-core access streams ------------------------
        acc_addr: List[int] = []
        acc_write: List[int] = []
        acc_think: List[int] = []
        core_start = [0] * (num_cores + 1)
        for i in range(num_cores):
            core_start[i] = len(acc_addr)
            for access in source.core_stream(i):
                acc_addr.append(access.address)
                acc_write.append(1 if access.is_write else 0)
                acc_think.append(access.think_time)
        core_start[num_cores] = len(acc_addr)

        # -- dense address remap ----------------------------------------
        # Only what the run can observe is flattened: the trace, the
        # prewarm content of the cache/predictor sets those addresses
        # map to (Bloom counters are positional - no addresses), plus,
        # for the Exact predictor, the cache sets of potential conflict
        # victims (its eviction cascade downgrades the victim's own
        # line).  The untouched remainder of a large prewarm footprint
        # can never be read or written by the kernel, so it stays
        # behind in the dict/array form the warmup memo shares.
        accessed = set(acc_addr)
        touched_sets = {raw % num_sets for raw in accessed}
        image = list(self.export_cache_image(touched_sets))
        universe = set(accessed)
        for _core, _si, addresses, _states in image:
            universe.update(addresses)
        table_snaps: List[List[List[int]]] = []
        exclude_snaps: List[List[List[int]]] = []
        present_dicts: List[Dict[int, int]] = []
        bloom_snaps: List[List[List[int]]] = []
        touched_pred: set = set()
        touched_ex: set = set()
        psets = passoc = 1
        esets = 0
        easc = 1
        if pkind in (_PK_SUBSET, _PK_EXACT):
            psets = config.predictor.entries // config.predictor.associativity
            passoc = config.predictor.associativity
            touched_pred = {raw % psets for raw in universe}
            for p in predictors:
                table_snaps.append(p._table.snapshot())  # type: ignore
            pred_entries: set = set()
            for snap in table_snaps:
                for s in touched_pred:
                    pred_entries.update(snap[s])
            universe.update(pred_entries)
            if pkind == _PK_EXACT:
                extra = {e % num_sets for e in pred_entries} - touched_sets
                if extra:
                    more = list(self.export_cache_image(extra))
                    image.extend(more)
                    for _core, _si, addresses, _states in more:
                        universe.update(addresses)
        elif pkind == _PK_SUPERSET:
            for p in predictors:
                bloom_snaps.append(p.filter.snapshot()[0])  # type: ignore
                present_dicts.append(p._present)  # type: ignore
                if p.exclude is not None:  # type: ignore[attr-defined]
                    exclude_snaps.append(p.exclude.snapshot())  # type: ignore
            if exclude_snaps:
                esets = (
                    config.predictor.exclude_entries
                    // config.predictor.exclude_associativity
                )
                easc = config.predictor.exclude_associativity
                touched_ex = {raw % esets for raw in universe}
                for snap in exclude_snaps:
                    for s in touched_ex:
                        universe.update(snap[s])
        # Dense ids are an arbitrary bijection: the kernel orders
        # events by (time, seq) and derives set/field indices from the
        # raw address, so no sort is needed.
        raw_sorted = list(universe)
        dmap = {raw: i for i, raw in enumerate(raw_sorted)}
        nU = max(1, len(raw_sorted))
        raw_of = raw_sorted if raw_sorted else [0]
        acc_addr = [dmap[a] for a in acc_addr]

        # -- cache arrays -----------------------------------------------
        way_addr = [0] * (num_cores * num_sets * assoc)
        way_state = [0] * (num_cores * num_sets * assoc)
        way_ver = [0] * (num_cores * num_sets * assoc)
        set_len = [0] * (num_cores * num_sets)
        for core_id, set_index, addresses, states in image:
            sl = core_id * num_sets + set_index
            off = sl * assoc
            for w, (addr, st) in enumerate(zip(addresses, states)):
                way_addr[off + w] = dmap[addr]
                way_state[off + w] = st
            set_len[sl] = len(addresses)

        # Iterate the (small) universe, not the (footprint-sized)
        # registries: entries outside the universe are unobservable.
        supplier_of = self._supplier_of
        holder_count = self._holder_count
        downgraded = self._downgraded
        mem_versions = self._mem_versions
        sup_cmp = [-1] * nU
        sup_loc = [-1] * nU
        holders = [0] * nU
        down_flag = [0] * nU
        mem_ver = [0] * nU
        sup_get = supplier_of.get
        hold_get = holder_count.get
        check_down = bool(downgraded)
        check_ver = bool(mem_versions)
        for d, raw in enumerate(raw_sorted):
            entry = sup_get(raw)
            if entry is not None:
                sup_cmp[d] = entry[0]
                sup_loc[d] = entry[1]
            count = hold_get(raw)
            if count:
                holders[d] = count
            if check_down and raw in downgraded:
                down_flag[d] = 1
            if check_ver:
                version = mem_versions.get(raw)
                if version:
                    mem_ver[d] = version

        # -- predictor arrays (size-1 dummies for unused kinds) ---------
        pt = [0]
        ptlen = [0]
        bl = [0]
        bloff = [0]
        blshift = [0]
        blmask = [0]
        nf = 0
        ncnt = 1
        ex = [0]
        exlen = [0]
        pres = [0]
        pextra = [0] * num_cmps
        ex_hits = [0] * num_cmps
        ex_ins = [0] * num_cmps
        pred_lookups = [p.lookups for p in predictors]
        pred_updates = [p.updates for p in predictors]
        if pkind in (_PK_SUBSET, _PK_EXACT):
            pt = [0] * (num_cmps * psets * passoc)
            ptlen = [0] * (num_cmps * psets)
            for cmp_id, snap in enumerate(table_snaps):
                for s in touched_pred:
                    entries = snap[s]
                    if not entries:
                        continue
                    b = cmp_id * psets + s
                    off = b * passoc
                    for w, addr in enumerate(entries):
                        pt[off + w] = dmap[addr]
                    ptlen[b] = len(entries)
            if pkind == _PK_SUBSET:
                pextra = [p.conflict_drops for p in predictors]  # type: ignore
            else:
                pextra = [p.downgrades for p in predictors]  # type: ignore
        elif pkind == _PK_SUPERSET:
            fields = config.predictor.bloom_fields
            nf = len(fields)
            blshift = []
            blmask = []
            bloff = []
            shift = 0
            offset = 0
            for bits in fields:
                blshift.append(shift)
                blmask.append((1 << bits) - 1)
                bloff.append(offset)
                shift += bits
                offset += 1 << bits
            ncnt = offset
            bl = [0] * (num_cmps * ncnt)
            for cmp_id, tables in enumerate(bloom_snaps):
                base = cmp_id * ncnt
                for f, table in enumerate(tables):
                    o = base + bloff[f]
                    for i, value in enumerate(table):
                        bl[o + i] = value
            pres = [0] * (num_cmps * nU)
            for cmp_id, present in enumerate(present_dicts):
                base = cmp_id * nU
                get = present.get
                for d, raw in enumerate(raw_sorted):
                    count = get(raw)
                    if count:
                        pres[base + d] = count
            if exclude_snaps:
                ex = [0] * (num_cmps * esets * easc)
                exlen = [0] * (num_cmps * esets)
                for cmp_id, snap in enumerate(exclude_snaps):
                    for s in touched_ex:
                        entries = snap[s]
                        if not entries:
                            continue
                        b = cmp_id * esets + s
                        off = b * easc
                        for w, addr in enumerate(entries):
                            ex[off + w] = dmap[addr]
                        exlen[b] = len(entries)
            ex_hits = [p.exclude_hits for p in predictors]  # type: ignore
            ex_ins = [p.exclude_inserts for p in predictors]  # type: ignore

        fin = [-1] * num_cores
        total_accesses = source.total_accesses()
        warmup_target = (
            int(total_accesses * self.warmup_fraction)
            if self.warmup_fraction > 0.0
            else 0
        )

        use_numba = NUMBA_AVAILABLE and os.environ.get(
            JIT_DISABLE_ENV, ""
        ) in ("", "0")
        kernel = _get_kernel(use_numba)
        if use_numba:
            def conv(values: List[int]) -> Any:
                return np.asarray(values, dtype=np.int64)

            succ_list = conv(succ_list)
            out_lat_list = conv(out_lat_list)
            in_lat_list = conv(in_lat_list)
            torus_flat = conv(torus_flat)
            raw_of = conv(raw_of)
            acc_addr = conv(acc_addr)
            acc_write = conv(acc_write)
            acc_think = conv(acc_think)
            core_start = conv(core_start)
            fin = conv(fin)
            way_addr = conv(way_addr)
            way_state = conv(way_state)
            way_ver = conv(way_ver)
            set_len = conv(set_len)
            sup_cmp = conv(sup_cmp)
            sup_loc = conv(sup_loc)
            holders = conv(holders)
            down_flag = conv(down_flag)
            mem_ver = conv(mem_ver)
            pt = conv(pt)
            ptlen = conv(ptlen)
            pextra = conv(pextra)
            bl = conv(bl)
            bloff = conv(bloff)
            blshift = conv(blshift)
            blmask = conv(blmask)
            ex = conv(ex)
            exlen = conv(exlen)
            ex_hits = conv(ex_hits)
            ex_ins = conv(ex_ins)
            pres = conv(pres)
            pred_lookups = conv(pred_lookups)
            pred_updates = conv(pred_updates)

        (
            reads, writes,
            read_hits_local_cache, read_hits_local_master,
            write_hits_exclusive,
            read_ring_transactions, read_snoops, read_ring_crossings,
            reads_supplied_by_cache, reads_supplied_by_memory,
            reads_prefetched,
            write_ring_transactions, write_snoops, write_ring_crossings,
            writes_supplied_by_cache, writes_supplied_by_memory,
            squashes, retries, mshr_queued,
            a_tp, a_tn, a_fp, a_fn, p_tp, p_tn,
            writebacks, dirty_evictions,
            downgrades, downgrade_writebacks, downgrade_rereads,
            read_miss_latency_sum, read_miss_count,
            supplier_latency_sum, supplier_latency_count,
            e_ring, e_snoop, e_dops, e_dmem,
            warmup_end_time, seq, processed, choice_count,
            lat, lat_len,
        ) = kernel(
            num_cmps, cpc, num_sets, assoc, nU,
            succ_list, out_lat_list, in_lat_list,
            config.ring.snoop_time,
            1 if config.ring.hop_batching else 0,
            config.cache.hit_latency, config.cache.local_master_latency,
            config.squash_backoff,
            1 if config.memory.prefetch_on_snoop else 0,
            config.memory.local_round_trip,
            config.memory.remote_round_trip,
            config.memory.remote_round_trip_prefetched,
            warmup_target, -1 if max_events is None else max_events,
            1 if self.collect_perfect else 0,
            1 if uses_pred else 0, 1 if is_perfect else 0,
            prim_true, prim_false,
            crit_true, crit_false, retry_thr, waiter_thr, has_crit,
            1 if algorithm.decouple_writes else 0,
            1 if is_superset else 0,
            pred_latency, pkind, counted,
            config.energy.ring_link_message, config.energy.cmp_snoop,
            config.energy.downgrade_cache_access,
            config.energy.memory_line_access,
            self._init_downgrades, self._init_downgrade_writebacks,
            self._init_e_downgrade_ops, self._init_e_downgrade_memory,
            torus_flat, raw_of,
            acc_addr, acc_write, acc_think, core_start, fin,
            way_addr, way_state, way_ver, set_len,
            sup_cmp, sup_loc, holders, down_flag, mem_ver,
            pt, ptlen, psets, passoc, pextra,
            bl, bloff, blshift, blmask, nf, ncnt,
            ex, exlen, esets, easc, ex_hits, ex_ins,
            pres, pred_lookups, pred_updates,
        )

        # -- counters back out ------------------------------------------
        histogram = LatencyHistogram()
        for i in range(int(lat_len)):
            histogram.record(int(lat[i]))
        for cmp_id, predictor in enumerate(predictors):
            predictor.lookups = int(pred_lookups[cmp_id])
            predictor.updates = int(pred_updates[cmp_id])
        if pkind == _PK_SUBSET:
            for cmp_id, predictor in enumerate(predictors):
                predictor.conflict_drops = int(pextra[cmp_id])  # type: ignore
        elif pkind == _PK_EXACT:
            for cmp_id, predictor in enumerate(predictors):
                predictor.downgrades = int(pextra[cmp_id])  # type: ignore
        elif pkind == _PK_SUPERSET:
            for cmp_id, predictor in enumerate(predictors):
                predictor.exclude_hits = int(ex_hits[cmp_id])  # type: ignore
                predictor.exclude_inserts = int(  # type: ignore
                    ex_ins[cmp_id]
                )
        if counted:
            # Counted policy output: fold the kernel's tally back into
            # the algorithm's declared counter (hybrid
            # aggressive_choices, criticality critical_choices).
            algorithm.fold_choice_counts(int(choice_count))

        # -- finalize (mirrors the SoA core line for line) --------------
        stats = RunStats()
        stats.reads = int(reads)
        stats.writes = int(writes)
        stats.read_hits_local_cache = int(read_hits_local_cache)
        stats.read_hits_local_master = int(read_hits_local_master)
        stats.write_hits_exclusive = int(write_hits_exclusive)
        stats.read_ring_transactions = int(read_ring_transactions)
        stats.read_snoops = int(read_snoops)
        stats.read_ring_crossings = int(read_ring_crossings)
        stats.reads_supplied_by_cache = int(reads_supplied_by_cache)
        stats.reads_supplied_by_memory = int(reads_supplied_by_memory)
        stats.reads_prefetched = int(reads_prefetched)
        stats.write_ring_transactions = int(write_ring_transactions)
        stats.write_snoops = int(write_snoops)
        stats.write_ring_crossings = int(write_ring_crossings)
        stats.writes_supplied_by_cache = int(writes_supplied_by_cache)
        stats.writes_supplied_by_memory = int(writes_supplied_by_memory)
        stats.squashes = int(squashes)
        stats.retries = int(retries)
        stats.mshr_queued = int(mshr_queued)
        stats.accuracy = PredictorAccuracy(
            int(a_tp), int(a_tn), int(a_fp), int(a_fn)
        )
        stats.perfect_accuracy = PredictorAccuracy(int(p_tp), int(p_tn), 0, 0)
        stats.writebacks = int(writebacks)
        stats.dirty_evictions = int(dirty_evictions)
        stats.downgrades = int(downgrades)
        stats.downgrade_writebacks = int(downgrade_writebacks)
        stats.downgrade_rereads = int(downgrade_rereads)
        stats.read_miss_latency_sum = int(read_miss_latency_sum)
        stats.read_miss_count = int(read_miss_count)
        stats.supplier_latency_sum = int(supplier_latency_sum)
        stats.supplier_latency_count = int(supplier_latency_count)
        stats.read_miss_histogram = histogram
        stats.core_finish_times = [int(value) for value in fin]
        unfinished = [
            core_id
            for core_id, value in enumerate(stats.core_finish_times)
            if value < 0
        ]
        if unfinished:
            raise RuntimeError(
                "simulation ended with unfinished cores: %s" % unfinished
            )
        finish = max(stats.core_finish_times, default=0)
        stats.exec_time = max(finish - int(warmup_end_time), 0)
        stats.events_scheduled = int(seq)
        stats.events_fired = int(processed)

        energy = EnergyModel(config.energy, kind)
        breakdown = energy.breakdown
        breakdown.ring_links = float(e_ring)
        breakdown.snoops = float(e_snoop)
        breakdown.downgrade_ops = float(e_dops)
        breakdown.downgrade_memory = float(e_dmem)
        for predictor in predictors:
            energy.charge_predictor_lookup(predictor.lookups)
            energy.charge_predictor_update(predictor.updates)

        return SimulationResult(
            algorithm=algorithm.name,
            workload=source.name,
            stats=stats,
            energy=breakdown.as_dict(),
            exec_time=stats.exec_time,
            events=int(processed),
            config=config,
        )

"""Full-system simulator: CMP nodes, embedded ring, memory, protocol.

:class:`RingMultiprocessor` assembles the substrates into the machine
of Figure 2(a) and drives a workload trace through it under a chosen
snooping algorithm.  The ring walk of every coherence transaction is
simulated message-by-message with the exact Table 2 primitive
semantics (via :func:`repro.core.primitives.apply_primitive`), so the
snoop counts, message counts, latencies and predictor behaviour emerge
from the mechanism rather than from closed-form shortcuts.

Transaction life cycle (reads):

1. A core misses in its own L2 and in its CMP's local master.
2. A snoop message is issued on the line's embedded ring.  At each
   node the Supplier Predictor is consulted and the algorithm picks a
   primitive; snoops and crossings are counted and charged.
3. If a supplier is found, it transitions per the protocol rules and
   the data line travels the torus to the requester, which may use it
   on arrival (the transaction can no longer be squashed).
4. Otherwise the negative response returns to the requester, which
   fetches the line from the home memory (prefetched if the walk
   passed the home node and the heuristic is on).

Collisions: a transaction issued on a line with an in-flight
conflicting transaction (any write involved) is squashed - it
circulates for serialization only, then retries after a back-off.
Same-CMP requests to a busy line wait in an MSHR instead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.config import MachineConfig
from repro.coherence.cache import CacheLine, EvictionRecord
from repro.coherence.protocol import (
    CoherenceError,
    ProtocolTables,
    downgrade_state,
    local_reader_state,
    requester_state_from_cache,
    requester_state_from_memory,
    supplier_next_state_on_read,
    writer_state,
)
from repro.coherence.states import LineState, SUPPLIER_STATES
from repro.core.algorithms import SnoopingAlgorithm
from repro.core.predictors import NullPredictor, PerfectPredictor
from repro.core.presence import PresencePredictor
from repro.core.primitives import Primitive, apply_primitive
from repro.energy.model import EnergyModel
from repro.metrics.stats import RunStats
from repro.ring.messages import MessageMode, RingMessage, SnoopKind
from repro.ring.node import CMPNode
from repro.ring.topology import RingTopology, TorusTopology
from repro.sim.engine import EventEngine
from repro.sim.memory import MainMemory
from repro.sim.processor import Core, build_cores
from repro.workloads.trace import Access, WorkloadTrace


class Transaction:
    """One in-flight ring coherence transaction.

    A ``__slots__`` class: one instance per ring transaction, with the
    message and the per-transaction step callback (``step_cb``) bound
    once at issue so the walk schedules no per-hop closures.  ``msg``
    is set in ``__init__`` and only becomes ``None`` at retirement,
    when the message returns to the system's pool.
    """

    __slots__ = (
        "txn_id",
        "kind",
        "address",
        "requester_cmp",
        "core",
        "issue_time",
        "msg",
        "needs_data",
        "write_version",
        "expected_version",
        "data_arrival",
        "supplied_version",
        "supplier_cmp",
        "prefetch_initiated",
        "waiters",
        "retired",
        "next_node",
        "step_cb",
    )

    msg: Optional[RingMessage]

    def __init__(
        self,
        txn_id: int,
        kind: SnoopKind,
        address: int,
        requester_cmp: int,
        core: Core,
        issue_time: int,
        msg: RingMessage,
        expected_version: int = 0,
    ) -> None:
        self.txn_id = txn_id
        self.kind = kind
        self.address = address
        self.requester_cmp = requester_cmp
        self.core = core
        self.issue_time = issue_time
        self.msg = msg
        self.needs_data = True
        self.write_version = 0
        self.expected_version = expected_version
        self.data_arrival: Optional[int] = None
        self.supplied_version = 0
        self.supplier_cmp: Optional[int] = None
        self.prefetch_initiated = False
        self.waiters: List[Core] = []
        self.retired = False
        #: node the next scheduled walk event processes (set by the
        #: walk loop right before scheduling ``step_cb``)
        self.next_node = -1
        self.step_cb: Callable[[], None] = _noop

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Transaction(txn_id=%d, kind=%s, address=%#x, cmp=%d)" % (
            self.txn_id,
            self.kind,
            self.address,
            self.requester_cmp,
        )


def _noop() -> None:  # placeholder step callback before the walk starts
    return None


class _PrewarmMemo:
    """Recorded outcome of one workload trace's prewarm pass.

    Prewarm is deterministic given the trace and the cache geometry,
    and - as long as nothing couples predictor training back into
    cache contents - independent of the predictor, so a harness that
    simulates the same trace under several algorithms (the figure
    matrices do exactly that) can pay the full prewarm walk once and
    restore its outcome for every later system.

    The memo stores the final cache sets (per core, per set, in LRU
    order; every prewarmed line is in state E with version 0), the
    registry dictionaries, the per-cache fill/eviction counters, and
    the predictor training stream (``ops``: one list per core,
    ``address`` encoding ``insert(address)`` and ``~address`` encoding
    ``remove(address)``).  ``predictor_snapshots`` additionally caches
    the trained predictor state per :class:`PredictorConfig`, so a
    config that recurs (e.g. Supy2k under both Superset variants)
    skips even the training replay.
    """

    __slots__ = (
        "trace",
        "core_sets",
        "core_fills",
        "core_evictions",
        "holder_count",
        "supplier_of",
        "ops",
        "predictor_snapshots",
    )

    def __init__(
        self,
        trace: WorkloadTrace,
        core_sets: List[List[Tuple[int, Tuple[int, ...]]]],
        core_fills: List[int],
        core_evictions: List[int],
        holder_count: Dict[int, int],
        supplier_of: Dict[int, Tuple[int, int]],
        ops: List[List[int]],
    ) -> None:
        self.trace = trace
        self.core_sets = core_sets
        self.core_fills = core_fills
        self.core_evictions = core_evictions
        self.holder_count = holder_count
        self.supplier_of = supplier_of
        self.ops = ops
        self.predictor_snapshots: Dict[object, List[object]] = {}


#: Process-level prewarm memos, keyed by (trace identity, cache
#: geometry).  Each memo holds a strong reference to its trace, which
#: pins the ``id`` so the key cannot alias a new object; the store is
#: bounded, evicting the oldest entry, so long-running processes do
#: not accumulate traces.
_PREWARM_MEMOS: "OrderedDict[Tuple[int, int, int], _PrewarmMemo]" = (
    OrderedDict()
)
_PREWARM_MEMO_LIMIT = 4


def _ignore_address(address: int) -> None:
    """Stand-in for NullPredictor.insert/remove in the prewarm loop."""
    return None


@dataclass
class SimulationResult:
    """Everything a run produces."""

    algorithm: str
    workload: str
    stats: RunStats
    energy: Dict[str, float]
    exec_time: int
    events: int
    config: MachineConfig

    @property
    def total_energy(self) -> float:
        return self.energy["total"]

    def summary(self) -> Dict[str, float]:
        data = self.stats.summary()
        data["energy_total"] = self.total_energy
        return data


class RingMultiprocessor:
    """The simulated machine.  Build it, then call :meth:`run`."""

    def __init__(
        self,
        config: MachineConfig,
        algorithm: SnoopingAlgorithm,
        workload: WorkloadTrace,
        collect_perfect: bool = True,
        warmup_fraction: float = 0.0,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        workload.validate()
        if workload.num_cmps != config.num_cmps:
            raise ValueError(
                "workload spans %d CMPs but machine has %d"
                % (workload.num_cmps, config.num_cmps)
            )
        if workload.cores_per_cmp != config.cores_per_cmp:
            raise ValueError(
                "workload uses %d cores/CMP but machine has %d"
                % (workload.cores_per_cmp, config.cores_per_cmp)
            )
        self.config = config
        self.algorithm = algorithm
        self.workload = workload
        self.collect_perfect = collect_perfect

        self.engine = EventEngine()
        self.ring = RingTopology(config.num_cmps, config.ring)
        self.torus = TorusTopology(config.num_cmps, config.data_network)
        self.memory = MainMemory(config.memory, config.num_cmps)
        self.stats = RunStats()
        self.energy = EnergyModel(config.energy, config.predictor.kind)

        # O(1) line-location indexes, kept consistent by cache
        # callbacks routed through the LineRegistry hooks below.
        self._supplier_of: Dict[int, Tuple[int, int]] = {}
        self._holder_count: Dict[int, int] = {}
        # Optional write-snoop filtering (extension, see
        # repro.core.presence): one presence predictor per CMP,
        # trained by the same residency callbacks.
        self.presence: List[PresencePredictor] = (
            [PresencePredictor() for _ in range(config.num_cmps)]
            if config.filter_write_snoops
            else []
        )

        self.nodes: List[CMPNode] = [
            CMPNode(
                i,
                config.cores_per_cmp,
                config.cache,
                config.predictor,
                registry=self,
            )
            for i in range(config.num_cmps)
        ]
        for node in self.nodes:
            if node.is_exact:
                node.predictor.set_downgrade_callback(
                    self._make_downgrade_handler(node.cmp_id)
                )
            if isinstance(node.predictor, PerfectPredictor):
                node.predictor.set_truth(
                    self._make_supplier_truth(node.cmp_id)
                )

        self.cores: List[Core] = build_cores(
            workload.traces, config.cores_per_cmp
        )
        # One reusable issue callback per core (indexed by core_id), so
        # completing an access does not allocate a fresh closure for
        # the next one.
        self._issue_cbs: List[Callable[[], None]] = [
            self._make_issue_handler(core) for core in self.cores
        ]
        # Hot-path constants hoisted out of the per-event handlers.
        self._uses_predictor = algorithm.uses_predictor()
        self._choose = algorithm.choose
        self._prefetch_on_snoop = config.memory.prefetch_on_snoop
        self._home_of = self.memory.home_of

        self._active: Dict[int, List[Transaction]] = {}
        self._txn_seq = 0
        self._write_counter = 0
        # Hop batching: walk consecutive ring hops of one transaction
        # inside a single engine event (at "virtual" times ahead of the
        # engine clock) instead of scheduling one event per hop.  Only
        # safe when nothing order-sensitive is shared between in-flight
        # messages at sub-hop granularity, so it auto-disables under
        # the contention models and the presence-filter extension; it
        # is also suspended while warmup statistics can still be reset
        # (see _walk_from).
        self._hop_batching = (
            config.ring.hop_batching
            and config.ring.link_occupancy == 0
            and not config.ring.serialize_snoop_port
            and not config.filter_write_snoops
        )
        # Message pool + simulator-efficiency counters (surfaced on
        # RunStats at the end of run()).
        self._msg_pool: List[RingMessage] = []
        self._hops_batched = 0
        self._messages_allocated = 0
        self._messages_reused = 0
        # Optional contention modeling: next-free times of each ring
        # link (keyed by (ring index, source node)) and of each CMP's
        # snoop port.
        self._link_free: Dict[Tuple[int, int], int] = {}
        self._snoop_port_free: List[int] = [0] * config.num_cmps
        # Warmup: the first ``warmup_fraction`` of all accesses fill
        # the caches and train the predictors; statistics and energy
        # are reset when the threshold is crossed, so reported numbers
        # reflect steady-state behaviour (the paper likewise skips
        # workload initialization before measuring).
        self._completed_accesses = 0
        self._warmup_target = int(workload.total_accesses * warmup_fraction)
        self._in_warmup = self._warmup_target > 0
        self._warmup_end_time = 0
        self._last_completed_write: Dict[int, int] = {}
        self._downgraded: Set[int] = set()
        self._ran = False
        self._apply_prewarm()

    def _apply_prewarm(self) -> None:
        """Install the workload's prewarm lines (resident private data
        of a long-running application) in E state.

        Filled in reverse so the hottest lines (listed first) end up
        most recently used.  Observable effects are identical to
        calling ``cache.fill`` per line (asserted by
        ``test_prewarm_fast_path_matches_generic_fill``), but the
        callback chain - registry bookkeeping, predictor training,
        eviction accounting - is inlined here: prewarm performs
        hundreds of thousands of fills before the first event fires
        and dominates construction cost, so the ~8 Python calls per
        line that the generic path costs are worth flattening.

        The walk's outcome is further memoized per (trace, cache
        geometry) in :data:`_PREWARM_MEMOS` and restored wholesale for
        later systems built on the same trace (see
        ``test_prewarm_memo_matches_full_walk``).  The memo is only
        valid while predictor training cannot feed back into cache
        contents, so the Exact predictor (conflict downgrades) and the
        presence-filter extension always take the full walk.
        """
        if not self.workload.prewarm:
            return
        reusable = (
            not self.presence and self.config.predictor.kind != "exact"
        )
        key = (
            id(self.workload),
            self.config.cache.num_sets,
            self.config.cache.associativity,
        )
        if reusable:
            memo = _PREWARM_MEMOS.get(key)
            if memo is not None and memo.trace is self.workload:
                self._restore_prewarm(memo)
                return
        record = reusable
        ops: List[List[int]] = []
        state_e = LineState.E
        supplier_of = self._supplier_of
        holder_count = self._holder_count
        presence = self.presence
        for core, lines in zip(self.cores, self.workload.prewarm):
            cmp_id = core.cmp_id
            core_id = core.local_id
            node = self.nodes[cmp_id]
            cache = node.caches[core_id]
            if isinstance(node.predictor, (NullPredictor, PerfectPredictor)):
                # Lazy/Eager/Oracle: insert/remove are no-ops; skip
                # the calls.
                predictor_insert = _ignore_address
                predictor_remove = _ignore_address
            else:
                predictor_insert = node.predictor.insert
                predictor_remove = node.predictor.remove
            core_ops: List[int] = []
            if record:
                ops.append(core_ops)
            sets = cache._sets
            num_sets = cache._num_sets
            associativity = cache._associativity
            for address in reversed(lines):
                cache_set = sets[address % num_sets]
                if address in cache_set:
                    # Duplicate prewarm line: take the generic
                    # update-in-place path (rare enough not to matter).
                    cache.fill(address, state_e, 0)
                    continue
                if len(cache_set) >= associativity:
                    victim_address, victim = cache_set.popitem(last=False)
                    cache.evictions += 1
                    if victim.state.dirty:
                        cache.dirty_evictions += 1
                    if victim.state.supplier:
                        # on_state_loss: predictor first, then registry
                        # (same order as the wired callbacks).
                        if record:
                            core_ops.append(~victim_address)
                        predictor_remove(victim_address)
                        if supplier_of.get(victim_address) == (
                            cmp_id,
                            core_id,
                        ):
                            del supplier_of[victim_address]
                    # on_line_removed
                    count = holder_count.get(victim_address, 0) - 1
                    if count <= 0:
                        holder_count.pop(victim_address, None)
                    else:
                        holder_count[victim_address] = count
                    if presence:
                        presence[cmp_id].line_removed(victim_address)
                cache_set[address] = CacheLine(address, state_e, 0)
                cache.fills += 1
                # on_line_added
                holder_count[address] = holder_count.get(address, 0) + 1
                if presence:
                    presence[cmp_id].line_added(address)
                # on_state_gain: register the supplier before training
                # the predictor (an Exact conflict downgrade must see
                # a consistent index), mirroring CMPNode's on_gain.
                existing = supplier_of.get(address)
                if existing is not None and existing != (cmp_id, core_id):
                    raise CoherenceError(
                        "line %#x gained supplier at %s while %s still "
                        "holds it"
                        % (address, (cmp_id, core_id), existing)
                    )
                supplier_of[address] = (cmp_id, core_id)
                if record:
                    core_ops.append(address)
                predictor_insert(address)
        if record:
            self._record_prewarm(key, ops)

    def _record_prewarm(self, key: Tuple[int, int, int], ops: List[List[int]]) -> None:
        """Capture the just-completed prewarm walk into the memo store."""
        core_sets: List[List[Tuple[int, Tuple[int, ...]]]] = []
        core_fills: List[int] = []
        core_evictions: List[int] = []
        for core in self.cores:
            cache = self.nodes[core.cmp_id].caches[core.local_id]
            core_sets.append(
                [
                    (index, tuple(cache_set))
                    for index, cache_set in enumerate(cache._sets)
                    if cache_set
                ]
            )
            core_fills.append(cache.fills)
            core_evictions.append(cache.evictions)
        memo = _PrewarmMemo(
            self.workload,
            core_sets,
            core_fills,
            core_evictions,
            dict(self._holder_count),
            dict(self._supplier_of),
            ops,
        )
        self._store_predictor_snapshot(memo)
        _PREWARM_MEMOS[key] = memo
        while len(_PREWARM_MEMOS) > _PREWARM_MEMO_LIMIT:
            _PREWARM_MEMOS.popitem(last=False)

    def _restore_prewarm(self, memo: _PrewarmMemo) -> None:
        """Re-create the full prewarm outcome from a recorded memo.

        Cache lines are rebuilt fresh (they are mutable), inserted in
        the recorded LRU order; every prewarmed line is E/version 0 by
        construction.  Predictor state is restored from a per-config
        snapshot when one exists, otherwise by replaying the recorded
        training stream through the real predictor methods (which also
        reproduces the predictors' update counters exactly).
        """
        state_e = LineState.E
        for index, core in enumerate(self.cores):
            cache = self.nodes[core.cmp_id].caches[core.local_id]
            sets = cache._sets
            for set_index, addresses in memo.core_sets[index]:
                cache_set = sets[set_index]
                for address in addresses:
                    cache_set[address] = CacheLine(address, state_e, 0)
            cache.fills += memo.core_fills[index]
            cache.evictions += memo.core_evictions[index]
        self._holder_count.update(memo.holder_count)
        self._supplier_of.update(memo.supplier_of)
        kind = self.config.predictor.kind
        if kind in ("none", "perfect"):
            return
        snapshots = memo.predictor_snapshots.get(self.config.predictor)
        if snapshots is not None:
            for node, snapshot in zip(self.nodes, snapshots):
                node.predictor.prewarm_restore(snapshot)
            return
        for core, core_ops in zip(self.cores, memo.ops):
            predictor = self.nodes[core.cmp_id].predictor
            insert = predictor.insert
            remove = predictor.remove
            for op in core_ops:
                if op >= 0:
                    insert(op)
                else:
                    remove(~op)
        self._store_predictor_snapshot(memo)

    def _store_predictor_snapshot(self, memo: _PrewarmMemo) -> None:
        """Cache this config's trained predictor state on the memo, if
        every node's predictor supports snapshotting."""
        if self.config.predictor.kind in ("none", "perfect"):
            return
        snapshots: List[object] = []
        for node in self.nodes:
            snapshot = node.predictor.prewarm_snapshot()
            if snapshot is None:
                return
            snapshots.append(snapshot)
        memo.predictor_snapshots[self.config.predictor] = snapshots

    # ==================================================================
    # LineRegistry hooks (called synchronously by cache mutations)

    def supplier_gain(self, cmp_id: int, core: int, address: int) -> None:
        existing = self._supplier_of.get(address)
        if existing is not None and existing != (cmp_id, core):
            raise CoherenceError(
                "line %#x gained supplier at %s while %s still holds it"
                % (address, (cmp_id, core), existing)
            )
        self._supplier_of[address] = (cmp_id, core)

    def supplier_loss(self, cmp_id: int, core: int, address: int) -> None:
        existing = self._supplier_of.get(address)
        if existing == (cmp_id, core):
            del self._supplier_of[address]

    def line_added(self, cmp_id: int, core: int, address: int) -> None:
        self._holder_count[address] = self._holder_count.get(address, 0) + 1
        if self.presence:
            self.presence[cmp_id].line_added(address)

    def line_removed(self, cmp_id: int, core: int, address: int) -> None:
        count = self._holder_count.get(address, 0) - 1
        if count <= 0:
            self._holder_count.pop(address, None)
        else:
            self._holder_count[address] = count
        if self.presence:
            self.presence[cmp_id].line_removed(address)

    def _cmp_has_supplier(self, cmp_id: int, address: int) -> bool:
        entry = self._supplier_of.get(address)
        return entry is not None and entry[0] == cmp_id

    def _make_supplier_truth(self, cmp_id: int):
        supplier_of = self._supplier_of

        def truth(address: int) -> bool:
            entry = supplier_of.get(address)
            return entry is not None and entry[0] == cmp_id

        return truth

    # ==================================================================
    # Public API

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        """Replay the workload to completion and return the results."""
        if self._ran:
            raise RuntimeError("a RingMultiprocessor can only run once")
        self._ran = True
        for core in self.cores:
            if core.trace:
                self.engine.call_after(
                    core.trace[0].think_time,
                    self._issue_cbs[core.core_id],
                )
            else:
                core.finish_time = 0
        self.engine.run(max_events=max_events)
        self._finalize_energy()
        self.stats.core_finish_times = [
            core.finish_time if core.finish_time is not None else -1
            for core in self.cores
        ]
        unfinished = [c.core_id for c in self.cores if c.finish_time is None]
        if unfinished:
            raise RuntimeError(
                "simulation ended with unfinished cores: %s" % unfinished
            )
        finish = max(self.stats.core_finish_times, default=0)
        self.stats.exec_time = max(finish - self._warmup_end_time, 0)
        # Simulator-efficiency counters: whole-run values (diagnostics
        # of the simulation itself, so they ignore the warmup reset).
        self.stats.events_scheduled = self.engine.events_scheduled
        self.stats.events_fired = self.engine.events_processed
        self.stats.hops_batched = self._hops_batched
        self.stats.messages_allocated = self._messages_allocated
        self.stats.messages_reused = self._messages_reused
        return SimulationResult(
            algorithm=self.algorithm.name,
            workload=self.workload.name,
            stats=self.stats,
            energy=self.energy.breakdown.as_dict(),
            exec_time=self.stats.exec_time,
            events=self.engine.events_processed,
            config=self.config,
        )

    def _end_warmup(self) -> None:
        """Reset all measurement state; caches and predictors keep
        their trained contents."""
        self._in_warmup = False
        self._warmup_end_time = self.engine.now
        self.stats = RunStats()
        self.energy = EnergyModel(
            self.config.energy, self.config.predictor.kind
        )
        for node in self.nodes:
            node.predictor.lookups = 0
            node.predictor.updates = 0
        for presence in self.presence:
            presence.lookups = 0
            presence.updates = 0
            presence.filtered = 0
        self.memory.reads = 0
        self.memory.writebacks = 0
        self.memory.prefetches = 0

    # ==================================================================
    # Core replay

    def _make_issue_handler(self, core: Core) -> Callable[[], None]:
        return lambda: self._issue_access(core)

    def _issue_access(self, core: Core) -> None:
        access = core.current_access
        core.block(self.engine.now)
        if access.is_write:
            self._handle_write(core, access)
        else:
            self._handle_read(core, access)

    def _complete_access(self, core: Core, at_time: int) -> None:
        core.unblock(at_time)
        core.advance()
        self._completed_accesses += 1
        if self._in_warmup and self._completed_accesses >= self._warmup_target:
            self._end_warmup()
        if core.done:
            core.finish_time = at_time
            return
        next_access = core.current_access
        now = self.engine.now
        if at_time < now:
            at_time = now
        self.engine.call_at(
            at_time + next_access.think_time,
            self._issue_cbs[core.core_id],
        )

    # ==================================================================
    # Reads

    def _handle_read(self, core: Core, access: Access) -> None:
        self.stats.reads += 1
        address = access.address
        node = self.nodes[core.cmp_id]
        own = node.caches[core.local_id]

        line = own.lookup(address)
        if line is not None:
            self.stats.read_hits_local_cache += 1
            self._check_version(address, line.version, at_issue=True)
            self._complete_access(
                core, self.engine.now + self.config.cache.hit_latency
            )
            return

        master_core = node.local_master_core(address)
        if master_core is not None:
            master_cache = node.caches[master_core]
            master_line = master_cache.lookup(address)
            assert master_line is not None
            self.stats.read_hits_local_master += 1
            if master_line.state in SUPPLIER_STATES:
                # A dirty or exclusive master now shares the line:
                # D becomes T, E becomes SG (SG and T are unchanged),
                # exactly as when supplying a ring read.
                master_cache.set_state(
                    address,
                    supplier_next_state_on_read(master_line.state),
                )
            self._fill(
                core, address, local_reader_state(), master_line.version
            )
            self._check_version(address, master_line.version, at_issue=True)
            self._complete_access(
                core,
                self.engine.now + self.config.cache.local_master_latency,
            )
            return

        self._start_ring_transaction(core, address, SnoopKind.READ)

    # ==================================================================
    # Writes

    def _handle_write(self, core: Core, access: Access) -> None:
        self.stats.writes += 1
        address = access.address
        node = self.nodes[core.cmp_id]
        own = node.caches[core.local_id]
        state = own.state_of(address)

        if state in (LineState.E, LineState.D):
            # Silent upgrade: exclusive ownership already held.
            self.stats.write_hits_exclusive += 1
            self._write_counter += 1
            version = self._write_counter
            own.set_state(address, LineState.D)
            resident = own.lookup(address)
            assert resident is not None
            resident.version = version
            done = self.engine.now + self.config.cache.hit_latency
            self._note_write_completed(address, version, done)
            self._complete_access(core, done)
            return

        self._start_ring_transaction(core, address, SnoopKind.WRITE)

    # ==================================================================
    # Ring transactions: issue, walk, completion

    def _start_ring_transaction(
        self, core: Core, address: int, kind: SnoopKind
    ) -> None:
        now = self.engine.now
        active_list = self._active.get(address)
        squashed = False
        if active_list:
            for txn in active_list:
                if txn.requester_cmp == core.cmp_id:
                    txn.waiters.append(core)
                    self.stats.mshr_queued += 1
                    return
            # A write-involving overlap on the same line from another
            # CMP is a collision; the younger message is squashed and
            # retried (Section 2.1.4).  Already-squashed messages are
            # ignored: they circulate for serialization only and must
            # never squash others, or two retrying requesters would
            # livelock each other.  Concurrent *reads* proceed - the
            # memory-race between two reads that both miss all caches
            # is reconciled at data-delivery time.
            squashed = any(
                t.msg is not None
                and not t.msg.squashed
                and (kind is SnoopKind.WRITE or t.kind is SnoopKind.WRITE)
                for t in active_list
            )

        self._txn_seq += 1
        if self._msg_pool:
            msg = self._msg_pool.pop()
            msg.reinit(
                self._txn_seq,
                kind,
                address,
                core.cmp_id,
                request_time=now,
                squashed=squashed,
            )
            self._messages_reused += 1
        else:
            msg = RingMessage(
                self._txn_seq,
                kind,
                address,
                core.cmp_id,
                request_time=now,
                squashed=squashed,
            )
            self._messages_allocated += 1
        txn = Transaction(
            txn_id=self._txn_seq,
            kind=kind,
            address=address,
            requester_cmp=core.cmp_id,
            core=core,
            issue_time=now,
            msg=msg,
            expected_version=self._last_completed_write.get(address, 0),
        )
        if kind is SnoopKind.WRITE:
            # Data for the write can come from the writer's own copy
            # or from any valid copy in the CMP (supplied over the CMP
            # bus); only a CMP-wide miss needs data from the ring or
            # memory.  The version is allocated at commit time so that
            # write serialization order matches commit order.
            txn.needs_data = not self.nodes[core.cmp_id].holders(address)
        txn.step_cb = self._make_step_handler(txn)
        self._active.setdefault(address, []).append(txn)

        if not squashed:
            if kind is SnoopKind.READ:
                self.stats.read_ring_transactions += 1
            else:
                self.stats.write_ring_transactions += 1

        self._forward_request(txn, core.cmp_id, now)

    def _cross_link(self, txn: Transaction, from_node: int,
                    departure: int) -> int:
        """Reserve the ring link for one message crossing; returns the
        actual departure time (== requested time unless link
        contention modeling is on and the link is busy)."""
        occupancy = self.config.ring.link_occupancy
        if not occupancy:
            return departure
        key = (self.ring.ring_of(txn.address), from_node)
        actual = max(departure, self._link_free.get(key, 0))
        self._link_free[key] = actual + occupancy
        return actual

    def _reserve_snoop_port(self, node_id: int, ready: int) -> int:
        """Queueing delay before a snoop can start at ``node_id``."""
        if not self.config.ring.serialize_snoop_port:
            return 0
        start = max(ready, self._snoop_port_free[node_id])
        self._snoop_port_free[node_id] = (
            start + self.config.ring.snoop_time
        )
        return start - ready

    def _make_step_handler(self, txn: Transaction) -> Callable[[], None]:
        """One walk callback per transaction, reused for every
        scheduled hop (``txn.next_node`` carries the target node)."""

        def step() -> None:
            self._walk_from(txn, txn.next_node, self.engine.now)

        return step

    def _forward_request(
        self, txn: Transaction, from_node: int, departure: int
    ) -> None:
        """Send the request/combined form across one ring segment,
        leaving ``from_node`` at ``departure``, then walk onward."""
        msg = txn.msg
        assert msg is not None
        msg.hops_request += 1
        self._charge_crossing(txn)
        departure = self._cross_link(txn, from_node, departure)
        arrival = departure + self.config.ring.hop_latency
        to_node = self.ring.next_node(from_node)
        if (
            self._hop_batching
            and not self._in_warmup
            and (msg.squashed or msg.satisfied)
            and to_node != txn.requester_cmp
        ):
            # Batched: the message is circulating (squashed, or a
            # satisfied combined R/R) so the next node is guaranteed
            # not to snoop or touch any shared state - its processing
            # runs inline at the "virtual" arrival time instead of
            # through a scheduled event.  Every timing value computed
            # downstream is identical to the event-per-hop execution;
            # only the engine's event count shrinks.  Nodes that might
            # snoop and the requester keep their own events so all
            # coherence-state mutations still execute in engine order.
            # Suspended during warmup so counters land on the correct
            # side of the warmup statistics reset (the reset fires
            # from a completion event that may interleave with hops).
            self._hops_batched += 1
            self._walk_from(txn, to_node, arrival)
            return
        txn.next_node = to_node
        self.engine.call_at(arrival, txn.step_cb)

    def _charge_crossing(self, txn: Transaction) -> None:
        self.energy.charge_ring_crossing()
        if txn.kind is SnoopKind.READ:
            self.stats.read_ring_crossings += 1
        else:
            self.stats.write_ring_crossings += 1

    def _advance_trailing_reply(
        self, txn: Transaction, node_id: int
    ) -> None:
        """Move the trailing reply across the segment into ``node_id``
        (the node currently processing the request).

        With link-contention modeling on, the reply reserves the same
        link the request used; the reservation is made when the
        request is processed, a one-hop-early approximation that keeps
        the reply's timing analytic.
        """
        msg = txn.msg
        assert msg is not None
        if msg.mode is MessageMode.SPLIT:
            assert msg.reply_time is not None
            upstream = (node_id - 1) % self.config.num_cmps
            departure = self._cross_link(txn, upstream, msg.reply_time)
            msg.reply_time = departure + self.config.ring.hop_latency
            msg.hops_reply += 1
            self._charge_crossing(txn)

    def _walk_from(self, txn: Transaction, node_id: int, now: int) -> None:
        """Process the request's arrival at ``node_id`` at time
        ``now``.

        ``now`` equals ``engine.now`` when entered from a scheduled
        walk event; with hop batching it runs ahead of the engine
        clock (the hop's computed arrival time), which is transparent
        to everything downstream because all timing is derived from
        ``now`` rather than read off the engine.
        """
        msg = txn.msg
        assert msg is not None
        if node_id == txn.requester_cmp:
            # The final reply crossing is accounted by _walk_returned.
            self._walk_returned(txn, now)
            return
        self._advance_trailing_reply(txn, node_id)

        if msg.squashed or msg.satisfied:
            # Squashed messages circulate for serialization only; a
            # satisfied combined R/R is a reply and induces no snoops.
            self._forward_request(txn, node_id, now)
            return

        if txn.kind is SnoopKind.WRITE:
            self._write_step(txn, node_id, now)
            return

        self._read_step(txn, node_id, now)

    # ------------------------------------------------------------------
    # Read walk

    def _read_step(self, txn: Transaction, node_id: int, now: int) -> None:
        msg = txn.msg
        assert msg is not None
        node = self.nodes[node_id]
        address = txn.address
        entry = self._supplier_of.get(address)
        supplier_here = entry is not None and entry[0] == node_id

        if (
            self.collect_perfect
            and not msg.satisfied_reply
            and not msg.satisfied
        ):
            # The paper's "perfect predictor" is checked at every node
            # until the request finds the supplier.
            self.stats.perfect_accuracy.record(supplier_here, supplier_here)

        if self._uses_predictor:
            predictor = node.predictor
            prediction = predictor.lookup(address)
            predictor_latency = predictor.latency
            if not isinstance(predictor, PerfectPredictor):
                self.stats.accuracy.record(prediction, supplier_here)
        else:
            prediction = True
            predictor_latency = 0

        primitive = self._choose(prediction)
        if primitive is Primitive.FORWARD:
            if supplier_here:
                raise CoherenceError(
                    "algorithm %s filtered the snoop at the supplier node "
                    "(false negative on line %#x at CMP %d)"
                    % (self.algorithm.name, address, node_id)
                )
            # Filtered hop - apply_primitive's FORWARD branch inlined:
            # both physical forms pass through unchanged after the
            # predictor access, so no outcome object is needed on the
            # read walk's most common step.
            if (
                self._prefetch_on_snoop
                and node_id == self._home_of(address)
                and not txn.prefetch_initiated
                and not msg.satisfied_reply
            ):
                txn.prefetch_initiated = True
                self.memory.note_prefetch()
            self._forward_request(txn, node_id, now + predictor_latency)
            return

        snoop_queue_delay = self._reserve_snoop_port(
            node_id, now + predictor_latency
        )
        outcome = apply_primitive(
            msg,
            primitive,
            now=now,
            snoop_time=self.config.ring.snoop_time,
            predictor_latency=predictor_latency,
            node_is_supplier=supplier_here,
            node=node_id,
            snoop_queue_delay=snoop_queue_delay,
        )

        if outcome.snooped:
            self.stats.read_snoops += 1
            self.energy.charge_snoop()
            if (
                not supplier_here
                and prediction
                and self.algorithm.uses_predictor()
            ):
                node.predictor.observe_false_positive(address)
            if outcome.supplied:
                assert outcome.snoop_done is not None
                self._supply_read(txn, node_id, outcome.snoop_done)

        if self.memory.config.prefetch_on_snoop and node_id == (
            self.memory.home_of(address)
        ):
            if not txn.prefetch_initiated and not msg.satisfied_reply:
                txn.prefetch_initiated = True
                self.memory.note_prefetch()

        self._forward_request(txn, node_id, outcome.request_departure)

    def _supply_read(
        self, txn: Transaction, node_id: int, snoop_done: int
    ) -> None:
        node = self.nodes[node_id]
        found = node.supplier_line(txn.address)
        assert found is not None, "supplier vanished mid-transaction"
        supplier_core, line = found
        next_state = supplier_next_state_on_read(line.state)
        node.caches[supplier_core].set_state(txn.address, next_state)

        txn.supplier_cmp = node_id
        txn.supplied_version = line.version
        data_arrival = snoop_done + self.torus.transfer_latency(
            node_id, txn.requester_cmp
        )
        txn.data_arrival = data_arrival
        self.stats.reads_supplied_by_cache += 1
        self.stats.supplier_latency_sum += snoop_done - txn.issue_time
        self.stats.supplier_latency_count += 1
        self.engine.call_at(
            data_arrival, lambda: self._deliver_read_data(txn)
        )

    def _deliver_read_data(self, txn: Transaction) -> None:
        self._fill(
            txn.core,
            txn.address,
            requester_state_from_cache(),
            txn.supplied_version,
        )
        self._check_version(txn.address, txn.supplied_version, txn=txn)
        self._record_read_latency(txn)
        self._complete_access(txn.core, self.engine.now)

    # ------------------------------------------------------------------
    # Write walk

    def _write_step(self, txn: Transaction, node_id: int, now: int) -> None:
        msg = txn.msg
        assert msg is not None
        node = self.nodes[node_id]
        address = txn.address
        supplier_here = self._cmp_has_supplier(node_id, address)

        # Writes snoop (and invalidate) at every node; decoupling only
        # changes whether invalidations proceed in parallel.  With the
        # presence-predictor extension, a node that provably caches no
        # copy skips the snoop entirely (the filter has no false
        # negatives, so this never misses a copy).
        predictor_latency = 0
        if self.presence:
            presence = self.presence[node_id]
            predictor_latency = presence.access_latency
            if not presence.may_be_present(address):
                outcome = apply_primitive(
                    msg,
                    Primitive.FORWARD,
                    now=now,
                    snoop_time=self.config.ring.snoop_time,
                    predictor_latency=predictor_latency,
                    node_is_supplier=False,
                    node=node_id,
                )
                self._forward_request(
                    txn, node_id, outcome.request_departure
                )
                return
        primitive = (
            Primitive.FORWARD_THEN_SNOOP
            if self.algorithm.decouple_writes
            else Primitive.SNOOP_THEN_FORWARD
        )
        outcome = apply_primitive(
            msg,
            primitive,
            now=now,
            snoop_time=self.config.ring.snoop_time,
            predictor_latency=predictor_latency,
            node_is_supplier=False,  # writes never mark the message satisfied
            node=node_id,
            snoop_queue_delay=self._reserve_snoop_port(
                node_id, now + predictor_latency
            ),
        )
        assert outcome.snooped and outcome.snoop_done is not None
        self.stats.write_snoops += 1
        self.energy.charge_snoop()

        if supplier_here and txn.needs_data and txn.data_arrival is None:
            found = node.supplier_line(address)
            assert found is not None
            _, line = found
            txn.supplied_version = line.version
            txn.supplier_cmp = node_id
            txn.data_arrival = outcome.snoop_done + self.torus.transfer_latency(
                node_id, txn.requester_cmp
            )
            self.stats.writes_supplied_by_cache += 1

        snoop_done = outcome.snoop_done
        self.engine.call_at(
            snoop_done, lambda: self.nodes[node_id].invalidate_all(address)
        )

        self._forward_request(txn, node_id, outcome.request_departure)

    # ------------------------------------------------------------------
    # Walk completion

    def _walk_returned(self, txn: Transaction, now: int) -> None:
        """The request form is back at the requester; wait for the
        trailing reply if the message is split.  ``now`` is the
        request's arrival time (virtual when hops were batched)."""
        msg = txn.msg
        assert msg is not None
        if msg.mode is MessageMode.SPLIT:
            assert msg.reply_time is not None
            info_time = msg.reply_time + self.config.ring.hop_latency
            msg.hops_reply += 1
            self._charge_crossing(txn)
        else:
            info_time = now
        self.engine.call_at(
            max(info_time, now), lambda: self._walk_done(txn)
        )

    def _walk_done(self, txn: Transaction) -> None:
        now = self.engine.now
        msg = txn.msg
        assert msg is not None
        if msg.squashed:
            self._retire(txn)
            self.stats.squashes += 1
            self.engine.call_after(
                self.config.squash_backoff, lambda: self._retry(txn)
            )
            return
        if txn.kind is SnoopKind.WRITE:
            self._write_done(txn, now)
        else:
            self._read_done(txn, now)

    def _read_done(self, txn: Transaction, info_time: int) -> None:
        msg = txn.msg
        assert msg is not None
        if msg.satisfied or msg.satisfied_reply:
            # Data delivery is already scheduled; retire once both the
            # reply has returned and the data has arrived.
            assert txn.data_arrival is not None
            retire_at = max(info_time, txn.data_arrival)
            if retire_at > self.engine.now:
                self.engine.call_at(retire_at, lambda: self._retire(txn))
            else:
                self._retire(txn)
            return

        # Negative response: fetch from the home memory.
        address = txn.address
        latency = self.memory.read_latency(
            txn.requester_cmp, address, txn.prefetch_initiated
        )
        if (
            txn.prefetch_initiated
            and self.memory.home_of(address) != txn.requester_cmp
        ):
            self.stats.reads_prefetched += 1
        self.stats.reads_supplied_by_memory += 1

        if address in self._downgraded:
            # The Exact predictor downgraded this line; had it not, a
            # cache could have supplied it.  Charge the re-read.
            if self._any_holder(address):
                self.energy.charge_downgrade_reread()
                self.stats.downgrade_rereads += 1
            self._downgraded.discard(address)

        data_arrival = info_time + latency
        txn.data_arrival = data_arrival
        self.engine.call_at(
            data_arrival, lambda: self._deliver_memory_data(txn)
        )

    def _deliver_memory_data(self, txn: Transaction) -> None:
        address = txn.address
        # Reconcile with the global state *now*: a concurrent read from
        # another CMP may have installed a supplier after our walk
        # passed it (both walks found no supplier and both went to
        # memory).  In that case we take the shared role, keeping the
        # single-supplier invariant; the racing supplier can only be
        # clean (a write would have squashed this read), so memory's
        # data is current.
        supplier = self._find_global_supplier(address)
        if supplier is not None:
            node_id, core_id = supplier
            cache = self.nodes[node_id].caches[core_id]
            line = cache.lookup(address, touch=False)
            assert line is not None
            cache.set_state(
                address, supplier_next_state_on_read(line.state)
            )
            version = line.version
            state = requester_state_from_cache()
        else:
            version = self.memory.read(address)
            state = requester_state_from_memory(self._any_holder(address))
        self._fill(txn.core, address, state, version)
        self._check_version(address, version, txn=txn)
        self._record_read_latency(txn)
        self._complete_access(txn.core, self.engine.now)
        self._retire(txn)

    def _write_done(self, txn: Transaction, info_time: int) -> None:
        address = txn.address
        if txn.needs_data:
            if txn.data_arrival is not None:
                complete_at = max(info_time, txn.data_arrival)
            else:
                latency = self.memory.read_latency(
                    txn.requester_cmp, address, txn.prefetch_initiated
                )
                self.memory.read(address)
                self.stats.writes_supplied_by_memory += 1
                complete_at = info_time + latency
        else:
            complete_at = info_time

        if complete_at > self.engine.now:
            self.engine.call_at(
                complete_at, lambda: self._commit_write(txn, complete_at)
            )
        else:
            self._commit_write(txn, complete_at)

    def _commit_write(self, txn: Transaction, at_time: int) -> None:
        core = txn.core
        address = txn.address
        node = self.nodes[core.cmp_id]
        # The version is allocated here, at commit, so that it is
        # consistent with the global serialization order of writes
        # (an owner's silent write that slipped in while this
        # transaction was in flight must order before it).
        self._write_counter += 1
        txn.write_version = self._write_counter
        # Local copies (including the writer's own old copy) are
        # invalidated on the CMP bus, then the writer installs the
        # dirty line.
        node.invalidate_all(address)
        self._fill(core, address, writer_state(), txn.write_version)
        self._note_write_completed(address, txn.write_version, at_time)
        self._complete_access(core, at_time)
        self._retire(txn)

    # ------------------------------------------------------------------
    # Retirement, retries, MSHR waiters

    def _retire(self, txn: Transaction) -> None:
        if txn.retired:
            return
        txn.retired = True
        active_list = self._active.get(txn.address)
        if active_list and txn in active_list:
            active_list.remove(txn)
            if not active_list:
                del self._active[txn.address]
        if self.config.check_invariants:
            self._check_line_invariants(txn.address)
        # The walk is over and nothing reads the message after
        # retirement: return it to the pool for the next transaction.
        msg = txn.msg
        if msg is not None:
            txn.msg = None
            self._msg_pool.append(msg)
        waiters, txn.waiters = txn.waiters, []
        for waiter in waiters:
            self.engine.call_after(0, self._make_reissue_handler(waiter))

    def _make_reissue_handler(self, core: Core) -> Callable[[], None]:
        def reissue() -> None:
            access = core.current_access
            if access.is_write:
                self._handle_write_reissue(core, access)
            else:
                self._handle_read_reissue(core, access)

        return reissue

    def _handle_read_reissue(self, core: Core, access: Access) -> None:
        # Identical to _handle_read but without re-counting the access.
        self.stats.reads -= 1
        self._handle_read(core, access)

    def _handle_write_reissue(self, core: Core, access: Access) -> None:
        self.stats.writes -= 1
        self._handle_write(core, access)

    def _retry(self, txn: Transaction) -> None:
        self.stats.retries += 1
        core = txn.core
        access = core.current_access
        if access.is_write:
            self._handle_write_reissue(core, access)
        else:
            self._handle_read_reissue(core, access)

    # ------------------------------------------------------------------
    # Cache mutation helpers

    def _fill(
        self, core: Core, address: int, state: LineState, version: int
    ) -> None:
        cache = self.nodes[core.cmp_id].caches[core.local_id]
        victim = cache.fill(address, state, version)
        if victim is not None:
            self._handle_eviction(victim)

    def _handle_eviction(self, victim: EvictionRecord) -> None:
        self.stats.dirty_evictions += victim.dirty
        if victim.dirty:
            self.memory.writeback(victim.address, victim.version)
            self.stats.writebacks += 1

    def _make_downgrade_handler(self, cmp_id: int) -> Callable[[int], None]:
        def downgrade(address: int) -> None:
            node = self.nodes[cmp_id]
            core = node.find_downgrade_victim(address)
            if core is None:
                return
            cache = node.caches[core]
            line = cache.lookup(address, touch=False)
            assert line is not None
            new_state, needs_writeback = downgrade_state(line.state)
            if needs_writeback:
                self.memory.writeback(address, line.version)
                self.stats.downgrade_writebacks += 1
                self.energy.charge_downgrade_writeback()
            cache.set_state(address, new_state)
            self.stats.downgrades += 1
            self.energy.charge_downgrade()
            self._downgraded.add(address)

        return downgrade

    # ------------------------------------------------------------------
    # Bookkeeping helpers

    def _any_holder(self, address: int) -> bool:
        return self._holder_count.get(address, 0) > 0

    def _find_global_supplier(
        self, address: int
    ) -> Optional[Tuple[int, int]]:
        """(cmp, core) of the machine-wide supplier copy, if any."""
        return self._supplier_of.get(address)

    def _note_write_completed(
        self, address: int, version: int, at_time: int
    ) -> None:
        if version > self._last_completed_write.get(address, 0):
            self._last_completed_write[address] = version

    def _check_version(
        self,
        address: int,
        obtained: int,
        txn: Optional[Transaction] = None,
        at_issue: bool = False,
    ) -> None:
        if not self.config.track_versions:
            return
        if txn is not None:
            expected = txn.expected_version
        else:
            expected = self._last_completed_write.get(address, 0)
        if obtained < expected:
            self.stats.version_violations += 1

    def _record_read_latency(self, txn: Transaction) -> None:
        assert txn.data_arrival is not None
        latency = txn.data_arrival - txn.issue_time
        self.stats.read_miss_latency_sum += latency
        self.stats.read_miss_count += 1
        self.stats.read_miss_histogram.record(latency)

    def _check_line_invariants(self, address: int) -> None:
        snapshot: Dict[Tuple[int, int], LineState] = {}
        for node in self.nodes:
            for core_idx, cache in enumerate(node.caches):
                state = cache.state_of(address)
                if state != LineState.I:
                    snapshot[(node.cmp_id, core_idx)] = state
        ProtocolTables.check_line(snapshot, address)

    def _finalize_energy(self) -> None:
        for node in self.nodes:
            self.energy.charge_predictor_lookup(node.predictor.lookups)
            self.energy.charge_predictor_update(node.predictor.updates)
        # The presence filter (write-snoop filtering extension) is a
        # Bloom structure of the Superset predictor's class; charge it
        # at the same rates.
        for presence in self.presence:
            self.energy.breakdown.predictor_lookups += (
                presence.lookups * self.config.energy.superset_lookup
            )
            self.energy.breakdown.predictor_updates += (
                presence.updates * self.config.energy.superset_update
            )

"""Full-system simulator: CMP nodes, embedded ring, memory, protocol.

:class:`RingMultiprocessor` assembles the substrates into the machine
of Figure 2(a) and drives a workload trace through it under a chosen
snooping algorithm.  The ring walk of every coherence transaction is
simulated message-by-message with the exact Table 2 primitive
semantics (via :func:`repro.core.primitives.apply_primitive`), so the
snoop counts, message counts, latencies and predictor behaviour emerge
from the mechanism rather than from closed-form shortcuts.

Transaction life cycle (reads):

1. A core misses in its own L2 and in its CMP's local master.
2. A snoop message is issued on the line's embedded ring.  At each
   node the Supplier Predictor is consulted and the algorithm picks a
   primitive; snoops and crossings are counted and charged.
3. If a supplier is found, it transitions per the protocol rules and
   the data line travels the torus to the requester, which may use it
   on arrival (the transaction can no longer be squashed).
4. Otherwise the negative response returns to the requester, which
   fetches the line from the home memory (prefetched if the walk
   passed the home node and the heuristic is on).

Collisions: a transaction issued on a line with an in-flight
conflicting transaction (any write involved) is squashed - it
circulates for serialization only, then retries after a back-off.
Same-CMP requests to a busy line wait in an MSHR instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.config import MachineConfig
from repro.coherence.cache import EvictionRecord
from repro.coherence.protocol import (
    CoherenceError,
    ProtocolTables,
    downgrade_state,
    local_reader_state,
    requester_state_from_cache,
    requester_state_from_memory,
    supplier_next_state_on_read,
    writer_state,
)
from repro.coherence.states import LineState, SUPPLIER_STATES
from repro.core.algorithms import SnoopingAlgorithm
from repro.core.predictors import PerfectPredictor
from repro.core.presence import PresencePredictor
from repro.core.primitives import Primitive, apply_primitive
from repro.energy.model import EnergyModel
from repro.metrics.stats import RunStats
from repro.ring.messages import MessageMode, RingMessage, SnoopKind
from repro.ring.node import CMPNode
from repro.ring.topology import RingTopology, TorusTopology
from repro.sim.engine import EventEngine
from repro.sim.memory import MainMemory
from repro.sim.processor import Core, build_cores
from repro.workloads.trace import Access, WorkloadTrace


@dataclass
class Transaction:
    """One in-flight ring coherence transaction."""

    txn_id: int
    kind: SnoopKind
    address: int
    requester_cmp: int
    core: Core
    issue_time: int
    msg: RingMessage = None  # type: ignore[assignment]
    needs_data: bool = True
    write_version: int = 0
    expected_version: int = 0
    data_arrival: Optional[int] = None
    supplied_version: int = 0
    supplier_cmp: Optional[int] = None
    prefetch_initiated: bool = False
    waiters: List[Core] = field(default_factory=list)
    retired: bool = False


@dataclass
class SimulationResult:
    """Everything a run produces."""

    algorithm: str
    workload: str
    stats: RunStats
    energy: Dict[str, float]
    exec_time: int
    events: int
    config: MachineConfig

    @property
    def total_energy(self) -> float:
        return self.energy["total"]

    def summary(self) -> Dict[str, float]:
        data = self.stats.summary()
        data["energy_total"] = self.total_energy
        return data


class RingMultiprocessor:
    """The simulated machine.  Build it, then call :meth:`run`."""

    def __init__(
        self,
        config: MachineConfig,
        algorithm: SnoopingAlgorithm,
        workload: WorkloadTrace,
        collect_perfect: bool = True,
        warmup_fraction: float = 0.0,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        workload.validate()
        if workload.num_cmps != config.num_cmps:
            raise ValueError(
                "workload spans %d CMPs but machine has %d"
                % (workload.num_cmps, config.num_cmps)
            )
        if workload.cores_per_cmp != config.cores_per_cmp:
            raise ValueError(
                "workload uses %d cores/CMP but machine has %d"
                % (workload.cores_per_cmp, config.cores_per_cmp)
            )
        self.config = config
        self.algorithm = algorithm
        self.workload = workload
        self.collect_perfect = collect_perfect

        self.engine = EventEngine()
        self.ring = RingTopology(config.num_cmps, config.ring)
        self.torus = TorusTopology(config.num_cmps, config.data_network)
        self.memory = MainMemory(config.memory, config.num_cmps)
        self.stats = RunStats()
        self.energy = EnergyModel(config.energy, config.predictor.kind)

        # O(1) line-location indexes, kept consistent by cache
        # callbacks routed through the LineRegistry hooks below.
        self._supplier_of: Dict[int, Tuple[int, int]] = {}
        self._holder_count: Dict[int, int] = {}
        # Optional write-snoop filtering (extension, see
        # repro.core.presence): one presence predictor per CMP,
        # trained by the same residency callbacks.
        self.presence: List[PresencePredictor] = (
            [PresencePredictor() for _ in range(config.num_cmps)]
            if config.filter_write_snoops
            else []
        )

        self.nodes: List[CMPNode] = [
            CMPNode(
                i,
                config.cores_per_cmp,
                config.cache,
                config.predictor,
                registry=self,
            )
            for i in range(config.num_cmps)
        ]
        for node in self.nodes:
            if node.is_exact:
                node.predictor.set_downgrade_callback(
                    self._make_downgrade_handler(node.cmp_id)
                )
            if isinstance(node.predictor, PerfectPredictor):
                node.predictor.set_truth(
                    self._make_supplier_truth(node.cmp_id)
                )

        self.cores: List[Core] = build_cores(
            workload.traces, config.cores_per_cmp
        )

        self._active: Dict[int, List[Transaction]] = {}
        self._txn_seq = 0
        self._write_counter = 0
        # Optional contention modeling: next-free times of each ring
        # link (keyed by (ring index, source node)) and of each CMP's
        # snoop port.
        self._link_free: Dict[Tuple[int, int], int] = {}
        self._snoop_port_free: List[int] = [0] * config.num_cmps
        # Warmup: the first ``warmup_fraction`` of all accesses fill
        # the caches and train the predictors; statistics and energy
        # are reset when the threshold is crossed, so reported numbers
        # reflect steady-state behaviour (the paper likewise skips
        # workload initialization before measuring).
        self._completed_accesses = 0
        self._warmup_target = int(workload.total_accesses * warmup_fraction)
        self._in_warmup = self._warmup_target > 0
        self._warmup_end_time = 0
        self._last_completed_write: Dict[int, int] = {}
        self._downgraded: Set[int] = set()
        self._ran = False
        self._apply_prewarm()

    def _apply_prewarm(self) -> None:
        """Install the workload's prewarm lines (resident private data
        of a long-running application) in E state.

        Filled in reverse so the hottest lines (listed first) end up
        most recently used.  The fills flow through the normal cache
        callbacks, so predictors and the line registry see them.
        """
        if not self.workload.prewarm:
            return
        for core, lines in zip(self.cores, self.workload.prewarm):
            cache = self.nodes[core.cmp_id].caches[core.local_id]
            for address in reversed(lines):
                cache.fill(address, LineState.E, 0)

    # ==================================================================
    # LineRegistry hooks (called synchronously by cache mutations)

    def supplier_gain(self, cmp_id: int, core: int, address: int) -> None:
        existing = self._supplier_of.get(address)
        if existing is not None and existing != (cmp_id, core):
            raise CoherenceError(
                "line %#x gained supplier at %s while %s still holds it"
                % (address, (cmp_id, core), existing)
            )
        self._supplier_of[address] = (cmp_id, core)

    def supplier_loss(self, cmp_id: int, core: int, address: int) -> None:
        existing = self._supplier_of.get(address)
        if existing == (cmp_id, core):
            del self._supplier_of[address]

    def line_added(self, cmp_id: int, core: int, address: int) -> None:
        self._holder_count[address] = self._holder_count.get(address, 0) + 1
        if self.presence:
            self.presence[cmp_id].line_added(address)

    def line_removed(self, cmp_id: int, core: int, address: int) -> None:
        count = self._holder_count.get(address, 0) - 1
        if count <= 0:
            self._holder_count.pop(address, None)
        else:
            self._holder_count[address] = count
        if self.presence:
            self.presence[cmp_id].line_removed(address)

    def _cmp_has_supplier(self, cmp_id: int, address: int) -> bool:
        entry = self._supplier_of.get(address)
        return entry is not None and entry[0] == cmp_id

    def _make_supplier_truth(self, cmp_id: int):
        supplier_of = self._supplier_of

        def truth(address: int) -> bool:
            entry = supplier_of.get(address)
            return entry is not None and entry[0] == cmp_id

        return truth

    # ==================================================================
    # Public API

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        """Replay the workload to completion and return the results."""
        if self._ran:
            raise RuntimeError("a RingMultiprocessor can only run once")
        self._ran = True
        for core in self.cores:
            if core.trace:
                self.engine.schedule(
                    core.trace[0].think_time,
                    self._make_issue_handler(core),
                )
            else:
                core.finish_time = 0
        self.engine.run(max_events=max_events)
        self._finalize_energy()
        self.stats.core_finish_times = [
            core.finish_time if core.finish_time is not None else -1
            for core in self.cores
        ]
        unfinished = [c.core_id for c in self.cores if c.finish_time is None]
        if unfinished:
            raise RuntimeError(
                "simulation ended with unfinished cores: %s" % unfinished
            )
        finish = max(self.stats.core_finish_times, default=0)
        self.stats.exec_time = max(finish - self._warmup_end_time, 0)
        return SimulationResult(
            algorithm=self.algorithm.name,
            workload=self.workload.name,
            stats=self.stats,
            energy=self.energy.breakdown.as_dict(),
            exec_time=self.stats.exec_time,
            events=self.engine.events_processed,
            config=self.config,
        )

    def _end_warmup(self) -> None:
        """Reset all measurement state; caches and predictors keep
        their trained contents."""
        self._in_warmup = False
        self._warmup_end_time = self.engine.now
        self.stats = RunStats()
        self.energy = EnergyModel(
            self.config.energy, self.config.predictor.kind
        )
        for node in self.nodes:
            node.predictor.lookups = 0
            node.predictor.updates = 0
        for presence in self.presence:
            presence.lookups = 0
            presence.updates = 0
            presence.filtered = 0
        self.memory.reads = 0
        self.memory.writebacks = 0
        self.memory.prefetches = 0

    # ==================================================================
    # Core replay

    def _make_issue_handler(self, core: Core) -> Callable[[], None]:
        return lambda: self._issue_access(core)

    def _issue_access(self, core: Core) -> None:
        access = core.current_access
        core.block(self.engine.now)
        if access.is_write:
            self._handle_write(core, access)
        else:
            self._handle_read(core, access)

    def _complete_access(self, core: Core, at_time: int) -> None:
        core.unblock(at_time)
        core.advance()
        self._completed_accesses += 1
        if self._in_warmup and self._completed_accesses >= self._warmup_target:
            self._end_warmup()
        if core.done:
            core.finish_time = at_time
            return
        next_access = core.current_access
        self.engine.schedule_at(
            max(at_time, self.engine.now) + next_access.think_time,
            self._make_issue_handler(core),
        )

    # ==================================================================
    # Reads

    def _handle_read(self, core: Core, access: Access) -> None:
        self.stats.reads += 1
        address = access.address
        node = self.nodes[core.cmp_id]
        own = node.caches[core.local_id]

        line = own.lookup(address)
        if line is not None:
            self.stats.read_hits_local_cache += 1
            self._check_version(address, line.version, at_issue=True)
            self._complete_access(
                core, self.engine.now + self.config.cache.hit_latency
            )
            return

        master_core = node.local_master_core(address)
        if master_core is not None:
            master_cache = node.caches[master_core]
            master_line = master_cache.lookup(address)
            assert master_line is not None
            self.stats.read_hits_local_master += 1
            if master_line.state in SUPPLIER_STATES:
                # A dirty or exclusive master now shares the line:
                # D becomes T, E becomes SG (SG and T are unchanged),
                # exactly as when supplying a ring read.
                master_cache.set_state(
                    address,
                    supplier_next_state_on_read(master_line.state),
                )
            self._fill(
                core, address, local_reader_state(), master_line.version
            )
            self._check_version(address, master_line.version, at_issue=True)
            self._complete_access(
                core,
                self.engine.now + self.config.cache.local_master_latency,
            )
            return

        self._start_ring_transaction(core, address, SnoopKind.READ)

    # ==================================================================
    # Writes

    def _handle_write(self, core: Core, access: Access) -> None:
        self.stats.writes += 1
        address = access.address
        node = self.nodes[core.cmp_id]
        own = node.caches[core.local_id]
        state = own.state_of(address)

        if state in (LineState.E, LineState.D):
            # Silent upgrade: exclusive ownership already held.
            self.stats.write_hits_exclusive += 1
            self._write_counter += 1
            version = self._write_counter
            own.set_state(address, LineState.D)
            resident = own.lookup(address)
            assert resident is not None
            resident.version = version
            done = self.engine.now + self.config.cache.hit_latency
            self._note_write_completed(address, version, done)
            self._complete_access(core, done)
            return

        self._start_ring_transaction(core, address, SnoopKind.WRITE)

    # ==================================================================
    # Ring transactions: issue, walk, completion

    def _start_ring_transaction(
        self, core: Core, address: int, kind: SnoopKind
    ) -> None:
        now = self.engine.now
        active_list = self._active.get(address)
        squashed = False
        if active_list:
            for txn in active_list:
                if txn.requester_cmp == core.cmp_id:
                    txn.waiters.append(core)
                    self.stats.mshr_queued += 1
                    return
            # A write-involving overlap on the same line from another
            # CMP is a collision; the younger message is squashed and
            # retried (Section 2.1.4).  Already-squashed messages are
            # ignored: they circulate for serialization only and must
            # never squash others, or two retrying requesters would
            # livelock each other.  Concurrent *reads* proceed - the
            # memory-race between two reads that both miss all caches
            # is reconciled at data-delivery time.
            squashed = any(
                not t.msg.squashed
                and (kind is SnoopKind.WRITE or t.kind is SnoopKind.WRITE)
                for t in active_list
            )

        self._txn_seq += 1
        txn = Transaction(
            txn_id=self._txn_seq,
            kind=kind,
            address=address,
            requester_cmp=core.cmp_id,
            core=core,
            issue_time=now,
            expected_version=self._last_completed_write.get(address, 0),
        )
        if kind is SnoopKind.WRITE:
            # Data for the write can come from the writer's own copy
            # or from any valid copy in the CMP (supplied over the CMP
            # bus); only a CMP-wide miss needs data from the ring or
            # memory.  The version is allocated at commit time so that
            # write serialization order matches commit order.
            txn.needs_data = not self.nodes[core.cmp_id].holders(address)
        txn.msg = RingMessage(
            transaction_id=txn.txn_id,
            kind=kind,
            address=address,
            requester=core.cmp_id,
            request_time=now,
            squashed=squashed,
        )
        self._active.setdefault(address, []).append(txn)

        if not squashed:
            if kind is SnoopKind.READ:
                self.stats.read_ring_transactions += 1
            else:
                self.stats.write_ring_transactions += 1

        first = self.ring.next_node(core.cmp_id)
        self._forward_request(txn, first, now)

    def _cross_link(self, txn: Transaction, from_node: int,
                    departure: int) -> int:
        """Reserve the ring link for one message crossing; returns the
        actual departure time (== requested time unless link
        contention modeling is on and the link is busy)."""
        occupancy = self.config.ring.link_occupancy
        if not occupancy:
            return departure
        key = (self.ring.ring_of(txn.address), from_node)
        actual = max(departure, self._link_free.get(key, 0))
        self._link_free[key] = actual + occupancy
        return actual

    def _reserve_snoop_port(self, node_id: int, ready: int) -> int:
        """Queueing delay before a snoop can start at ``node_id``."""
        if not self.config.ring.serialize_snoop_port:
            return 0
        start = max(ready, self._snoop_port_free[node_id])
        self._snoop_port_free[node_id] = (
            start + self.config.ring.snoop_time
        )
        return start - ready

    def _forward_request(
        self, txn: Transaction, to_node: int, departure: int
    ) -> None:
        """Send the request/combined form across one ring segment."""
        txn.msg.hops_request += 1
        self._charge_crossing(txn)
        from_node = (to_node - 1) % self.config.num_cmps
        departure = self._cross_link(txn, from_node, departure)
        arrival = departure + self.config.ring.hop_latency
        self.engine.schedule_at(
            arrival, lambda: self._ring_step(txn, to_node)
        )

    def _charge_crossing(self, txn: Transaction) -> None:
        self.energy.charge_ring_crossing()
        if txn.kind is SnoopKind.READ:
            self.stats.read_ring_crossings += 1
        else:
            self.stats.write_ring_crossings += 1

    def _advance_trailing_reply(
        self, txn: Transaction, node_id: int
    ) -> None:
        """Move the trailing reply across the segment into ``node_id``
        (the node currently processing the request).

        With link-contention modeling on, the reply reserves the same
        link the request used; the reservation is made when the
        request is processed, a one-hop-early approximation that keeps
        the reply's timing analytic.
        """
        msg = txn.msg
        if msg.mode is MessageMode.SPLIT:
            assert msg.reply_time is not None
            upstream = (node_id - 1) % self.config.num_cmps
            departure = self._cross_link(txn, upstream, msg.reply_time)
            msg.reply_time = departure + self.config.ring.hop_latency
            msg.hops_reply += 1
            self._charge_crossing(txn)

    def _ring_step(self, txn: Transaction, node_id: int) -> None:
        now = self.engine.now
        msg = txn.msg
        if node_id == txn.requester_cmp:
            # The final reply crossing is accounted by _walk_returned.
            self._walk_returned(txn)
            return
        self._advance_trailing_reply(txn, node_id)

        if msg.squashed or msg.satisfied:
            # Squashed messages circulate for serialization only; a
            # satisfied combined R/R is a reply and induces no snoops.
            self._forward_request(txn, self.ring.next_node(node_id), now)
            return

        if txn.kind is SnoopKind.WRITE:
            self._write_step(txn, node_id, now)
            return

        self._read_step(txn, node_id, now)

    # ------------------------------------------------------------------
    # Read walk

    def _read_step(self, txn: Transaction, node_id: int, now: int) -> None:
        msg = txn.msg
        node = self.nodes[node_id]
        address = txn.address
        supplier_here = self._cmp_has_supplier(node_id, address)

        if (
            self.collect_perfect
            and not msg.satisfied_reply
            and not msg.satisfied
        ):
            # The paper's "perfect predictor" is checked at every node
            # until the request finds the supplier.
            self.stats.perfect_accuracy.record(supplier_here, supplier_here)

        if self.algorithm.uses_predictor():
            predictor = node.predictor
            prediction = predictor.lookup(address)
            predictor_latency = predictor.latency
            if not isinstance(predictor, PerfectPredictor):
                self.stats.accuracy.record(prediction, supplier_here)
        else:
            prediction = True
            predictor_latency = 0

        primitive = self.algorithm.choose(prediction)
        if primitive is Primitive.FORWARD and supplier_here:
            raise CoherenceError(
                "algorithm %s filtered the snoop at the supplier node "
                "(false negative on line %#x at CMP %d)"
                % (self.algorithm.name, address, node_id)
            )

        snoop_queue_delay = (
            self._reserve_snoop_port(node_id, now + predictor_latency)
            if primitive.snoops
            else 0
        )
        outcome = apply_primitive(
            msg,
            primitive,
            now=now,
            snoop_time=self.config.ring.snoop_time,
            predictor_latency=predictor_latency,
            node_is_supplier=supplier_here,
            node=node_id,
            snoop_queue_delay=snoop_queue_delay,
        )

        if outcome.snooped:
            self.stats.read_snoops += 1
            self.energy.charge_snoop()
            if (
                not supplier_here
                and prediction
                and self.algorithm.uses_predictor()
            ):
                node.predictor.observe_false_positive(address)
            if outcome.supplied:
                assert outcome.snoop_done is not None
                self._supply_read(txn, node_id, outcome.snoop_done)

        if self.memory.config.prefetch_on_snoop and node_id == (
            self.memory.home_of(address)
        ):
            if not txn.prefetch_initiated and not msg.satisfied_reply:
                txn.prefetch_initiated = True
                self.memory.note_prefetch()

        self._forward_request(
            txn, self.ring.next_node(node_id), outcome.request_departure
        )

    def _supply_read(
        self, txn: Transaction, node_id: int, snoop_done: int
    ) -> None:
        node = self.nodes[node_id]
        found = node.supplier_line(txn.address)
        assert found is not None, "supplier vanished mid-transaction"
        supplier_core, line = found
        next_state = supplier_next_state_on_read(line.state)
        node.caches[supplier_core].set_state(txn.address, next_state)

        txn.supplier_cmp = node_id
        txn.supplied_version = line.version
        data_arrival = snoop_done + self.torus.transfer_latency(
            node_id, txn.requester_cmp
        )
        txn.data_arrival = data_arrival
        self.stats.reads_supplied_by_cache += 1
        self.stats.supplier_latency_sum += snoop_done - txn.issue_time
        self.stats.supplier_latency_count += 1
        self.engine.schedule_at(
            data_arrival, lambda: self._deliver_read_data(txn)
        )

    def _deliver_read_data(self, txn: Transaction) -> None:
        self._fill(
            txn.core,
            txn.address,
            requester_state_from_cache(),
            txn.supplied_version,
        )
        self._check_version(txn.address, txn.supplied_version, txn=txn)
        self._record_read_latency(txn)
        self._complete_access(txn.core, self.engine.now)

    # ------------------------------------------------------------------
    # Write walk

    def _write_step(self, txn: Transaction, node_id: int, now: int) -> None:
        msg = txn.msg
        node = self.nodes[node_id]
        address = txn.address
        supplier_here = self._cmp_has_supplier(node_id, address)

        # Writes snoop (and invalidate) at every node; decoupling only
        # changes whether invalidations proceed in parallel.  With the
        # presence-predictor extension, a node that provably caches no
        # copy skips the snoop entirely (the filter has no false
        # negatives, so this never misses a copy).
        predictor_latency = 0
        if self.presence:
            presence = self.presence[node_id]
            predictor_latency = presence.access_latency
            if not presence.may_be_present(address):
                outcome = apply_primitive(
                    msg,
                    Primitive.FORWARD,
                    now=now,
                    snoop_time=self.config.ring.snoop_time,
                    predictor_latency=predictor_latency,
                    node_is_supplier=False,
                    node=node_id,
                )
                self._forward_request(
                    txn,
                    self.ring.next_node(node_id),
                    outcome.request_departure,
                )
                return
        primitive = (
            Primitive.FORWARD_THEN_SNOOP
            if self.algorithm.decouple_writes
            else Primitive.SNOOP_THEN_FORWARD
        )
        outcome = apply_primitive(
            msg,
            primitive,
            now=now,
            snoop_time=self.config.ring.snoop_time,
            predictor_latency=predictor_latency,
            node_is_supplier=False,  # writes never mark the message satisfied
            node=node_id,
            snoop_queue_delay=self._reserve_snoop_port(
                node_id, now + predictor_latency
            ),
        )
        assert outcome.snooped and outcome.snoop_done is not None
        self.stats.write_snoops += 1
        self.energy.charge_snoop()

        if supplier_here and txn.needs_data and txn.data_arrival is None:
            found = node.supplier_line(address)
            assert found is not None
            _, line = found
            txn.supplied_version = line.version
            txn.supplier_cmp = node_id
            txn.data_arrival = outcome.snoop_done + self.torus.transfer_latency(
                node_id, txn.requester_cmp
            )
            self.stats.writes_supplied_by_cache += 1

        snoop_done = outcome.snoop_done
        self.engine.schedule_at(
            snoop_done, lambda: self.nodes[node_id].invalidate_all(address)
        )

        self._forward_request(
            txn, self.ring.next_node(node_id), outcome.request_departure
        )

    # ------------------------------------------------------------------
    # Walk completion

    def _walk_returned(self, txn: Transaction) -> None:
        """The request form is back at the requester; wait for the
        trailing reply if the message is split."""
        now = self.engine.now
        msg = txn.msg
        if msg.mode is MessageMode.SPLIT:
            assert msg.reply_time is not None
            info_time = msg.reply_time + self.config.ring.hop_latency
            msg.hops_reply += 1
            self._charge_crossing(txn)
        else:
            info_time = now
        self.engine.schedule_at(
            max(info_time, now), lambda: self._walk_done(txn)
        )

    def _walk_done(self, txn: Transaction) -> None:
        now = self.engine.now
        if txn.msg.squashed:
            self._retire(txn)
            self.stats.squashes += 1
            self.engine.schedule(
                self.config.squash_backoff, lambda: self._retry(txn)
            )
            return
        if txn.kind is SnoopKind.WRITE:
            self._write_done(txn, now)
        else:
            self._read_done(txn, now)

    def _read_done(self, txn: Transaction, info_time: int) -> None:
        msg = txn.msg
        if msg.satisfied or msg.satisfied_reply:
            # Data delivery is already scheduled; retire once both the
            # reply has returned and the data has arrived.
            assert txn.data_arrival is not None
            retire_at = max(info_time, txn.data_arrival)
            if retire_at > self.engine.now:
                self.engine.schedule_at(retire_at, lambda: self._retire(txn))
            else:
                self._retire(txn)
            return

        # Negative response: fetch from the home memory.
        address = txn.address
        latency = self.memory.read_latency(
            txn.requester_cmp, address, txn.prefetch_initiated
        )
        if (
            txn.prefetch_initiated
            and self.memory.home_of(address) != txn.requester_cmp
        ):
            self.stats.reads_prefetched += 1
        self.stats.reads_supplied_by_memory += 1

        if address in self._downgraded:
            # The Exact predictor downgraded this line; had it not, a
            # cache could have supplied it.  Charge the re-read.
            if self._any_holder(address):
                self.energy.charge_downgrade_reread()
                self.stats.downgrade_rereads += 1
            self._downgraded.discard(address)

        data_arrival = info_time + latency
        txn.data_arrival = data_arrival
        self.engine.schedule_at(
            data_arrival, lambda: self._deliver_memory_data(txn)
        )

    def _deliver_memory_data(self, txn: Transaction) -> None:
        address = txn.address
        # Reconcile with the global state *now*: a concurrent read from
        # another CMP may have installed a supplier after our walk
        # passed it (both walks found no supplier and both went to
        # memory).  In that case we take the shared role, keeping the
        # single-supplier invariant; the racing supplier can only be
        # clean (a write would have squashed this read), so memory's
        # data is current.
        supplier = self._find_global_supplier(address)
        if supplier is not None:
            node_id, core_id = supplier
            cache = self.nodes[node_id].caches[core_id]
            line = cache.lookup(address, touch=False)
            assert line is not None
            cache.set_state(
                address, supplier_next_state_on_read(line.state)
            )
            version = line.version
            state = requester_state_from_cache()
        else:
            version = self.memory.read(address)
            state = requester_state_from_memory(self._any_holder(address))
        self._fill(txn.core, address, state, version)
        self._check_version(address, version, txn=txn)
        self._record_read_latency(txn)
        self._complete_access(txn.core, self.engine.now)
        self._retire(txn)

    def _write_done(self, txn: Transaction, info_time: int) -> None:
        address = txn.address
        if txn.needs_data:
            if txn.data_arrival is not None:
                complete_at = max(info_time, txn.data_arrival)
            else:
                latency = self.memory.read_latency(
                    txn.requester_cmp, address, txn.prefetch_initiated
                )
                self.memory.read(address)
                self.stats.writes_supplied_by_memory += 1
                complete_at = info_time + latency
        else:
            complete_at = info_time

        if complete_at > self.engine.now:
            self.engine.schedule_at(
                complete_at, lambda: self._commit_write(txn, complete_at)
            )
        else:
            self._commit_write(txn, complete_at)

    def _commit_write(self, txn: Transaction, at_time: int) -> None:
        core = txn.core
        address = txn.address
        node = self.nodes[core.cmp_id]
        # The version is allocated here, at commit, so that it is
        # consistent with the global serialization order of writes
        # (an owner's silent write that slipped in while this
        # transaction was in flight must order before it).
        self._write_counter += 1
        txn.write_version = self._write_counter
        # Local copies (including the writer's own old copy) are
        # invalidated on the CMP bus, then the writer installs the
        # dirty line.
        node.invalidate_all(address)
        self._fill(core, address, writer_state(), txn.write_version)
        self._note_write_completed(address, txn.write_version, at_time)
        self._complete_access(core, at_time)
        self._retire(txn)

    # ------------------------------------------------------------------
    # Retirement, retries, MSHR waiters

    def _retire(self, txn: Transaction) -> None:
        if txn.retired:
            return
        txn.retired = True
        active_list = self._active.get(txn.address)
        if active_list and txn in active_list:
            active_list.remove(txn)
            if not active_list:
                del self._active[txn.address]
        if self.config.check_invariants:
            self._check_line_invariants(txn.address)
        waiters, txn.waiters = txn.waiters, []
        for waiter in waiters:
            self.engine.schedule(0, self._make_reissue_handler(waiter))

    def _make_reissue_handler(self, core: Core) -> Callable[[], None]:
        def reissue() -> None:
            access = core.current_access
            if access.is_write:
                self._handle_write_reissue(core, access)
            else:
                self._handle_read_reissue(core, access)

        return reissue

    def _handle_read_reissue(self, core: Core, access: Access) -> None:
        # Identical to _handle_read but without re-counting the access.
        self.stats.reads -= 1
        self._handle_read(core, access)

    def _handle_write_reissue(self, core: Core, access: Access) -> None:
        self.stats.writes -= 1
        self._handle_write(core, access)

    def _retry(self, txn: Transaction) -> None:
        self.stats.retries += 1
        core = txn.core
        access = core.current_access
        if access.is_write:
            self._handle_write_reissue(core, access)
        else:
            self._handle_read_reissue(core, access)

    # ------------------------------------------------------------------
    # Cache mutation helpers

    def _fill(
        self, core: Core, address: int, state: LineState, version: int
    ) -> None:
        cache = self.nodes[core.cmp_id].caches[core.local_id]
        victim = cache.fill(address, state, version)
        if victim is not None:
            self._handle_eviction(victim)

    def _handle_eviction(self, victim: EvictionRecord) -> None:
        self.stats.dirty_evictions += victim.dirty
        if victim.dirty:
            self.memory.writeback(victim.address, victim.version)
            self.stats.writebacks += 1

    def _make_downgrade_handler(self, cmp_id: int) -> Callable[[int], None]:
        def downgrade(address: int) -> None:
            node = self.nodes[cmp_id]
            core = node.find_downgrade_victim(address)
            if core is None:
                return
            cache = node.caches[core]
            line = cache.lookup(address, touch=False)
            assert line is not None
            new_state, needs_writeback = downgrade_state(line.state)
            if needs_writeback:
                self.memory.writeback(address, line.version)
                self.stats.downgrade_writebacks += 1
                self.energy.charge_downgrade_writeback()
            cache.set_state(address, new_state)
            self.stats.downgrades += 1
            self.energy.charge_downgrade()
            self._downgraded.add(address)

        return downgrade

    # ------------------------------------------------------------------
    # Bookkeeping helpers

    def _any_holder(self, address: int) -> bool:
        return self._holder_count.get(address, 0) > 0

    def _find_global_supplier(
        self, address: int
    ) -> Optional[Tuple[int, int]]:
        """(cmp, core) of the machine-wide supplier copy, if any."""
        return self._supplier_of.get(address)

    def _note_write_completed(
        self, address: int, version: int, at_time: int
    ) -> None:
        if version > self._last_completed_write.get(address, 0):
            self._last_completed_write[address] = version

    def _check_version(
        self,
        address: int,
        obtained: int,
        txn: Optional[Transaction] = None,
        at_issue: bool = False,
    ) -> None:
        if not self.config.track_versions:
            return
        if txn is not None:
            expected = txn.expected_version
        else:
            expected = self._last_completed_write.get(address, 0)
        if obtained < expected:
            self.stats.version_violations += 1

    def _record_read_latency(self, txn: Transaction) -> None:
        assert txn.data_arrival is not None
        latency = txn.data_arrival - txn.issue_time
        self.stats.read_miss_latency_sum += latency
        self.stats.read_miss_count += 1
        self.stats.read_miss_histogram.record(latency)

    def _check_line_invariants(self, address: int) -> None:
        snapshot: Dict[Tuple[int, int], LineState] = {}
        for node in self.nodes:
            for core_idx, cache in enumerate(node.caches):
                state = cache.state_of(address)
                if state != LineState.I:
                    snapshot[(node.cmp_id, core_idx)] = state
        ProtocolTables.check_line(snapshot, address)

    def _finalize_energy(self) -> None:
        for node in self.nodes:
            self.energy.charge_predictor_lookup(node.predictor.lookups)
            self.energy.charge_predictor_update(node.predictor.updates)
        # The presence filter (write-snoop filtering extension) is a
        # Bloom structure of the Superset predictor's class; charge it
        # at the same rates.
        for presence in self.presence:
            self.energy.breakdown.predictor_lookups += (
                presence.lookups * self.config.energy.superset_lookup
            )
            self.energy.breakdown.predictor_updates += (
                presence.updates * self.config.energy.superset_update
            )

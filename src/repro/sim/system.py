"""Full-system simulator facade: CMP nodes, embedded ring, memory.

:class:`RingMultiprocessor` assembles the substrates into the machine
of Figure 2(a) and drives a workload trace through it under a chosen
snooping algorithm.  The ring walk of every coherence transaction is
simulated message-by-message with the exact Table 2 primitive
semantics (via :func:`repro.core.primitives.apply_primitive`), so the
snoop counts, message counts, latencies and predictor behaviour emerge
from the mechanism rather than from closed-form shortcuts.

The machine itself is four collaborating subsystems behind this
facade (see ``docs/architecture.md`` for the full picture):

* :class:`~repro.sim.transactions.TransactionManager` - issue,
  collision/squash/retry, MSHR waiters, retirement, write
  serialization.
* :class:`~repro.sim.walker.RingWalker` - the per-hop ring walk, hop
  batching, and Table 2 primitive application.
* :class:`~repro.sim.datapath.DataPathModel` - torus data replies,
  home-memory timing (with the prefetch heuristic), fills/evictions,
  and Exact-predictor downgrades.
* :class:`~repro.sim.warmup.WarmupController` - prewarm memoization
  and the warmup-window measurement reset.

The facade owns what the subsystems share: the event engine, the
topologies and memory, the machine-wide supplier/holder indexes (fed
by the LineRegistry hooks below), and the current ``RunStats`` /
``EnergyModel`` pair.  When the warmup window closes, the
:class:`WarmupController` builds fresh measurement objects and the
facade broadcasts them to every subsystem via
:meth:`rebind_measurement`, so the hot paths keep reading plain
attributes instead of indirecting through the facade per event.

Observability (``repro.obs``, see ``docs/observability.md``): when
``config.tracing.enabled`` is set (or a ``trace_sink`` is passed
explicitly), the subsystems emit typed transaction-lifecycle events
into the sink; ``config.tracing.sample_window`` additionally attaches
a :class:`~repro.obs.timeline.MetricsTimeline` that samples live
counters at a fixed simulated-time cadence.  Both are off by default
and cost nothing beyond one ``is not None`` test per emission site.

Transaction life cycle (reads):

1. A core misses in its own L2 and in its CMP's local master.
2. A snoop message is issued on the line's embedded ring.  At each
   node the Supplier Predictor is consulted and the algorithm picks a
   primitive; snoops and crossings are counted and charged.
3. If a supplier is found, it transitions per the protocol rules and
   the data line travels the torus to the requester, which may use it
   on arrival (the transaction can no longer be squashed).
4. Otherwise the negative response returns to the requester, which
   fetches the line from the home memory (prefetched if the walk
   passed the home node and the heuristic is on).

Collisions: a transaction issued on a line with an in-flight
conflicting transaction (any write involved) is squashed - it
circulates for serialization only, then retries after a back-off.
Same-CMP requests to a busy line wait in an MSHR instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.config import MachineConfig
from repro.coherence.protocol import CoherenceError, ProtocolTables
from repro.coherence.states import LineState
from repro.core.algorithms import SnoopingAlgorithm
from repro.core.predictors import PerfectPredictor
from repro.core.presence import PresencePredictor
from repro.energy.model import EnergyModel
from repro.metrics.stats import RunStats
from repro.obs.timeline import MetricsTimeline
from repro.obs.trace import TraceSink, resolve_sink
from repro.ring.node import CMPNode
from repro.ring.topology import build_topology
from repro.sim.datapath import DataPathModel
from repro.sim.engine import EventEngine
from repro.sim.memory import MainMemory
from repro.sim.processor import Core, build_cores, build_cores_from_source
from repro.sim.transactions import Transaction, TransactionManager
from repro.sim.walker import RingWalker
from repro.sim.warmup import (
    _PREWARM_MEMOS,
    _PrewarmMemo,
    WarmupController,
)
from repro.workloads.source import WorkloadSource, as_source
from repro.workloads.synthetic import SharingProfile
from repro.workloads.trace import WorkloadTrace

__all__ = [
    "RingMultiprocessor",
    "SimulationResult",
    "Transaction",
]

# Re-exported for callers (and tests) that predate the decomposition.
_ = (_PREWARM_MEMOS, _PrewarmMemo, Transaction)


@dataclass
class SimulationResult:
    """Everything a run produces."""

    algorithm: str
    workload: str
    stats: RunStats
    energy: Dict[str, float]
    exec_time: int
    events: int
    config: MachineConfig

    @property
    def total_energy(self) -> float:
        return self.energy["total"]

    def summary(self) -> Dict[str, float]:
        data = self.stats.summary()
        data["energy_total"] = self.total_energy
        return data


class RingMultiprocessor:
    """The simulated machine.  Build it, then call :meth:`run`."""

    def __init__(
        self,
        config: MachineConfig,
        algorithm: SnoopingAlgorithm,
        workload: "Union[WorkloadTrace, WorkloadSource, SharingProfile]",
        collect_perfect: bool = True,
        warmup_fraction: float = 0.0,
        trace_sink: Optional[TraceSink] = None,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        # Normalize every accepted input (materialized trace, sharing
        # profile, workload source) to the source seam; streaming
        # sources feed the cores lazy iterators and are never
        # materialized on this path.
        source = as_source(workload)
        if not source.streaming:
            source.materialize().validate()
        if source.num_cmps != config.num_cmps:
            raise ValueError(
                "workload spans %d CMPs but machine has %d"
                % (source.num_cmps, config.num_cmps)
            )
        if source.cores_per_cmp != config.cores_per_cmp:
            raise ValueError(
                "workload uses %d cores/CMP but machine has %d"
                % (source.cores_per_cmp, config.cores_per_cmp)
            )
        self.config = config
        self.algorithm = algorithm
        # Bind the machine's *resolved* predictor kind onto the policy
        # so uses_predictor() (latency/energy charging) follows any
        # predictor override rather than the class default.
        algorithm.bind_predictor_kind(config.predictor.kind)
        self.source = source
        # Back-compat attribute: the materialized trace when one is
        # available without breaking the streaming contract, else the
        # source itself (both expose ``.name``).
        self.workload = (
            source if source.streaming else source.materialize()
        )
        self.collect_perfect = collect_perfect

        # Observability: a sink passed explicitly wins; otherwise one
        # is resolved through the registry when config.tracing asks
        # for it.  ``self.trace`` is None when tracing is off - the
        # subsystems then skip every emission with one identity test.
        if trace_sink is None and config.tracing.enabled:
            trace_sink = resolve_sink(config.tracing.sink)
        self.trace: Optional[TraceSink] = trace_sink

        self.engine = EventEngine()
        # The snoop topology is a registry component (kind "topology",
        # selected by config.topology.kind); it owns the walk order,
        # the per-segment latencies and the data network.  ``ring``
        # and ``torus`` stay as aliases for callers that predate the
        # topology seam (both roles live on the one topology object).
        self.topology = build_topology(config)
        self.ring = self.topology
        self.torus = self.topology
        self.memory = MainMemory(config.memory, config.num_cmps)
        self.stats = RunStats()
        self.energy = EnergyModel(config.energy, config.predictor.kind)

        # O(1) line-location indexes, kept consistent by cache
        # callbacks routed through the LineRegistry hooks below.  The
        # subsystems hold references to these same dict objects.
        self._supplier_of: Dict[int, Tuple[int, int]] = {}
        self._holder_count: Dict[int, int] = {}
        # Optional write-snoop filtering (extension, see
        # repro.core.presence): one presence predictor per CMP,
        # trained by the same residency callbacks.
        self.presence: List[PresencePredictor] = (
            [PresencePredictor() for _ in range(config.num_cmps)]
            if config.filter_write_snoops
            else []
        )

        self.nodes: List[CMPNode] = [
            CMPNode(
                i,
                config.cores_per_cmp,
                config.cache,
                config.predictor,
                registry=self,
            )
            for i in range(config.num_cmps)
        ]
        self.cores: List[Core] = (
            build_cores_from_source(source)
            if source.streaming
            else build_cores(
                source.materialize().traces, config.cores_per_cmp
            )
        )

        # Subsystems: construct, then wire the cross-references (they
        # are mutually recursive), then install the predictor
        # callbacks that close over subsystem state.
        self.txns = TransactionManager(
            self.engine,
            config,
            self.topology,
            self.stats,
            self.nodes,
            self.cores,
            trace=self.trace,
        )
        self.walker = RingWalker(
            self.engine,
            config,
            self.topology,
            self.memory,
            self.stats,
            self.energy,
            self.nodes,
            algorithm,
            self._supplier_of,
            self.presence,
            collect_perfect,
            trace=self.trace,
        )
        self.datapath = DataPathModel(
            self.engine,
            self.nodes,
            self.memory,
            self.topology,
            self.stats,
            self.energy,
            self._supplier_of,
            self._holder_count,
            trace=self.trace,
        )
        self.warmup = WarmupController(
            self.engine,
            config,
            source,
            self.cores,
            self.nodes,
            self.presence,
            self.memory,
            self._supplier_of,
            self._holder_count,
            warmup_fraction,
        )
        self.warmup.wire(self)
        self.txns.wire(self.walker, self.datapath, self.warmup, self)
        self.walker.wire(self.txns, self.datapath, self.warmup)
        self.datapath.wire(self.txns, self.warmup)

        for node in self.nodes:
            if node.is_exact:
                node.predictor.set_downgrade_callback(
                    self.datapath.make_downgrade_handler(node.cmp_id)
                )
            if isinstance(node.predictor, PerfectPredictor):
                node.predictor.set_truth(
                    self._make_supplier_truth(node.cmp_id)
                )

        # Windowed metrics timeline (simulated-time sampling of live
        # counters); independent of event tracing.  The walker is
        # wired in explicitly so the occupancy channels (link
        # utilization, snoop-port queue depth) sample its contention
        # state.
        self.timeline: Optional[MetricsTimeline] = (
            MetricsTimeline(
                self, config.tracing.sample_window, walker=self.walker
            )
            if config.tracing.sample_window > 0
            else None
        )

        self._ran = False
        self.warmup.apply_prewarm()

    # ==================================================================
    # LineRegistry hooks (called synchronously by cache mutations)

    def supplier_gain(self, cmp_id: int, core: int, address: int) -> None:
        existing = self._supplier_of.get(address)
        if existing is not None and existing != (cmp_id, core):
            raise CoherenceError(
                "line %#x gained supplier at %s while %s still holds it"
                % (address, (cmp_id, core), existing)
            )
        self._supplier_of[address] = (cmp_id, core)

    def supplier_loss(self, cmp_id: int, core: int, address: int) -> None:
        existing = self._supplier_of.get(address)
        if existing == (cmp_id, core):
            del self._supplier_of[address]

    def line_added(self, cmp_id: int, core: int, address: int) -> None:
        self._holder_count[address] = self._holder_count.get(address, 0) + 1
        if self.presence:
            self.presence[cmp_id].line_added(address)

    def line_removed(self, cmp_id: int, core: int, address: int) -> None:
        count = self._holder_count.get(address, 0) - 1
        if count <= 0:
            self._holder_count.pop(address, None)
        else:
            self._holder_count[address] = count
        if self.presence:
            self.presence[cmp_id].line_removed(address)

    def _make_supplier_truth(self, cmp_id: int):
        supplier_of = self._supplier_of

        def truth(address: int) -> bool:
            entry = supplier_of.get(address)
            return entry is not None and entry[0] == cmp_id

        return truth

    # ==================================================================
    # Public API

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        """Replay the workload to completion and return the results."""
        if self._ran:
            raise RuntimeError("a RingMultiprocessor can only run once")
        self._ran = True
        self.txns.start()
        if self.timeline is not None:
            self.timeline.start()
        try:
            self.engine.run(max_events=max_events)
        finally:
            if self.trace is not None:
                self.trace.close()
        self._finalize_energy()
        self.stats.core_finish_times = [
            core.finish_time if core.finish_time is not None else -1
            for core in self.cores
        ]
        unfinished = [c.core_id for c in self.cores if c.finish_time is None]
        if unfinished:
            raise RuntimeError(
                "simulation ended with unfinished cores: %s" % unfinished
            )
        finish = max(self.stats.core_finish_times, default=0)
        self.stats.exec_time = max(finish - self.warmup.warmup_end_time, 0)
        # Simulator-efficiency counters: whole-run values (diagnostics
        # of the simulation itself, so they ignore the warmup reset).
        self.stats.events_scheduled = self.engine.events_scheduled
        self.stats.events_fired = self.engine.events_processed
        self.stats.hops_batched = self.walker.hops_batched
        self.stats.messages_allocated = self.txns.messages_allocated
        self.stats.messages_reused = self.txns.messages_reused
        return SimulationResult(
            algorithm=self.algorithm.name,
            workload=self.source.name,
            stats=self.stats,
            energy=self.energy.breakdown.as_dict(),
            exec_time=self.stats.exec_time,
            events=self.engine.events_processed,
            config=self.config,
        )

    def rebind_measurement(
        self, stats: RunStats, energy: EnergyModel
    ) -> None:
        """Install fresh measurement objects on the facade and every
        subsystem (the warmup-window reset; see WarmupController)."""
        self.stats = stats
        self.energy = energy
        self.txns.on_warmup_end(stats)
        self.walker.on_warmup_end(stats, energy)
        self.datapath.on_warmup_end(stats, energy)

    def _finalize_energy(self) -> None:
        for node in self.nodes:
            self.energy.charge_predictor_lookup(node.predictor.lookups)
            self.energy.charge_predictor_update(node.predictor.updates)
        # The presence filter (write-snoop filtering extension) is a
        # Bloom structure of the Superset predictor's class; charge it
        # at the same rates.
        for presence in self.presence:
            self.energy.breakdown.predictor_lookups += (
                presence.lookups * self.config.energy.superset_lookup
            )
            self.energy.breakdown.predictor_updates += (
                presence.updates * self.config.energy.superset_update
            )

    # ==================================================================
    # Introspection helpers (shared indexes; also used by tests)

    def _cmp_has_supplier(self, cmp_id: int, address: int) -> bool:
        entry = self._supplier_of.get(address)
        return entry is not None and entry[0] == cmp_id

    def _any_holder(self, address: int) -> bool:
        return self._holder_count.get(address, 0) > 0

    def _find_global_supplier(
        self, address: int
    ) -> Optional[Tuple[int, int]]:
        """(cmp, core) of the machine-wide supplier copy, if any."""
        return self._supplier_of.get(address)

    @property
    def _last_completed_write(self) -> Dict[int, int]:
        return self.txns.last_completed_write

    def _check_version(
        self,
        address: int,
        obtained: int,
        txn: Optional[Transaction] = None,
        at_issue: bool = False,
    ) -> None:
        self.txns.check_version(address, obtained, txn=txn, at_issue=at_issue)

    def _check_line_invariants(self, address: int) -> None:
        snapshot: Dict[Tuple[int, int], LineState] = {}
        for node in self.nodes:
            for core_idx, cache in enumerate(node.caches):
                state = cache.state_of(address)
                if state != LineState.I:
                    snapshot[(node.cmp_id, core_idx)] = state
        ProtocolTables.check_line(snapshot, address)

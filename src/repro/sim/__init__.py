"""Discrete-event simulation substrate and full-system assembly.

The machine is a facade (:class:`RingMultiprocessor`) over four
subsystems - :class:`TransactionManager`, :class:`RingWalker`,
:class:`DataPathModel` and :class:`WarmupController` - each in its
own module with a documented interface contract.
"""

from repro.sim.datapath import DataPathModel
from repro.sim.engine import Event, EventEngine
from repro.sim.memory import MainMemory
from repro.sim.system import RingMultiprocessor, SimulationResult
from repro.sim.transactions import Transaction, TransactionManager
from repro.sim.walker import RingWalker
from repro.sim.warmup import WarmupController

__all__ = [
    "DataPathModel",
    "Event",
    "EventEngine",
    "MainMemory",
    "RingMultiprocessor",
    "RingWalker",
    "SimulationResult",
    "Transaction",
    "TransactionManager",
    "WarmupController",
]

"""Discrete-event simulation substrate and full-system assembly."""

from repro.sim.engine import Event, EventEngine
from repro.sim.memory import MainMemory
from repro.sim.system import RingMultiprocessor, SimulationResult

__all__ = [
    "Event",
    "EventEngine",
    "MainMemory",
    "RingMultiprocessor",
    "SimulationResult",
]

"""Property-based tests of the Supplier Predictor guarantees.

These are the correctness-critical invariants of Section 4.3:

* Subset predictors must never report a false positive.
* Superset predictors must never report a false negative (an
  algorithm that trusts a negative with Forward would skip the
  supplier and break coherence).
* Exact predictors must be exact, *given* that the downgrade callback
  removes the victim from the tracked set (as the cache-state loss
  callback does in the real system).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PredictorConfig
from repro.core.predictors import (
    ExactPredictor,
    SubsetPredictor,
    SupersetPredictor,
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 300)),
        st.tuples(st.just("remove"), st.integers(0, 300)),
        st.tuples(st.just("lookup"), st.integers(0, 300)),
        st.tuples(st.just("observe_fp"), st.integers(0, 300)),
    ),
    max_size=300,
)


def drive(predictor, ops, live, check):
    """Replay operations, maintaining the reference live set the way
    the cache callbacks do (insert on supplier gain, remove on loss).
    ``check(address, prediction, live)`` runs at every lookup, against
    the live set *as of that moment*."""
    for op, address in ops:
        if op == "insert":
            predictor.insert(address)
            live.add(address)
        elif op == "remove":
            predictor.remove(address)
            live.discard(address)
        elif op == "lookup":
            check(address, predictor.lookup(address), live)
        else:
            if address not in live:
                predictor.observe_false_positive(address)


@given(operations)
@settings(max_examples=200, deadline=None)
def test_subset_no_false_positives(ops):
    predictor = SubsetPredictor(
        PredictorConfig(kind="subset", entries=32, associativity=4)
    )

    def check(address, positive, live):
        if positive:
            assert address in live

    drive(predictor, ops, set(), check)


@given(operations)
@settings(max_examples=200, deadline=None)
def test_superset_no_false_negatives(ops):
    predictor = SupersetPredictor(
        PredictorConfig(
            kind="superset",
            bloom_fields=(4, 3),
            exclude_entries=16,
            exclude_associativity=4,
        )
    )

    def check(address, positive, live):
        if address in live:
            assert positive

    drive(predictor, ops, set(), check)


@given(operations)
@settings(max_examples=200, deadline=None)
def test_exact_is_exact_with_downgrade_coupling(ops):
    predictor = ExactPredictor(
        PredictorConfig(kind="exact", entries=32, associativity=4)
    )
    live = set()

    def downgrade(address):
        # The system downgrades the line out of supplier state, which
        # removes it from the live set and (idempotently) from the
        # predictor via the cache callback.
        live.discard(address)
        predictor.remove(address)

    predictor.set_downgrade_callback(downgrade)

    def check(address, positive, current_live):
        assert positive == (address in current_live)

    drive(predictor, ops, live, check)


@given(operations)
@settings(max_examples=100, deadline=None)
def test_superset_bloom_counters_never_negative(ops):
    predictor = SupersetPredictor(
        PredictorConfig(
            kind="superset", bloom_fields=(4, 3), exclude_entries=0
        )
    )
    drive(predictor, ops, set(), lambda *args: None)
    for table in predictor.filter._tables:
        assert all(count >= 0 for count in table)

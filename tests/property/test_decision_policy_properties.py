"""Property-based contract of the decision seam.

Every registered policy must be a *pure function* of its
:class:`~repro.core.decision.DecisionContext`: the same context always
yields the same primitive, the published
:class:`~repro.core.decision.DecisionTable` (when any) agrees with
``choose`` everywhere, and context fields outside the policy's declared
``decision_inputs`` never influence the decision.  This is the property
the array cores rely on when they hoist the table into integers and
never call back into Python per hop.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import build_algorithm
from repro.core.decision import CONTEXT_FIELDS, DecisionContext
from repro.core.primitives import Primitive
from repro.registry import REGISTRY

ALGORITHM_NAMES = tuple(sorted(REGISTRY.names("algorithm")))

contexts = st.builds(
    DecisionContext,
    prediction=st.booleans(),
    retries=st.integers(0, 6),
    waiters=st.integers(0, 6),
    ring_age=st.integers(0, 15),
    is_write=st.just(False),
)


@st.composite
def policy_points(draw):
    return draw(st.sampled_from(ALGORITHM_NAMES)), draw(contexts)


@given(policy_points())
@settings(max_examples=200, deadline=None)
def test_choose_is_deterministic_in_the_context(point):
    name, ctx = point
    algorithm = build_algorithm(name)
    first = algorithm.choose(ctx)
    assert isinstance(first, Primitive)
    # Counting side effects (hybrid/criticality tallies) are allowed;
    # the *decision* must not drift between identical contexts.
    assert algorithm.choose(ctx) is first
    assert build_algorithm(name).choose(ctx) is first


@given(policy_points())
@settings(max_examples=200, deadline=None)
def test_published_table_agrees_with_choose(point):
    name, ctx = point
    algorithm = build_algorithm(name)
    table = algorithm.decision_table()
    assert table is not None, (
        "every registered builtin publishes a static table"
    )
    assert algorithm.choose(ctx) is table.decide(ctx)


@given(policy_points(), st.data())
@settings(max_examples=200, deadline=None)
def test_undeclared_inputs_never_change_the_decision(point, data):
    name, ctx = point
    algorithm = build_algorithm(name)
    inputs = algorithm.decision_inputs()
    assert set(inputs) <= set(CONTEXT_FIELDS)
    baseline = algorithm.choose(ctx)
    mutated = ctx
    if "retries" not in inputs:
        mutated = mutated._replace(retries=data.draw(st.integers(0, 50)))
    if "waiters" not in inputs:
        mutated = mutated._replace(waiters=data.draw(st.integers(0, 50)))
    if "ring_age" not in inputs:
        mutated = mutated._replace(ring_age=data.draw(st.integers(0, 50)))
    assert algorithm.choose(mutated) is baseline


@given(st.sampled_from(ALGORITHM_NAMES), contexts)
@settings(max_examples=120, deadline=None)
def test_forwards_on_negative_matches_observed_decisions(name, ctx):
    algorithm = build_algorithm(name)
    decision = algorithm.choose(ctx._replace(prediction=False))
    if decision is Primitive.FORWARD:
        assert algorithm.forwards_on_negative()
    if not algorithm.forwards_on_negative():
        assert decision is not Primitive.FORWARD

"""Property-based tests for the snoop-topology layer.

Three structural invariants every topology must satisfy, whatever its
shape, because the walker, the fused cores and the trace auditor all
rely on them:

* the snoop walk from any requester visits every *other* node exactly
  once and the successor cycle returns home (Hamiltonian cycle);
* ``ring_distance`` agrees with counting ``next_node`` steps;
* the exported tables are consistent with the per-node interface.

Plus hier_ring-specific ones: bridge paths on the data network are
cycle-free (finite shortest-path hop counts with symmetric distances)
and segment timing charges the global hop exactly once per block.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    DataNetworkConfig,
    RingConfig,
    TopologyConfig,
)
from repro.ring.topology import (
    HierRingTopology,
    RingTopology,
    ring_successors,
)

ring_sizes = st.integers(min_value=2, max_value=33)
hier_shapes = st.tuples(
    st.integers(min_value=2, max_value=6),  # local rings
    st.integers(min_value=2, max_value=6),  # CMPs per local ring
)
latencies = st.integers(min_value=1, max_value=100)


def _ring(num_nodes: int) -> RingTopology:
    return RingTopology(
        num_nodes, RingConfig(), data_network=DataNetworkConfig(
            torus_shape=(num_nodes, 1)
        )
    )


def _hier(local_rings: int, ring_size: int,
          local_hop: int = 0, global_hop: int = 0) -> HierRingTopology:
    num_nodes = local_rings * ring_size
    return HierRingTopology(
        num_nodes,
        RingConfig(),
        TopologyConfig(
            kind="hier_ring",
            local_rings=local_rings,
            local_hop_latency=local_hop,
            global_hop_latency=global_hop,
        ),
        DataNetworkConfig(torus_shape=(num_nodes, 1)),
    )


# ----------------------------------------------------------------------
# Walk-order permutation property (both builtins)


@settings(max_examples=60)
@given(ring_sizes, st.data())
def test_ring_walk_visits_every_other_node_once(num_nodes, data):
    topology = _ring(num_nodes)
    requester = data.draw(st.integers(0, num_nodes - 1))
    order = topology.walk_order(requester)
    assert len(order) == num_nodes - 1
    assert requester not in order
    assert sorted(order) == sorted(
        set(range(num_nodes)) - {requester}
    )
    # The walk ends one segment short of home.
    assert topology.next_node(order[-1]) == requester


@settings(max_examples=60)
@given(hier_shapes, st.data())
def test_hier_walk_visits_every_other_node_once(shape, data):
    local_rings, ring_size = shape
    topology = _hier(local_rings, ring_size)
    requester = data.draw(st.integers(0, topology.num_nodes - 1))
    order = topology.walk_order(requester)
    assert len(order) == topology.num_nodes - 1
    assert sorted(order) == sorted(
        set(range(topology.num_nodes)) - {requester}
    )
    assert topology.next_node(order[-1]) == requester


# ----------------------------------------------------------------------
# ring_distance consistency with repeated next_node


@settings(max_examples=60)
@given(ring_sizes, st.data())
def test_ring_distance_counts_next_node_steps(num_nodes, data):
    topology = _ring(num_nodes)
    src = data.draw(st.integers(0, num_nodes - 1))
    dst = data.draw(st.integers(0, num_nodes - 1))
    distance = topology.ring_distance(src, dst)
    node = src
    for _ in range(distance):
        node = topology.next_node(node)
    assert node == dst
    assert 0 <= distance < num_nodes


@settings(max_examples=60)
@given(hier_shapes, st.data())
def test_hier_distance_counts_next_node_steps(shape, data):
    topology = _hier(*shape)
    src = data.draw(st.integers(0, topology.num_nodes - 1))
    dst = data.draw(st.integers(0, topology.num_nodes - 1))
    distance = topology.ring_distance(src, dst)
    node = src
    for _ in range(distance):
        node = topology.next_node(node)
    assert node == dst


# ----------------------------------------------------------------------
# Exported tables agree with the per-node interface


@settings(max_examples=40)
@given(st.one_of(ring_sizes.map(_ring),
                 hier_shapes.map(lambda s: _hier(*s))))
def test_export_tables_consistent(topology):
    successors, out_lat, in_lat = topology.export_tables()
    n = topology.num_nodes
    assert successors == [topology.next_node(i) for i in range(n)]
    assert successors == ring_successors(n)  # both builtins use id order
    assert out_lat == [topology.segment_latency(i) for i in range(n)]
    # The latency entering a node is the latency leaving its
    # predecessor - the relation the walker's reply path relies on.
    for node in range(n):
        assert in_lat[successors[node]] == out_lat[node]
    assert all(latency > 0 for latency in out_lat)


# ----------------------------------------------------------------------
# hier_ring: bridge structure, segment timing, cycle-free data paths


@settings(max_examples=60)
@given(hier_shapes, latencies, latencies)
def test_hier_segment_timing_charges_global_once_per_block(
    shape, local_hop, global_hop
):
    local_rings, ring_size = shape
    topology = _hier(local_rings, ring_size, local_hop, global_hop)
    latencies_out = topology.segment_latencies()
    crossing = [lat for lat in latencies_out if lat != local_hop]
    # Exactly one crossing segment per local ring, each charged the
    # local hand-off plus one global hop.
    assert len(crossing) == local_rings or local_hop == global_hop + local_hop
    total = sum(latencies_out)
    expected = (
        topology.num_nodes * local_hop + local_rings * global_hop
    )
    assert total == expected


@settings(max_examples=60)
@given(hier_shapes, st.data())
def test_hier_bridge_paths_cycle_free(shape, data):
    """Data-network shortest paths never revisit a segment: the hop
    count is bounded by half of each traversed ring, and the implied
    bridge itinerary (src ring -> global -> dst ring) is acyclic."""
    topology = _hier(*shape)
    src = data.draw(st.integers(0, topology.num_nodes - 1))
    dst = data.draw(st.integers(0, topology.num_nodes - 1))
    hops = topology.data_hop_distance(src, dst)
    assert hops == topology.data_hop_distance(dst, src)
    assert (hops == 0) == (src == dst)
    bound = (
        topology.ring_size // 2  # src local ring, shortest way
        + topology.local_rings // 2  # global ring, shortest way
        + topology.ring_size // 2  # dst local ring
    )
    assert hops <= bound
    if topology.local_ring_of(src) == topology.local_ring_of(dst):
        assert hops <= topology.ring_size // 2


@settings(max_examples=40)
@given(hier_shapes)
def test_hier_bridges_one_per_local_ring(shape):
    topology = _hier(*shape)
    bridges = topology.bridges()
    assert len(bridges) == topology.local_rings
    assert len(set(topology.local_ring_of(b) for b in bridges)) == (
        topology.local_rings
    )
    for node in range(topology.num_nodes):
        assert topology.is_bridge(node) == (node in bridges)
        assert topology.bridge_of(node) in bridges

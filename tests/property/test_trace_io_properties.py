"""Property-based tests for trace file round-trips.

Hypothesis generates arbitrary (valid) workload traces - ragged core
lengths, empty cores, prewarm lists, any chunking - and the file
layer must reproduce them exactly through both the materializing
loader and the streaming scan/replay path.  A second property cuts
v2 files at arbitrary byte positions: a strict prefix must never load
as a complete trace.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.workloads.io import (
    TraceFormatError,
    iter_core_accesses,
    load_trace,
    save_trace,
    scan_trace,
)
from repro.workloads.trace import Access, WorkloadTrace

accesses = st.lists(
    st.builds(
        Access,
        address=st.integers(0, 1 << 40),
        is_write=st.booleans(),
        think_time=st.integers(0, 1000),
    ),
    max_size=40,
)


@st.composite
def workloads(draw, with_prewarm=None):
    cores_per_cmp = draw(st.sampled_from([1, 2, 4]))
    num_cmps = draw(st.integers(1, 3))
    num_cores = cores_per_cmp * num_cmps
    traces = draw(
        st.lists(accesses, min_size=num_cores, max_size=num_cores)
    )
    prewarm = []
    include_prewarm = (
        draw(st.booleans()) if with_prewarm is None else with_prewarm
    )
    if include_prewarm:
        prewarm = draw(
            st.lists(
                st.lists(st.integers(0, 1 << 20), max_size=10),
                min_size=num_cores,
                max_size=num_cores,
            )
        )
    return WorkloadTrace(
        name=draw(st.text(min_size=1, max_size=20)),
        cores_per_cmp=cores_per_cmp,
        traces=traces,
        prewarm=prewarm,
    )


def _tmp_trace_path():
    fd, path = tempfile.mkstemp(suffix=".jsonl")
    os.close(fd)
    return path


@given(workload=workloads(), chunk=st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_roundtrip_is_lossless(workload, chunk):
    path = _tmp_trace_path()
    try:
        save_trace(workload, path, chunk_size=chunk)
        loaded = load_trace(path)
        assert loaded.name == workload.name
        assert loaded.cores_per_cmp == workload.cores_per_cmp
        assert loaded.traces == workload.traces
        assert loaded.prewarm == workload.prewarm
    finally:
        os.unlink(path)


@given(workload=workloads(), chunk=st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_streaming_replay_equals_load(workload, chunk):
    path = _tmp_trace_path()
    try:
        save_trace(workload, path, chunk_size=chunk)
        scan = scan_trace(path)
        assert scan.total_accesses == workload.total_accesses
        assert scan.prewarm == workload.prewarm
        for core in range(workload.num_cores):
            assert (
                list(iter_core_accesses(scan, core))
                == workload.traces[core]
            )
    finally:
        os.unlink(path)


@given(
    workload=workloads(with_prewarm=False),
    cut=st.integers(0, 10_000_000),
)
@settings(max_examples=60, deadline=None)
def test_truncated_file_never_loads(workload, cut):
    """Cutting a no-prewarm v2 file strictly inside its body must
    raise: either a positioned parse error (mid-line cut) or the
    header-total truncation check (clean line-boundary cut)."""
    assume(workload.total_accesses > 0)
    path = _tmp_trace_path()
    try:
        save_trace(workload, path, chunk_size=7)
        raw = open(path, "rb").read()
        header_end = raw.index(b"\n") + 1
        # Cut strictly after the header and strictly before the last
        # access record's final byte (len-1 is the trailing newline,
        # which json-lines readers tolerate).
        assume(header_end + 1 <= len(raw) - 2)
        position = header_end + 1 + cut % (len(raw) - 2 - header_end)
        with open(path, "wb") as handle:
            handle.write(raw[:position])
        with pytest.raises(TraceFormatError):
            load_trace(path)
        with pytest.raises(TraceFormatError):
            scan_trace(path)
    finally:
        os.unlink(path)


@given(workload=workloads(with_prewarm=True))
@settings(max_examples=30, deadline=None)
def test_prewarm_survives_replay_source(workload):
    """The prewarm contract the warmup controller depends on: a file
    replay source reports exactly the prewarm lists that were saved."""
    from repro.workloads.source import FileReplaySource

    path = _tmp_trace_path()
    try:
        save_trace(workload, path)
        source = FileReplaySource(path)
        assert source.prewarm() == workload.prewarm
        assert source.total_accesses() == workload.total_accesses
    finally:
        os.unlink(path)

"""Property-based tests for the set-associative cache.

The cache is checked against a simple reference model: a dict plus an
explicit per-set LRU list.  Hypothesis drives random operation
sequences and the two implementations must never diverge.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.coherence.cache import SetAssociativeCache
from repro.coherence.states import LineState

NUM_LINES = 16
ASSOC = 4
NUM_SETS = NUM_LINES // ASSOC

operations = st.lists(
    st.one_of(
        st.tuples(st.just("fill"), st.integers(0, 63)),
        st.tuples(st.just("lookup"), st.integers(0, 63)),
        st.tuples(st.just("invalidate"), st.integers(0, 63)),
    ),
    max_size=200,
)


class ReferenceCache:
    """Straight-line model of a set-associative LRU cache."""

    def __init__(self) -> None:
        self.sets = [OrderedDict() for _ in range(NUM_SETS)]

    def _set(self, address):
        return self.sets[address % NUM_SETS]

    def fill(self, address):
        s = self._set(address)
        if address in s:
            s.move_to_end(address)
            return
        if len(s) >= ASSOC:
            s.popitem(last=False)
        s[address] = True

    def lookup(self, address):
        s = self._set(address)
        if address in s:
            s.move_to_end(address)
            return True
        return False

    def invalidate(self, address):
        self._set(address).pop(address, None)

    def resident(self):
        return {a for s in self.sets for a in s}


@given(operations)
@settings(max_examples=200, deadline=None)
def test_cache_matches_reference_model(ops):
    cache = SetAssociativeCache(
        CacheConfig(num_lines=NUM_LINES, associativity=ASSOC)
    )
    reference = ReferenceCache()
    for op, address in ops:
        if op == "fill":
            cache.fill(address, LineState.S)
            reference.fill(address)
        elif op == "lookup":
            got = cache.lookup(address) is not None
            expected = reference.lookup(address)
            assert got == expected
        else:
            cache.invalidate(address)
            reference.invalidate(address)
    assert {line.address for line in cache.iter_lines()} == (
        reference.resident()
    )


@given(operations)
@settings(max_examples=100, deadline=None)
def test_cache_capacity_invariant(ops):
    cache = SetAssociativeCache(
        CacheConfig(num_lines=NUM_LINES, associativity=ASSOC)
    )
    for op, address in ops:
        if op == "fill":
            cache.fill(address, LineState.S)
        elif op == "invalidate":
            cache.invalidate(address)
        for set_index in range(NUM_SETS):
            assert cache.occupancy_of_set(set_index) <= ASSOC


@given(operations)
@settings(max_examples=100, deadline=None)
def test_supplier_callbacks_track_supplier_set(ops):
    """Gains and losses reported by the callbacks must reconstruct the
    exact set of resident supplier lines."""
    tracked = set()

    cache = SetAssociativeCache(
        CacheConfig(num_lines=NUM_LINES, associativity=ASSOC),
        on_state_gain=tracked.add,
        on_state_loss=tracked.discard,
    )
    for op, address in ops:
        if op == "fill":
            # Alternate supplier and non-supplier fills by parity.
            state = LineState.E if address % 2 == 0 else LineState.S
            cache.fill(address, state)
        elif op == "invalidate":
            cache.invalidate(address)

    actual = {
        line.address
        for line in cache.iter_lines()
        if line.state is LineState.E
    }
    assert tracked == actual

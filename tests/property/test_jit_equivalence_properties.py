"""Property-based equivalence of the object and jit cores.

Same attack as ``test_soa_equivalence_properties`` aimed at the
compiled-kernel core: random workload profiles and machine shapes
inside the jit envelope must produce summaries bit-identical to the
object core - on whichever kernel path (numba or Python fallback) the
environment provides, since both run the same code body.

The scenario space deliberately mirrors the SoA property file so a
divergence localizes to the array flattening/kernel, not to scenario
coverage.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_machine
from repro.core.algorithms import build_algorithm
from repro.registry import REGISTRY
from repro.sim.jit import JitRingMultiprocessor
from repro.sim.system import RingMultiprocessor
from repro.workloads.source import SyntheticSource
from repro.workloads.synthetic import SharingProfile

ALGORITHMS = [
    "lazy",
    "eager",
    "oracle",
    "subset",
    "superset_con",
    "superset_agg",
    "exact",
]

profiles = st.builds(
    SharingProfile,
    name=st.just("prop"),
    num_cores=st.just(0),  # replaced below: num_cmps * cores_per_cmp
    cores_per_cmp=st.sampled_from([1, 2]),
    accesses_per_core=st.integers(20, 60),
    p_shared=st.floats(0.1, 0.6),
    p_cold=st.floats(0.0, 0.2),
    shared_lines=st.integers(16, 64),
    private_lines=st.integers(16, 64),
    write_fraction_shared=st.floats(0.0, 0.5),
    migratory_fraction=st.one_of(st.just(0.0), st.floats(0.05, 0.3)),
    producer_consumer_fraction=st.one_of(st.just(0.0), st.floats(0.05, 0.3)),
    burst_mean=st.floats(1.0, 3.0),
    prewarm_fraction=st.floats(0.0, 0.6),
    think_mean=st.floats(1.0, 8.0),
    seed=st.integers(0, 2**16),
)


@st.composite
def scenarios(draw):
    profile = draw(profiles)
    num_cmps = draw(st.integers(2, 4))
    profile = dataclasses.replace(
        profile, num_cores=num_cmps * profile.cores_per_cmp
    )
    algorithm = draw(st.sampled_from(ALGORITHMS))
    warmup = draw(st.sampled_from([0.0, 0.3]))
    return profile, algorithm, warmup


@given(scenarios())
@settings(max_examples=40, deadline=None)
def test_cores_agree_bit_identically(scenario):
    profile, algorithm_name, warmup = scenario
    source = SyntheticSource(profile)
    machine = default_machine(
        algorithm=algorithm_name,
        cores_per_cmp=profile.cores_per_cmp,
        num_cmps=profile.num_cores // profile.cores_per_cmp,
    )
    object_result = RingMultiprocessor(
        machine,
        build_algorithm(algorithm_name),
        source,
        warmup_fraction=warmup,
    ).run()
    jit_result = JitRingMultiprocessor(
        machine,
        build_algorithm(algorithm_name),
        source,
        warmup_fraction=warmup,
    ).run()
    assert jit_result.summary() == object_result.summary()


def test_superset_hybrid_matches_object_core():
    """The hybrid algorithm is outside ``_PURE_CHOICE``: the kernel
    counts aggressive choices itself and folds them into the algorithm
    object after the run, so both the summary and the counter must
    match the object core."""
    profile = SharingProfile(
        name="hyb",
        num_cores=8,
        cores_per_cmp=2,
        accesses_per_core=150,
        seed=3,
    )
    machine = default_machine(
        algorithm="superset_hybrid", cores_per_cmp=2, num_cmps=4
    )
    for warmup in (0.0, 0.3):
        object_algorithm = build_algorithm("superset_hybrid")
        jit_algorithm = build_algorithm("superset_hybrid")
        object_result = RingMultiprocessor(
            machine,
            object_algorithm,
            SyntheticSource(profile),
            warmup_fraction=warmup,
        ).run()
        jit_result = JitRingMultiprocessor(
            machine,
            jit_algorithm,
            SyntheticSource(profile),
            warmup_fraction=warmup,
        ).run()
        assert jit_result.summary() == object_result.summary()
        assert (
            jit_algorithm.aggressive_choices
            == object_algorithm.aggressive_choices
        )


def test_registry_builds_all_cores():
    assert set(REGISTRY.names("core")) >= {"object", "soa", "jit"}
    assert REGISTRY.canonical("core", "JIT") == "jit"
    assert REGISTRY.canonical("core", "compiled") == "jit"
    assert REGISTRY.canonical("core", "kernel") == "jit"

"""Property-based equivalence of the object and SoA cores.

The golden matrix pins 28 fixed cells; this file attacks the same
claim from the other side, generating random workload profiles and
machine shapes inside the SoA envelope and requiring the two cores to
agree *bit-identically* on every summary field - execution time,
crossings, energy, predictor accuracy, latency percentiles, all of
it.  Randomized profiles reach corner cases the fixed matrix cannot:
migratory and producer-consumer sharing mixed with prewarm, tiny
caches under eviction pressure, multi-core CMPs with local-master
hits, warmup cutoffs landing mid-transaction.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_machine
from repro.core.algorithms import build_algorithm
from repro.registry import REGISTRY
from repro.sim.soa import SoaRingMultiprocessor
from repro.sim.system import RingMultiprocessor
from repro.workloads.source import SyntheticSource
from repro.workloads.synthetic import SharingProfile

ALGORITHMS = [
    "lazy",
    "eager",
    "oracle",
    "subset",
    "superset_con",
    "superset_agg",
    "exact",
]

profiles = st.builds(
    SharingProfile,
    name=st.just("prop"),
    num_cores=st.just(0),  # replaced below: num_cmps * cores_per_cmp
    cores_per_cmp=st.sampled_from([1, 2]),
    accesses_per_core=st.integers(20, 60),
    p_shared=st.floats(0.1, 0.6),
    p_cold=st.floats(0.0, 0.2),
    shared_lines=st.integers(16, 64),
    private_lines=st.integers(16, 64),
    write_fraction_shared=st.floats(0.0, 0.5),
    migratory_fraction=st.one_of(st.just(0.0), st.floats(0.05, 0.3)),
    producer_consumer_fraction=st.one_of(st.just(0.0), st.floats(0.05, 0.3)),
    burst_mean=st.floats(1.0, 3.0),
    prewarm_fraction=st.floats(0.0, 0.6),
    think_mean=st.floats(1.0, 8.0),
    seed=st.integers(0, 2**16),
)


@st.composite
def scenarios(draw):
    profile = draw(profiles)
    num_cmps = draw(st.integers(2, 4))
    profile = dataclasses.replace(
        profile, num_cores=num_cmps * profile.cores_per_cmp
    )
    algorithm = draw(st.sampled_from(ALGORITHMS))
    warmup = draw(st.sampled_from([0.0, 0.3]))
    return profile, algorithm, warmup


@given(scenarios())
@settings(max_examples=40, deadline=None)
def test_cores_agree_bit_identically(scenario):
    profile, algorithm_name, warmup = scenario
    source = SyntheticSource(profile)
    machine = default_machine(
        algorithm=algorithm_name,
        cores_per_cmp=profile.cores_per_cmp,
        num_cmps=profile.num_cores // profile.cores_per_cmp,
    )
    object_result = RingMultiprocessor(
        machine,
        build_algorithm(algorithm_name),
        source,
        warmup_fraction=warmup,
    ).run()
    soa_result = SoaRingMultiprocessor(
        machine,
        build_algorithm(algorithm_name),
        source,
        warmup_fraction=warmup,
    ).run()
    assert soa_result.summary() == object_result.summary()


def test_registry_builds_both_cores():
    assert set(REGISTRY.names("core")) >= {"object", "soa"}
    assert REGISTRY.canonical("core", "SOA") == "soa"

"""Unit tests for trace file I/O."""

from __future__ import annotations

import json

import pytest

from repro.workloads.io import (
    TraceFormatError,
    load_trace,
    save_trace,
)
from repro.workloads.profiles import build_workload
from repro.workloads.synthetic import SharingProfile, generate_workload
from repro.workloads.trace import Access, WorkloadTrace


def small_workload():
    return generate_workload(
        SharingProfile(
            name="io-test",
            num_cores=4,
            cores_per_cmp=2,
            accesses_per_core=100,
            p_shared=0.5,
            shared_lines=32,
            private_lines=32,
            prewarm_fraction=0.5,
            seed=3,
        )
    )


def test_roundtrip(tmp_path):
    workload = small_workload()
    path = tmp_path / "trace.jsonl"
    save_trace(workload, path)
    loaded = load_trace(path)
    assert loaded.name == workload.name
    assert loaded.cores_per_cmp == workload.cores_per_cmp
    assert loaded.traces == workload.traces
    assert loaded.prewarm == workload.prewarm


def test_roundtrip_without_prewarm(tmp_path):
    workload = WorkloadTrace(
        name="bare",
        cores_per_cmp=1,
        traces=[[Access(1, False, 2)], [Access(2, True, 0)]],
    )
    path = tmp_path / "bare.jsonl"
    save_trace(workload, path)
    loaded = load_trace(path)
    assert loaded.prewarm == []
    assert loaded.traces == workload.traces


def test_loaded_trace_simulates_identically(tmp_path):
    from repro.config import CacheConfig, default_machine
    from repro.core.algorithms import build_algorithm
    from repro.sim.system import RingMultiprocessor

    workload = small_workload()
    path = tmp_path / "trace.jsonl"
    save_trace(workload, path)
    loaded = load_trace(path)

    def run(trace):
        machine = default_machine(
            algorithm="lazy",
            num_cmps=trace.num_cmps,
            cores_per_cmp=trace.cores_per_cmp,
            cache=CacheConfig(num_lines=128, associativity=4),
        )
        return RingMultiprocessor(
            machine, build_algorithm("lazy"), trace
        ).run()

    original = run(workload)
    replayed = run(loaded)
    assert original.exec_time == replayed.exec_time
    assert original.stats.read_snoops == replayed.stats.read_snoops


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_wrong_format_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"format": "something-else"}) + "\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_wrong_version_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps({"format": "flexsnoop-trace", "version": 99,
                    "name": "x", "cores_per_cmp": 1, "num_cores": 1})
        + "\n"
    )
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_garbage_header_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_core_out_of_range_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    lines = [
        json.dumps({"format": "flexsnoop-trace", "version": 1,
                    "name": "x", "cores_per_cmp": 1, "num_cores": 1}),
        json.dumps({"core": 5, "accesses": []}),
    ]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_named_workload_roundtrip(tmp_path):
    workload = build_workload("specjbb", accesses_per_core=100)
    path = tmp_path / "jbb.jsonl"
    save_trace(workload, path)
    loaded = load_trace(path)
    assert loaded.total_accesses == workload.total_accesses
    assert loaded.name == "SPECjbb"


# ----------------------------------------------------------------------
# Format v2: chunked records, streaming scan/replay


def v1_file(tmp_path, traces, prewarm=None, cores_per_cmp=1):
    """Hand-write a version-1 file (one combined record per core)."""
    lines = [
        json.dumps({
            "format": "flexsnoop-trace", "version": 1, "name": "v1",
            "cores_per_cmp": cores_per_cmp, "num_cores": len(traces),
        })
    ]
    for core, accesses in enumerate(traces):
        lines.append(json.dumps({
            "core": core,
            "accesses": [
                [a.address, int(a.is_write), a.think_time]
                for a in accesses
            ],
        }))
    for core, warm in enumerate(prewarm or []):
        lines.append(json.dumps({"core": core, "prewarm": warm}))
    path = tmp_path / "v1.jsonl"
    path.write_text("\n".join(lines) + "\n")
    return path


def test_save_trace_writes_v2_chunks(tmp_path):
    workload = small_workload()
    path = tmp_path / "trace.jsonl"
    save_trace(workload, path, chunk_size=16)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["version"] == 2
    assert header["total_accesses"] == workload.total_accesses
    access_records = [
        json.loads(line) for line in lines[1:]
        if "accesses" in json.loads(line)
    ]
    # 100 accesses per core at chunk 16 -> 7 chunks per core.
    assert len(access_records) == workload.num_cores * 7
    assert all(len(r["accesses"]) <= 16 for r in access_records)


def test_v1_file_still_loads(tmp_path):
    traces = [[Access(1, False, 2), Access(3, True, 0)],
              [Access(2, True, 1)]]
    prewarm = [[1, 3], [2]]
    path = v1_file(tmp_path, traces, prewarm)
    loaded = load_trace(path)
    assert loaded.traces == traces
    assert loaded.prewarm == prewarm


def test_v1_file_scans_and_streams(tmp_path):
    from repro.workloads.io import iter_core_accesses, scan_trace

    traces = [[Access(1, False, 2), Access(3, True, 0)],
              [Access(2, True, 1)]]
    path = v1_file(tmp_path, traces, [[7], []])
    scan = scan_trace(path)
    assert scan.version == 1
    assert scan.total_accesses == 3
    assert scan.prewarm == [[7], []]
    assert list(iter_core_accesses(scan, 0)) == traces[0]
    assert list(iter_core_accesses(scan, 1)) == traces[1]


def test_scan_matches_load(tmp_path):
    from repro.workloads.io import iter_core_accesses, scan_trace

    workload = small_workload()
    path = tmp_path / "trace.jsonl"
    save_trace(workload, path, chunk_size=8)
    scan = scan_trace(path)
    assert scan.name == workload.name
    assert scan.total_accesses == workload.total_accesses
    assert scan.prewarm == workload.prewarm
    for core in range(workload.num_cores):
        assert list(iter_core_accesses(scan, core)) == \
            workload.traces[core]


def test_read_header_peeks_geometry(tmp_path):
    from repro.workloads.io import read_header

    workload = small_workload()
    path = tmp_path / "trace.jsonl"
    save_trace(workload, path)
    header = read_header(path)
    assert header["num_cores"] == workload.num_cores
    assert header["cores_per_cmp"] == workload.cores_per_cmp


def test_truncated_v2_file_rejected(tmp_path):
    workload = small_workload()
    path = tmp_path / "trace.jsonl"
    save_trace(workload, path, chunk_size=8)
    lines = path.read_text().splitlines(keepends=True)
    # Drop the last access record (the file ends with prewarm
    # records): the header's total no longer matches.
    last = max(
        i for i, line in enumerate(lines) if '"accesses"' in line
    )
    path.write_text("".join(lines[:last] + lines[last + 1:]))
    with pytest.raises(TraceFormatError, match="truncated"):
        load_trace(path)
    from repro.workloads.io import scan_trace
    with pytest.raises(TraceFormatError, match="truncated"):
        scan_trace(path)


def test_errors_carry_line_numbers(tmp_path):
    path = tmp_path / "bad.jsonl"
    lines = [
        json.dumps({"format": "flexsnoop-trace", "version": 2,
                    "name": "x", "cores_per_cmp": 1, "num_cores": 1,
                    "total_accesses": 1}),
        json.dumps({"core": 0, "accesses": [[1, 0, 0]]}),
        "{broken",
    ]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(TraceFormatError, match=r"bad\.jsonl:3"):
        load_trace(path)


def test_bad_access_value_positions_error(tmp_path):
    path = tmp_path / "bad.jsonl"
    lines = [
        json.dumps({"format": "flexsnoop-trace", "version": 2,
                    "name": "x", "cores_per_cmp": 1, "num_cores": 1,
                    "total_accesses": 1}),
        json.dumps({"core": 0, "accesses": [[1, 0, -5]]}),
    ]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(TraceFormatError, match=r"bad\.jsonl:2"):
        load_trace(path)


def test_blank_line_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    lines = [
        json.dumps({"format": "flexsnoop-trace", "version": 2,
                    "name": "x", "cores_per_cmp": 1, "num_cores": 1,
                    "total_accesses": 0}),
        "",
        json.dumps({"core": 0, "accesses": []}),
    ]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(TraceFormatError, match=":2"):
        load_trace(path)


def test_bad_geometry_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps({"format": "flexsnoop-trace", "version": 2,
                    "name": "x", "cores_per_cmp": 3, "num_cores": 4,
                    "total_accesses": 0}) + "\n"
    )
    with pytest.raises(TraceFormatError, match="geometry"):
        load_trace(path)

"""Unit tests for trace file I/O."""

from __future__ import annotations

import json

import pytest

from repro.workloads.io import (
    TraceFormatError,
    load_trace,
    save_trace,
)
from repro.workloads.profiles import build_workload
from repro.workloads.synthetic import SharingProfile, generate_workload
from repro.workloads.trace import Access, WorkloadTrace


def small_workload():
    return generate_workload(
        SharingProfile(
            name="io-test",
            num_cores=4,
            cores_per_cmp=2,
            accesses_per_core=100,
            p_shared=0.5,
            shared_lines=32,
            private_lines=32,
            prewarm_fraction=0.5,
            seed=3,
        )
    )


def test_roundtrip(tmp_path):
    workload = small_workload()
    path = tmp_path / "trace.jsonl"
    save_trace(workload, path)
    loaded = load_trace(path)
    assert loaded.name == workload.name
    assert loaded.cores_per_cmp == workload.cores_per_cmp
    assert loaded.traces == workload.traces
    assert loaded.prewarm == workload.prewarm


def test_roundtrip_without_prewarm(tmp_path):
    workload = WorkloadTrace(
        name="bare",
        cores_per_cmp=1,
        traces=[[Access(1, False, 2)], [Access(2, True, 0)]],
    )
    path = tmp_path / "bare.jsonl"
    save_trace(workload, path)
    loaded = load_trace(path)
    assert loaded.prewarm == []
    assert loaded.traces == workload.traces


def test_loaded_trace_simulates_identically(tmp_path):
    from repro.config import CacheConfig, default_machine
    from repro.core.algorithms import build_algorithm
    from repro.sim.system import RingMultiprocessor

    workload = small_workload()
    path = tmp_path / "trace.jsonl"
    save_trace(workload, path)
    loaded = load_trace(path)

    def run(trace):
        machine = default_machine(
            algorithm="lazy",
            num_cmps=trace.num_cmps,
            cores_per_cmp=trace.cores_per_cmp,
            cache=CacheConfig(num_lines=128, associativity=4),
        )
        return RingMultiprocessor(
            machine, build_algorithm("lazy"), trace
        ).run()

    original = run(workload)
    replayed = run(loaded)
    assert original.exec_time == replayed.exec_time
    assert original.stats.read_snoops == replayed.stats.read_snoops


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_wrong_format_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"format": "something-else"}) + "\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_wrong_version_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps({"format": "flexsnoop-trace", "version": 99,
                    "name": "x", "cores_per_cmp": 1, "num_cores": 1})
        + "\n"
    )
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_garbage_header_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_core_out_of_range_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    lines = [
        json.dumps({"format": "flexsnoop-trace", "version": 1,
                    "name": "x", "cores_per_cmp": 1, "num_cores": 1}),
        json.dumps({"core": 5, "accesses": []}),
    ]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_named_workload_roundtrip(tmp_path):
    workload = build_workload("specjbb", accesses_per_core=100)
    path = tmp_path / "jbb.jsonl"
    save_trace(workload, path)
    loaded = load_trace(path)
    assert loaded.total_accesses == workload.total_accesses
    assert loaded.name == "SPECjbb"

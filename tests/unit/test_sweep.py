"""Unit tests for the parameter-sweep utility."""

from __future__ import annotations

import pytest

from repro.harness.sweep import (
    Sweep,
    SweepPoint,
    field_mutator,
    run_sweep,
    sweep_memory_field,
    sweep_predictor_entries,
    sweep_ring_field,
    valid_sweep_fields,
)

FAST = dict(workload="specjbb", accesses_per_core=150,
            warmup_fraction=0.0)


def test_sweep_ring_snoop_time_changes_latency():
    sweep = sweep_ring_field(
        "snoop_time", [10, 110], algorithm="lazy", **FAST
    )
    latency = sweep.series("mean_read_miss_latency")
    assert latency[110] > latency[10]
    assert sweep.name == "ring.snoop_time"
    # The config actually carried the swept value.
    assert sweep.points[0].result.config.ring.snoop_time == 10


def test_sweep_series_reads_result_attributes():
    sweep = sweep_ring_field(
        "hop_latency", [20, 80], algorithm="lazy", **FAST
    )
    exec_series = sweep.series("exec_time")
    assert exec_series[80] > exec_series[20]


def test_normalized_series():
    sweep = Sweep(name="demo")

    class FakeResult:
        def __init__(self, exec_time):
            self.exec_time = exec_time

    sweep.points = [
        SweepPoint(1, FakeResult(100.0)),
        SweepPoint(2, FakeResult(150.0)),
    ]
    normalized = sweep.normalized_series("exec_time", baseline=1)
    assert normalized == {1: 1.0, 2: 1.5}
    with pytest.raises(KeyError):
        sweep.normalized_series("exec_time", baseline=99)


def test_normalized_series_missing_baseline_message():
    sweep = Sweep(name="demo")

    class FakeResult:
        exec_time = 10.0

    sweep.points = [SweepPoint(1, FakeResult())]
    with pytest.raises(KeyError, match="not swept"):
        sweep.normalized_series("exec_time", baseline=2)


def test_normalized_series_zero_reference():
    sweep = Sweep(name="demo")

    class FakeResult:
        def __init__(self, exec_time):
            self.exec_time = exec_time

    sweep.points = [
        SweepPoint(1, FakeResult(0.0)),
        SweepPoint(2, FakeResult(5.0)),
    ]
    with pytest.raises(ZeroDivisionError, match="baseline metric"):
        sweep.normalized_series("exec_time", baseline=1)


def test_normalized_series_empty_sweep():
    sweep = Sweep(name="empty")
    with pytest.raises(KeyError):
        sweep.normalized_series("exec_time", baseline=1)


def test_sweep_results_cached(tmp_path):
    from repro.harness.result_cache import ResultCache

    cache = ResultCache(root=tmp_path / "cache")
    first = sweep_ring_field(
        "snoop_time", [10, 110], algorithm="lazy", cache=cache, **FAST
    )
    assert cache.stores == 2
    second = sweep_ring_field(
        "snoop_time", [10, 110], algorithm="lazy", cache=cache, **FAST
    )
    assert cache.hits == 2 and cache.stores == 2
    assert (
        second.series("exec_time") == first.series("exec_time")
    )


def test_sweep_memory_prefetch_toggle():
    sweep = sweep_memory_field(
        "prefetch_on_snoop", [True, False], algorithm="lazy", **FAST
    )
    latency = sweep.series("mean_read_miss_latency")
    assert latency[False] >= latency[True]


def test_sweep_predictor_entries():
    sweep = sweep_predictor_entries(
        [512, 2048], algorithm="subset", **FAST
    )
    assert [p.value for p in sweep.points] == [512, 2048]
    assert sweep.points[0].result.config.predictor.entries == 512
    assert sweep.points[1].result.config.predictor.entries == 2048


def test_run_sweep_resolves_dotted_field_without_mutator():
    sweep = run_sweep(
        "ring.snoop_time", [10, 110], algorithm="lazy", **FAST
    )
    latency = sweep.series("mean_read_miss_latency")
    assert latency[110] > latency[10]
    assert sweep.points[0].result.config.ring.snoop_time == 10


def test_run_sweep_accepts_field_path_as_mutate_string():
    sweep = run_sweep(
        "rtt", [200, 600], mutate="memory.local_round_trip",
        algorithm="lazy", **FAST
    )
    assert sweep.name == "rtt"
    assert (
        sweep.points[1].result.config.memory.local_round_trip == 600
    )


def test_run_sweep_resolves_scalar_field():
    sweep = run_sweep(
        "squash_backoff", [100, 300], algorithm="lazy", **FAST
    )
    assert sweep.points[0].result.config.squash_backoff == 100
    assert sweep.points[1].result.config.squash_backoff == 300


def test_field_mutator_typo_lists_valid_fields():
    with pytest.raises(ValueError) as err:
        field_mutator("ring.link_occupncy")
    message = str(err.value)
    assert "ring.link_occupncy" in message
    assert "ring.link_occupancy" in message
    assert "memory.local_round_trip" in message


def test_field_mutator_rejects_deep_paths():
    with pytest.raises(ValueError):
        field_mutator("ring.link_occupancy.extra")


def test_valid_sweep_fields_enumerates_config():
    fields = valid_sweep_fields()
    assert fields == sorted(fields)
    for expected in (
        "ring.link_occupancy",
        "ring.serialize_snoop_port",
        "memory.local_round_trip",
        "predictor.entries",
        "squash_backoff",
        "num_cmps",
    ):
        assert expected in fields
    # Sections themselves are not sweepable - only their leaves.
    assert "ring" not in fields


def test_custom_mutator():
    calls = []

    def mutate(config, value):
        calls.append(value)
        return config.replace(squash_backoff=value)

    sweep = run_sweep("backoff", [100, 300], mutate,
                      algorithm="lazy", **FAST)
    assert calls == [100, 300]
    assert sweep.points[1].result.config.squash_backoff == 300

"""Benchmark environment fingerprinting.

Cross-machine regression verdicts are advisory and keyed on the
fingerprint; the CPU count it records must be the affinity-aware
count (what the benchmark can actually use), not the whole machine's,
or a pinned CI runner and a full host would wrongly compare as the
same environment.
"""

from __future__ import annotations

import os

from repro.harness.bench import (
    _available_cpus,
    environment_fingerprint,
    same_environment,
)


def test_fingerprint_reports_affinity_aware_cpu_count():
    fingerprint = environment_fingerprint()
    assert fingerprint["cpu_count"] == _available_cpus()
    if hasattr(os, "sched_getaffinity"):
        assert fingerprint["cpu_count"] == len(os.sched_getaffinity(0))


def test_available_cpus_is_positive_and_bounded():
    count = _available_cpus()
    assert count >= 1
    assert count <= (os.cpu_count() or count)


def test_cpu_count_differences_break_environment_match():
    a = environment_fingerprint()
    b = dict(a, cpu_count=a["cpu_count"] + 1)
    assert same_environment(a, a)
    assert not same_environment(a, b)
    assert not same_environment(a, None)

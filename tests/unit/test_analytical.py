"""Unit tests for the closed-form Table 1 / Table 3 models."""

from __future__ import annotations

import math

import pytest

from repro.core.analytical import (
    ALGORITHM_NAMES,
    AnalyticalParams,
    expected_latency,
    expected_messages,
    expected_snoops,
    table1,
    table3,
)


def params(**kwargs):
    defaults = dict(num_nodes=8, hop_latency=39, snoop_time=55,
                    predictor_latency=2, p_supplier=1.0)
    defaults.update(kwargs)
    return AnalyticalParams(**defaults)


# ----------------------------------------------------------------------
# Table 1 baselines (supplier always exists)


def test_lazy_snoops_half_the_ring():
    p = params()
    # Uniform over 1..7 -> mean 4 = N/2 (the paper quotes (N-1)/2).
    assert expected_snoops("lazy", p) == pytest.approx(4.0)


def test_eager_snoops_everyone():
    assert expected_snoops("eager", params()) == 7.0


def test_oracle_snoops_once():
    assert expected_snoops("oracle", params()) == 1.0


def test_lazy_single_message():
    assert expected_messages("lazy", params()) == 1.0


def test_eager_nearly_two_messages():
    p = params()
    assert expected_messages("eager", p) == pytest.approx(15 / 8)


def test_latency_ordering_of_baselines():
    p = params()
    lazy = expected_latency("lazy", p)
    eager = expected_latency("eager", p)
    oracle = expected_latency("oracle", p)
    assert lazy > eager
    assert eager == oracle
    # Lazy pays the snoop at every hop.
    assert lazy == pytest.approx(4.0 * (39 + 55))
    assert eager == pytest.approx(4.0 * 39 + 55)


def test_no_supplier_shifts_snoop_counts():
    p = params(p_supplier=0.0)
    assert expected_snoops("lazy", p) == 7.0  # walks the whole ring
    assert expected_snoops("oracle", p) == 0.0  # never snoops


# ----------------------------------------------------------------------
# Table 3: Flexible Snooping algorithms


def test_subset_matches_lazy_with_perfect_predictor():
    p = params(fn=0.0)
    assert expected_snoops("subset", p) == pytest.approx(
        expected_snoops("lazy", p)
    )


def test_subset_false_negatives_add_snoops():
    p_clean = params(fn=0.0)
    p_noisy = params(fn=0.5)
    assert expected_snoops("subset", p_noisy) > expected_snoops(
        "subset", p_clean
    )
    # fn = 1 degenerates to Eager.
    assert expected_snoops("subset", params(fn=1.0)) == pytest.approx(7.0)


def test_superset_con_snoops_one_plus_false_positives():
    assert expected_snoops("superset_con", params(fp=0.0)) == 1.0
    p = params(fp=0.2)
    assert expected_snoops("superset_con", p) == pytest.approx(
        1.0 + 0.2 * 3.0
    )


def test_superset_agg_checks_all_nodes():
    # With the same fp, Agg snoops more than Con: it checks the whole
    # ring rather than stopping at the supplier.
    p = params(fp=0.3)
    assert expected_snoops("superset_agg", p) > expected_snoops(
        "superset_con", p
    )
    assert expected_snoops("superset_agg", p) == pytest.approx(
        1.0 + 0.3 * 6.0
    )


def test_exact_downgrades_divert_to_memory():
    assert expected_snoops("exact", params()) == 1.0
    assert expected_snoops(
        "exact", params(downgrade_rate=0.25)
    ) == pytest.approx(0.75)


def test_messages_single_for_combined_algorithms():
    p = params(fp=0.3, fn=0.1)
    for name in ("superset_con", "exact", "oracle", "lazy"):
        assert expected_messages(name, p) == 1.0


def test_subset_messages_between_one_and_two():
    p = params(fn=0.1)
    messages = expected_messages("subset", p)
    assert 1.0 < messages < 2.0
    # All false negatives -> every message stays split: Eager traffic.
    assert expected_messages("subset", params(fn=1.0)) == pytest.approx(
        15 / 8
    )


def test_superset_agg_messages_between_one_and_two():
    p = params(fp=0.2)
    messages = expected_messages("superset_agg", p)
    assert 1.0 < messages < 2.0
    # No false positives: splits exactly at the supplier.
    clean = expected_messages("superset_agg", params(fp=0.0))
    noisy = expected_messages("superset_agg", params(fp=0.5))
    assert noisy > clean


def test_superset_con_latency_grows_with_fp():
    clean = expected_latency("superset_con", params(fp=0.0))
    noisy = expected_latency("superset_con", params(fp=0.4))
    assert noisy > clean
    # Every pre-supplier false positive costs one snoop time.
    assert noisy - clean == pytest.approx(0.4 * 3.0 * 55)


def test_table1_has_three_rows():
    rows = table1(params())
    assert set(rows) == {"lazy", "eager", "oracle"}
    for row in rows.values():
        assert set(row) == {"latency", "snoops", "messages"}


def test_table3_has_four_rows():
    rows = table3(params())
    assert set(rows) == {"subset", "superset_con", "superset_agg", "exact"}


def test_all_algorithms_have_all_models():
    p = params(fp=0.1, fn=0.1, downgrade_rate=0.1)
    for name in ALGORITHM_NAMES:
        assert math.isfinite(expected_snoops(name, p))
        assert math.isfinite(expected_messages(name, p))
        assert math.isfinite(expected_latency(name, p))


def test_params_validation():
    with pytest.raises(ValueError):
        AnalyticalParams(num_nodes=1)
    with pytest.raises(ValueError):
        AnalyticalParams(fp=1.5)
    with pytest.raises(ValueError):
        AnalyticalParams(p_supplier=-0.1)

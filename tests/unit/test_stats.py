"""Unit tests for the statistics containers."""

from __future__ import annotations

import pytest

from repro.metrics.stats import PredictorAccuracy, RunStats


def test_accuracy_classification():
    accuracy = PredictorAccuracy()
    accuracy.record(prediction=True, truth=True)
    accuracy.record(prediction=True, truth=False)
    accuracy.record(prediction=False, truth=True)
    accuracy.record(prediction=False, truth=False)
    assert accuracy.true_positive == 1
    assert accuracy.false_positive == 1
    assert accuracy.false_negative == 1
    assert accuracy.true_negative == 1
    assert accuracy.total == 4


def test_accuracy_fractions_sum_to_one():
    accuracy = PredictorAccuracy()
    for prediction, truth in [(True, True)] * 3 + [(False, False)] * 5 + [
        (True, False)
    ] * 2:
        accuracy.record(prediction, truth)
    fractions = accuracy.fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert fractions["true_positive"] == pytest.approx(0.3)
    assert fractions["false_positive"] == pytest.approx(0.2)


def test_accuracy_empty_fractions():
    fractions = PredictorAccuracy().fractions()
    assert all(value == 0.0 for value in fractions.values())


def test_accuracy_rates():
    accuracy = PredictorAccuracy(
        true_positive=8,
        false_negative=2,
        true_negative=6,
        false_positive=4,
    )
    assert accuracy.false_negative_rate == pytest.approx(0.2)
    assert accuracy.false_positive_rate == pytest.approx(0.4)


def test_accuracy_rates_empty():
    empty = PredictorAccuracy()
    assert empty.false_negative_rate == 0.0
    assert empty.false_positive_rate == 0.0


def test_snoops_per_read_request():
    stats = RunStats()
    assert stats.snoops_per_read_request == 0.0
    stats.read_ring_transactions = 10
    stats.read_snoops = 45
    assert stats.snoops_per_read_request == 4.5


def test_supplier_found_fraction():
    stats = RunStats()
    assert stats.supplier_found_fraction == 0.0
    stats.reads_supplied_by_cache = 3
    stats.reads_supplied_by_memory = 1
    assert stats.supplier_found_fraction == 0.75


def test_mean_latencies():
    stats = RunStats()
    assert stats.mean_read_miss_latency == 0.0
    assert stats.mean_supplier_latency == 0.0
    stats.read_miss_latency_sum = 1200
    stats.read_miss_count = 4
    stats.supplier_latency_sum = 600
    stats.supplier_latency_count = 3
    assert stats.mean_read_miss_latency == 300.0
    assert stats.mean_supplier_latency == 200.0


def test_summary_keys():
    summary = RunStats().summary()
    for key in (
        "reads",
        "writes",
        "snoops_per_read_request",
        "supplier_found_fraction",
        "exec_time",
        "memory_reads",
    ):
        assert key in summary

"""Unit tests for coherence line states and the compatibility matrix
(Figure 2(b) of the paper)."""

from __future__ import annotations

import itertools

import pytest

from repro.coherence.states import (
    CACHED_STATES,
    LOCAL_MASTER_STATES,
    SUPPLIER_STATES,
    LineState,
    compatible,
    is_dirty,
    is_local_master,
    is_supplier,
)

ALL_STATES = list(LineState)


def test_supplier_states_are_sg_e_d_t():
    assert SUPPLIER_STATES == {
        LineState.SG,
        LineState.E,
        LineState.D,
        LineState.T,
    }


def test_local_master_states_include_suppliers_and_sl():
    assert LOCAL_MASTER_STATES == SUPPLIER_STATES | {LineState.SL}


def test_plain_shared_is_not_master():
    assert not is_supplier(LineState.S)
    assert not is_local_master(LineState.S)
    assert not is_supplier(LineState.SL)
    assert is_local_master(LineState.SL)


def test_dirty_states():
    assert is_dirty(LineState.D)
    assert is_dirty(LineState.T)
    for state in (LineState.I, LineState.S, LineState.SL, LineState.SG,
                  LineState.E):
        assert not is_dirty(state)


@pytest.mark.parametrize("same_cmp", [True, False])
def test_compatibility_is_symmetric(same_cmp):
    for a, b in itertools.product(ALL_STATES, ALL_STATES):
        assert compatible(a, b, same_cmp) == compatible(b, a, same_cmp), (
            a,
            b,
            same_cmp,
        )


@pytest.mark.parametrize("same_cmp", [True, False])
def test_invalid_compatible_with_everything(same_cmp):
    for state in ALL_STATES:
        assert compatible(LineState.I, state, same_cmp)


@pytest.mark.parametrize("state", [LineState.E, LineState.D])
def test_exclusive_states_tolerate_nothing(state):
    for other in CACHED_STATES:
        assert not compatible(state, other, same_cmp=True)
        assert not compatible(state, other, same_cmp=False)


def test_single_global_supplier():
    # No two supplier states may coexist anywhere.
    for a, b in itertools.product(SUPPLIER_STATES, SUPPLIER_STATES):
        assert not compatible(a, b, same_cmp=False), (a, b)
        assert not compatible(a, b, same_cmp=True), (a, b)


def test_tagged_coexists_with_shared_copies():
    assert compatible(LineState.T, LineState.S, same_cmp=False)
    assert compatible(LineState.T, LineState.S, same_cmp=True)
    assert compatible(LineState.T, LineState.SL, same_cmp=False)


def test_local_masters_exclusive_within_cmp():
    # The "*" entries of Figure 2(b): compatible only across CMPs.
    pairs = [
        (LineState.SL, LineState.SL),
        (LineState.SL, LineState.SG),
        (LineState.SL, LineState.T),
        (LineState.SG, LineState.SL),
    ]
    for a, b in pairs:
        assert compatible(a, b, same_cmp=False), (a, b)
        assert not compatible(a, b, same_cmp=True), (a, b)


def test_sg_incompatible_with_t_everywhere():
    assert not compatible(LineState.SG, LineState.T, same_cmp=False)
    assert not compatible(LineState.SG, LineState.T, same_cmp=True)


def test_plain_shared_compatible_with_masters():
    for master in (LineState.S, LineState.SL, LineState.SG, LineState.T):
        assert compatible(LineState.S, master, same_cmp=False)

"""Unit tests for the unified component registry.

Covers the deduplicated unknown-name errors (every resolution path
raises the same registry error listing the valid choices), alias
normalization, and the ``entry_points`` plugin seam.
"""

from __future__ import annotations

import pytest

from repro.config import NAMED_PREDICTORS, default_machine
from repro.core.algorithms import ALGORITHMS, Lazy, build_algorithm
from repro.registry import (
    ComponentRegistry,
    REGISTRY,
    UnknownComponentError,
    _iter_entry_points,
)
from repro.workloads.profiles import WORKLOAD_PROFILES, resolve_profile


# ----------------------------------------------------------------------
# Resolution of builtins


def test_all_builtin_algorithms_registered():
    assert REGISTRY.names("algorithm") == sorted(ALGORITHMS)


def test_all_builtin_predictors_registered():
    assert REGISTRY.names("predictor") == sorted(NAMED_PREDICTORS)


def test_all_builtin_workloads_registered():
    from repro.workloads.splash2_apps import SPLASH2_APPS

    names = REGISTRY.names("workload")
    # Every mix profile and every per-app SPLASH-2 factory resolves by
    # name; nothing else sneaks into the builtin set.
    expected = list(WORKLOAD_PROFILES) + [
        REGISTRY.canonical("workload", "splash2/%s" % app)
        for app in SPLASH2_APPS
    ]
    assert names == sorted(expected)


@pytest.mark.parametrize(
    "alias, canonical",
    [
        ("SupersetCon", "superset_con"),
        ("supcon", "superset_con"),
        ("supagg", "superset_agg"),
        ("LAZY", "lazy"),
    ],
)
def test_algorithm_aliases(alias, canonical):
    assert REGISTRY.canonical("algorithm", alias) == canonical
    assert build_algorithm(alias).name == canonical


@pytest.mark.parametrize(
    "alias, canonical",
    [
        ("SPLASH-2", "splash2"),
        ("splash", "splash2"),
        ("jbb", "specjbb"),
        ("spec_web", "specweb"),
    ],
)
def test_workload_aliases(alias, canonical):
    assert REGISTRY.canonical("workload", alias) == canonical


def test_predictor_names_are_exact():
    assert REGISTRY.create("predictor", "Sub2k").kind == "subset"
    with pytest.raises(UnknownComponentError):
        REGISTRY.get("predictor", "sub2k")


def test_algorithm_metadata_records_paper_defaults():
    assert (
        REGISTRY.metadata("algorithm", "subset")["default_predictor"]
        == "Sub2k"
    )
    assert (
        REGISTRY.metadata("algorithm", "exact")["default_predictor"]
        == "Exa2k"
    )
    # Forward-on-negative algorithms must be restricted to predictor
    # kinds without false negatives.
    kinds = REGISTRY.metadata("algorithm", "superset_con")[
        "compatible_predictor_kinds"
    ]
    assert set(kinds) == {"superset", "exact", "perfect"}
    assert "none" in REGISTRY.metadata("algorithm", "lazy")[
        "compatible_predictor_kinds"
    ]


# ----------------------------------------------------------------------
# Deduplicated unknown-name errors: build_algorithm, default_machine
# and resolve_profile all surface the registry's message, which lists
# the valid choices.


def _assert_lists_choices(excinfo, choices):
    message = str(excinfo.value)
    assert "known:" in message
    for choice in choices:
        assert choice in message


def test_build_algorithm_unknown_lists_choices():
    with pytest.raises(UnknownComponentError) as excinfo:
        build_algorithm("nonexistent")
    _assert_lists_choices(excinfo, ALGORITHMS)
    assert "unknown algorithm 'nonexistent'" in str(excinfo.value)


def test_default_machine_unknown_algorithm_lists_choices():
    with pytest.raises(UnknownComponentError) as excinfo:
        default_machine(algorithm="nonexistent")
    _assert_lists_choices(excinfo, ALGORITHMS)


def test_default_machine_unknown_predictor_lists_choices():
    with pytest.raises(UnknownComponentError) as excinfo:
        default_machine(predictor="Sub4k")
    _assert_lists_choices(excinfo, NAMED_PREDICTORS)
    assert "unknown predictor 'Sub4k'" in str(excinfo.value)


def test_resolve_profile_unknown_lists_choices():
    with pytest.raises(UnknownComponentError) as excinfo:
        resolve_profile("nonexistent")
    _assert_lists_choices(excinfo, WORKLOAD_PROFILES)


def test_unknown_component_error_is_value_error():
    # Pre-registry callers caught ValueError; that contract holds.
    with pytest.raises(ValueError):
        build_algorithm("nonexistent")


def test_error_carries_structured_fields():
    with pytest.raises(UnknownComponentError) as excinfo:
        REGISTRY.get("algorithm", "bogus")
    error = excinfo.value
    assert error.kind == "algorithm"
    assert error.requested == "bogus"
    assert "lazy" in error.known


# ----------------------------------------------------------------------
# Registration mechanics (on a private registry instance)


def test_register_and_create():
    registry = ComponentRegistry()
    registry.register("algorithm", "MyAlgo", Lazy, aliases=("ma",))
    assert registry.canonical("algorithm", "MYALGO") == "myalgo"
    assert registry.canonical("algorithm", "ma") == "myalgo"
    assert isinstance(registry.create("algorithm", "myalgo"), Lazy)


def test_duplicate_registration_rejected():
    registry = ComponentRegistry()
    registry.register("algorithm", "dup", Lazy)
    with pytest.raises(ValueError, match="already registered"):
        registry.register("algorithm", "dup", Lazy)
    registry.register("algorithm", "dup", Lazy, replace=True)


def test_unregister_removes_aliases():
    registry = ComponentRegistry()
    registry.register("algorithm", "gone", Lazy, aliases=("g",))
    registry.unregister("algorithm", "gone")
    with pytest.raises(UnknownComponentError):
        registry.canonical("algorithm", "g")


# ----------------------------------------------------------------------
# Plugin seam: a component registered exclusively through
# entry_points, with no edits to any repro module.


class _PluginAlgorithm(Lazy):
    name = "plugin_lazy"
    display_name = "PluginLazy"
    registry_metadata = {"default_predictor": "None"}
    registry_aliases = ("plazy",)


class _FakeEntryPoint:
    name = "plugin_lazy"

    @staticmethod
    def load():
        return _PluginAlgorithm


class _BrokenEntryPoint:
    name = "broken_plugin"

    @staticmethod
    def load():
        raise ImportError("plugin package is broken")


def test_entry_point_plugin_resolves(monkeypatch):
    monkeypatch.setattr(
        "repro.registry._iter_entry_points",
        lambda group: (
            [_FakeEntryPoint] if group == "flexsnoop.algorithms" else []
        ),
    )
    REGISTRY.reload_plugins("algorithm")
    try:
        assert "plugin_lazy" in REGISTRY.names("algorithm")
        entry = REGISTRY.get("algorithm", "plugin_lazy")
        assert entry.source == "plugin"
        assert entry.metadata["default_predictor"] == "None"
        # Aliases and the shared build path both see the plugin.
        assert REGISTRY.canonical("algorithm", "plazy") == "plugin_lazy"
        algorithm = build_algorithm("plugin_lazy")
        assert isinstance(algorithm, _PluginAlgorithm)
    finally:
        REGISTRY.reload_plugins("algorithm")
    assert "plugin_lazy" not in REGISTRY.names("algorithm")


def test_broken_plugin_is_skipped(monkeypatch):
    monkeypatch.setattr(
        "repro.registry._iter_entry_points",
        lambda group: (
            [_BrokenEntryPoint] if group == "flexsnoop.algorithms" else []
        ),
    )
    REGISTRY.reload_plugins("algorithm")
    try:
        # Resolution of everything else is unaffected.
        assert "lazy" in REGISTRY.names("algorithm")
        assert "broken_plugin" not in REGISTRY.names("algorithm")
    finally:
        REGISTRY.reload_plugins("algorithm")


def test_plugin_never_shadows_builtin(monkeypatch):
    class _Impostor:
        name = "lazy"

        @staticmethod
        def load():  # pragma: no cover - must not be called
            raise AssertionError("builtin should shadow the plugin")

    monkeypatch.setattr(
        "repro.registry._iter_entry_points",
        lambda group: (
            [_Impostor] if group == "flexsnoop.algorithms" else []
        ),
    )
    REGISTRY.reload_plugins("algorithm")
    try:
        entry = REGISTRY.get("algorithm", "lazy")
        assert entry.source == "builtin"
    finally:
        REGISTRY.reload_plugins("algorithm")


def test_iter_entry_points_returns_list():
    # The real seam tolerates whatever importlib.metadata provides.
    assert isinstance(_iter_entry_points("flexsnoop.algorithms"), list)

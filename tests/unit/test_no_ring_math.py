"""Lint: ring-successor arithmetic lives only in ``repro.ring``.

The topology refactor's contract is that ``(i + 1) % N`` - the
hardwired single-ring successor step - is written down exactly once,
in :func:`repro.ring.topology.ring_successors`, and every other layer
(walker, fused cores, auditor, harness) consumes successor/latency
tables or the :class:`~repro.ring.topology.SnoopTopology` interface.
This test greps the source tree so a future edit cannot quietly leak
the arithmetic back into a consumer.

Home-node interleaving (``address % num_cmps`` in the memory model
and the fused cores) is *memory-map* math, not ring math - the home
of a line does not depend on the snoop topology - so address-based
modulo is explicitly allowed.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The one module allowed to spell ring-successor arithmetic.
ALLOWED = SRC / "ring" / "topology.py"

#: A neighbour step: "+ 1) %" or "- 1) %" against a node-count-ish
#: modulus, e.g. ``(node + 1) % num_cmps`` or ``(i - 1) % n``.
NEIGHBOR_STEP = re.compile(
    r"[+-]\s*1\s*\)\s*%\s*(self\.)?(num_cmps|num_nodes|num_cores|n)\b"
)

#: Node-variable modulo against the machine size, e.g.
#: ``node % num_cmps``.  Address-named operands (the home-interleaving
#: sites) do not match.
NODE_MODULO = re.compile(
    r"\b(node|node_id|cmp|cmp_id|from_node|to_node|upstream|"
    r"downstream|requester|requester_cmp)\s*%\s*(self\.)?"
    r"(num_cmps|num_nodes)\b"
)


def _python_sources():
    for path in sorted(SRC.rglob("*.py")):
        if path == ALLOWED:
            continue
        yield path


def test_no_ring_successor_arithmetic_outside_topology():
    offenders = []
    for path in _python_sources():
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if NEIGHBOR_STEP.search(line) or NODE_MODULO.search(line):
                offenders.append(
                    "%s:%d: %s"
                    % (path.relative_to(SRC.parent), lineno, line.strip())
                )
    assert not offenders, (
        "ring-successor arithmetic leaked outside repro/ring/topology.py "
        "(route through the SnoopTopology interface or its exported "
        "tables instead):\n" + "\n".join(offenders)
    )


def test_the_allowed_module_still_owns_the_arithmetic():
    # Guards the lint itself: if the canonical spelling moves, the
    # ALLOWED path above must follow it.
    text = ALLOWED.read_text(encoding="utf-8")
    assert "(node + 1) % num_nodes" in text

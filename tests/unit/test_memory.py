"""Unit tests for the main-memory model."""

from __future__ import annotations

from repro.config import MemoryConfig
from repro.sim.memory import MainMemory


def memory(**kwargs):
    return MainMemory(MemoryConfig(**kwargs), num_nodes=8)


def test_home_interleaving():
    m = memory()
    assert m.home_of(0) == 0
    assert m.home_of(9) == 1
    assert m.home_of(15) == 7


def test_local_latency():
    m = memory()
    assert m.read_latency(requester=3, address=3, prefetched=False) == 350
    # Prefetch flag is irrelevant for local accesses.
    assert m.read_latency(requester=3, address=3, prefetched=True) == 350


def test_remote_latency_with_and_without_prefetch():
    m = memory()
    assert m.read_latency(requester=0, address=3, prefetched=False) == 710
    assert m.read_latency(requester=0, address=3, prefetched=True) == 312


def test_prefetch_disabled_by_config():
    m = memory(prefetch_on_snoop=False)
    assert m.read_latency(requester=0, address=3, prefetched=True) == 710


def test_versions_updated_by_writeback():
    m = memory()
    assert m.read(5) == 0
    m.writeback(5, version=9)
    assert m.read(5) == 9
    assert m.version_of(5) == 9


def test_stale_writeback_does_not_regress_version():
    m = memory()
    m.writeback(5, version=9)
    m.writeback(5, version=4)  # late, older data
    assert m.version_of(5) == 9


def test_counters():
    m = memory()
    m.read(1)
    m.read(2)
    m.writeback(1, 1)
    m.note_prefetch()
    assert m.reads == 2
    assert m.writebacks == 1
    assert m.prefetches == 1

"""Unit tests for configuration dataclasses and factories."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    DataNetworkConfig,
    MachineConfig,
    NAMED_PREDICTORS,
    PredictorConfig,
    RingConfig,
    TopologyConfig,
    default_machine,
    derive_torus_shape,
)


def test_paper_defaults():
    machine = MachineConfig()
    assert machine.num_cmps == 8
    assert machine.cores_per_cmp == 4
    assert machine.num_cores == 32
    assert machine.ring.hop_latency == 39
    assert machine.ring.snoop_time == 55
    assert machine.ring.num_rings == 2
    assert machine.memory.local_round_trip == 350
    assert machine.memory.remote_round_trip == 710
    assert machine.memory.remote_round_trip_prefetched == 312
    assert machine.cache.num_lines == 8192  # 512 KB / 64 B
    assert machine.energy.ring_link_message == pytest.approx(3.17)
    assert machine.energy.cmp_snoop == pytest.approx(0.69)
    assert machine.energy.memory_line_access == pytest.approx(24.0)


def test_machine_validation():
    with pytest.raises(ValueError):
        MachineConfig(num_cmps=1)
    with pytest.raises(ValueError):
        MachineConfig(cores_per_cmp=0)
    # An explicitly chosen torus shape that is too small still fails.
    with pytest.raises(ValueError):
        MachineConfig(
            num_cmps=16,
            data_network=DataNetworkConfig(torus_shape=(2, 2)),
        )


def test_default_torus_shape_grows_with_machine():
    # The stock 4x2 torus only fits 8 CMPs; larger machines (e.g. a
    # replayed 16-CMP trace shaping the default machine) get a derived
    # near-square shape instead of a validation error.
    machine = MachineConfig(num_cmps=16)
    rows, cols = machine.data_network.torus_shape
    assert (rows, cols) == (4, 4)
    assert MachineConfig(num_cmps=12).data_network.torus_shape == (4, 3)
    # The 8-CMP default keeps the paper's shape bit-for-bit.
    assert MachineConfig().data_network.torus_shape == (4, 2)
    assert derive_torus_shape(10) == (4, 3)
    assert derive_torus_shape(25) == (5, 5)


def test_topology_config_defaults_and_validation():
    machine = MachineConfig()
    assert machine.topology == TopologyConfig()
    assert machine.topology.kind == "ring"
    with pytest.raises(ValueError):
        TopologyConfig(kind="")
    with pytest.raises(ValueError):
        TopologyConfig(local_rings=0)
    with pytest.raises(ValueError):
        TopologyConfig(local_hop_latency=-1)


def test_machine_replace():
    machine = MachineConfig()
    copy = machine.replace(cores_per_cmp=1)
    assert copy.cores_per_cmp == 1
    assert machine.cores_per_cmp == 4  # original untouched


def test_named_predictors_match_paper_section_52():
    assert NAMED_PREDICTORS["Sub512"].entries == 512
    assert NAMED_PREDICTORS["Sub2k"].entries == 2048
    assert NAMED_PREDICTORS["Sub8k"].entries == 8192
    assert NAMED_PREDICTORS["Supy2k"].bloom_fields == (10, 4, 7)
    assert NAMED_PREDICTORS["Supn2k"].bloom_fields == (9, 9, 6)
    assert NAMED_PREDICTORS["Supy512"].exclude_entries == 512
    assert NAMED_PREDICTORS["Exa8k"].kind == "exact"
    assert NAMED_PREDICTORS["Perfect"].kind == "perfect"


def test_default_machine_picks_algorithm_predictor():
    assert default_machine(algorithm="subset").predictor.kind == "subset"
    assert default_machine(
        algorithm="superset_con"
    ).predictor.kind == "superset"
    assert default_machine(algorithm="exact").predictor.entries == 2048
    assert default_machine(algorithm="oracle").predictor.kind == "perfect"
    assert default_machine(algorithm="lazy").predictor.kind == "none"


def test_default_machine_explicit_predictor_overrides():
    machine = default_machine(algorithm="subset", predictor="Sub8k")
    assert machine.predictor.entries == 8192


def test_default_machine_rejects_unknown():
    with pytest.raises(ValueError):
        default_machine(algorithm="bogus")
    with pytest.raises(ValueError):
        default_machine(predictor="bogus")


def test_predictor_with_entries():
    base = PredictorConfig(kind="subset", entries=512)
    grown = base.with_entries(4096)
    assert grown.entries == 4096
    assert grown.kind == "subset"
    assert base.entries == 512


def test_cache_config_sets():
    cache = CacheConfig(num_lines=64, associativity=8)
    assert cache.num_sets == 8


def test_ring_config_frozen():
    ring = RingConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        ring.hop_latency = 10

"""Unit tests for the snooping algorithm policies (Table 3)."""

from __future__ import annotations

import pytest

from repro.config import PredictorConfig
from repro.core.algorithms import (
    ALGORITHMS,
    Eager,
    Exact,
    Lazy,
    Oracle,
    Subset,
    SupersetAgg,
    SupersetCon,
    SupersetHybrid,
    build_algorithm,
    compatible_predictor,
)
from repro.core.primitives import Primitive


def test_lazy_always_snoops_then_forwards():
    algorithm = Lazy()
    assert algorithm.choose(True) is Primitive.SNOOP_THEN_FORWARD
    assert algorithm.choose(False) is Primitive.SNOOP_THEN_FORWARD
    assert not algorithm.uses_predictor()
    assert not algorithm.decouple_writes


def test_eager_always_forwards_then_snoops():
    algorithm = Eager()
    assert algorithm.choose(True) is Primitive.FORWARD_THEN_SNOOP
    assert algorithm.choose(False) is Primitive.FORWARD_THEN_SNOOP
    assert not algorithm.uses_predictor()
    assert algorithm.decouple_writes


def test_oracle_policy():
    algorithm = Oracle()
    assert algorithm.choose(True) is Primitive.SNOOP_THEN_FORWARD
    assert algorithm.choose(False) is Primitive.FORWARD
    assert algorithm.uses_predictor()
    assert algorithm.default_predictor_kind == "perfect"


def test_subset_policy_matches_table3():
    algorithm = Subset()
    # Positive: supplier guaranteed local -> Snoop Then Forward.
    assert algorithm.choose(True) is Primitive.SNOOP_THEN_FORWARD
    # Negative: may be a false negative -> must still snoop.
    assert algorithm.choose(False) is Primitive.FORWARD_THEN_SNOOP
    assert algorithm.decouple_writes


def test_superset_con_policy_matches_table3():
    algorithm = SupersetCon()
    assert algorithm.choose(True) is Primitive.SNOOP_THEN_FORWARD
    assert algorithm.choose(False) is Primitive.FORWARD
    assert not algorithm.decouple_writes


def test_superset_agg_policy_matches_table3():
    algorithm = SupersetAgg()
    assert algorithm.choose(True) is Primitive.FORWARD_THEN_SNOOP
    assert algorithm.choose(False) is Primitive.FORWARD
    assert algorithm.decouple_writes


def test_exact_policy_matches_table3():
    algorithm = Exact()
    assert algorithm.choose(True) is Primitive.SNOOP_THEN_FORWARD
    assert algorithm.choose(False) is Primitive.FORWARD
    assert not algorithm.decouple_writes


def test_hybrid_defaults_to_aggressive():
    algorithm = SupersetHybrid()
    assert algorithm.choose(True) is Primitive.FORWARD_THEN_SNOOP
    assert algorithm.choose(False) is Primitive.FORWARD
    assert algorithm.aggressive_choices == 1


def test_hybrid_switches_under_energy_pressure():
    pressed = {"value": False}
    algorithm = SupersetHybrid(energy_pressure=lambda: pressed["value"])
    assert algorithm.choose(True) is Primitive.FORWARD_THEN_SNOOP
    pressed["value"] = True
    assert algorithm.choose(True) is Primitive.SNOOP_THEN_FORWARD
    assert algorithm.conservative_choices == 1
    assert algorithm.aggressive_choices == 1


def test_registry_contains_all_algorithms():
    assert set(ALGORITHMS) == {
        "lazy",
        "eager",
        "oracle",
        "subset",
        "superset_con",
        "superset_agg",
        "superset_hybrid",
        "exact",
        "criticality",
    }


@pytest.mark.parametrize(
    "name,cls",
    [
        ("lazy", Lazy),
        ("EAGER", Eager),
        ("SupersetCon", SupersetCon),
        ("supagg", SupersetAgg),
        ("superset_hybrid", SupersetHybrid),
    ],
)
def test_build_algorithm_aliases(name, cls):
    assert isinstance(build_algorithm(name), cls)


def test_build_algorithm_unknown():
    with pytest.raises(ValueError):
        build_algorithm("nonexistent")


def test_compatible_predictor_guards_false_negatives():
    # Algorithms that Forward on negative need FN-free predictors.
    superset_config = PredictorConfig(kind="superset")
    subset_config = PredictorConfig(kind="subset")
    assert compatible_predictor(SupersetCon(), superset_config)
    assert not compatible_predictor(SupersetCon(), subset_config)
    assert compatible_predictor(Exact(), PredictorConfig(kind="exact"))
    assert not compatible_predictor(Oracle(), subset_config)
    # Subset snoops on negative, so a subset predictor is fine.
    assert compatible_predictor(Subset(), subset_config)
    # Lazy/Eager never filter, any predictor is safe.
    assert compatible_predictor(Lazy(), subset_config)
    assert compatible_predictor(Eager(), subset_config)

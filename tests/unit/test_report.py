"""Unit tests for the report generator."""

from __future__ import annotations

import pytest

from repro.harness.experiments import ExperimentMatrix
from repro.harness.report import ascii_bar, bar_chart, render_report


def test_ascii_bar_scaling():
    assert ascii_bar(0.0, 1.0, width=10) == ""
    assert ascii_bar(1.0, 1.0, width=10) == "#" * 10
    assert ascii_bar(0.5, 1.0, width=10) == "#" * 5
    assert ascii_bar(2.0, 1.0, width=10) == "#" * 10  # clamped


def test_ascii_bar_zero_max():
    assert ascii_bar(1.0, 0.0) == ""


def test_bar_chart_layout():
    table = {
        "specjbb": {"lazy": 1.0, "eager": 2.0},
        "specweb": {"lazy": 1.0, "eager": 1.8},
    }
    text = bar_chart("demo", table)
    assert "demo" in text
    assert "[specjbb]" in text and "[specweb]" in text
    lines = text.splitlines()
    eager_line = next(
        line for line in lines if "eager" in line and "2.00" in line
    )
    lazy_line = next(
        line for line in lines if "lazy" in line and "[specjbb]" not in line
    )
    assert eager_line.count("#") > lazy_line.count("#")


@pytest.fixture(scope="module")
def tiny_matrix():
    return ExperimentMatrix(
        accesses_per_core=150,
        algorithms=("lazy", "eager", "superset_con", "superset_agg"),
        workloads=("specjbb",),
    )


def test_render_report_contains_all_sections(tiny_matrix):
    text = render_report(tiny_matrix, figures=[6, 7, 8, 9])
    assert "Figure 6" in text
    assert "Figure 7" in text
    assert "Figure 8" in text
    assert "Figure 9" in text
    assert "Headline" in text
    assert "Figure 10" not in text


def test_render_report_figure_selection(tiny_matrix):
    text = render_report(tiny_matrix, figures=[6])
    assert "Figure 6" in text
    assert "Figure 7" not in text


def test_report_is_cached_and_cheap(tiny_matrix):
    first = render_report(tiny_matrix, figures=[6])
    second = render_report(tiny_matrix, figures=[6])
    assert first == second

"""Unit tests for the protocol transition rules and the global
invariant checker."""

from __future__ import annotations

import pytest

from repro.coherence.protocol import (
    CoherenceError,
    ProtocolTables,
    downgrade_state,
    local_reader_state,
    requester_state_from_cache,
    requester_state_from_memory,
    supplier_next_state_on_read,
    writer_state,
)
from repro.coherence.states import LineState


# ----------------------------------------------------------------------
# Supplier transitions on read


def test_sg_supplier_keeps_global_mastership():
    assert supplier_next_state_on_read(LineState.SG) is LineState.SG


def test_exclusive_supplier_becomes_global_master():
    assert supplier_next_state_on_read(LineState.E) is LineState.SG


def test_dirty_supplier_becomes_tagged():
    assert supplier_next_state_on_read(LineState.D) is LineState.T


def test_tagged_supplier_stays_tagged():
    assert supplier_next_state_on_read(LineState.T) is LineState.T


@pytest.mark.parametrize(
    "state", [LineState.I, LineState.S, LineState.SL]
)
def test_non_suppliers_cannot_supply(state):
    with pytest.raises(CoherenceError):
        supplier_next_state_on_read(state)


# ----------------------------------------------------------------------
# Requester states


def test_requester_from_cache_becomes_local_master():
    assert requester_state_from_cache() is LineState.SL


def test_requester_from_memory():
    assert requester_state_from_memory(False) is LineState.E
    assert requester_state_from_memory(True) is LineState.SG


def test_local_reader_gets_plain_shared():
    assert local_reader_state() is LineState.S


def test_writer_gets_dirty():
    assert writer_state() is LineState.D


# ----------------------------------------------------------------------
# Exact downgrades (Section 4.3.3)


def test_downgrade_clean_suppliers_silent():
    for state in (LineState.SG, LineState.E):
        new_state, needs_writeback = downgrade_state(state)
        assert new_state is LineState.SL
        assert not needs_writeback


def test_downgrade_dirty_suppliers_write_back():
    for state in (LineState.D, LineState.T):
        new_state, needs_writeback = downgrade_state(state)
        assert new_state is LineState.SL
        assert needs_writeback


def test_downgrade_non_supplier_rejected():
    with pytest.raises(CoherenceError):
        downgrade_state(LineState.S)


# ----------------------------------------------------------------------
# Global snapshot checking


def test_single_supplier_snapshot_ok():
    ProtocolTables.check_line(
        {
            (0, 0): LineState.SG,
            (1, 0): LineState.SL,
            (2, 0): LineState.S,
        }
    )


def test_two_suppliers_rejected():
    with pytest.raises(CoherenceError):
        ProtocolTables.check_line(
            {(0, 0): LineState.SG, (1, 0): LineState.E}
        )


def test_two_local_masters_same_cmp_rejected():
    with pytest.raises(CoherenceError):
        ProtocolTables.check_line(
            {(0, 0): LineState.SL, (0, 1): LineState.SL}
        )


def test_local_masters_different_cmps_ok():
    ProtocolTables.check_line(
        {(0, 0): LineState.SL, (1, 0): LineState.SL, (2, 0): LineState.T}
    )


def test_exclusive_with_sharer_rejected():
    with pytest.raises(CoherenceError):
        ProtocolTables.check_line(
            {(0, 0): LineState.E, (1, 0): LineState.S}
        )


def test_dirty_alone_ok():
    ProtocolTables.check_line({(3, 1): LineState.D})


def test_tagged_with_shared_copies_ok():
    ProtocolTables.check_line(
        {
            (0, 0): LineState.T,
            (0, 1): LineState.S,
            (1, 0): LineState.SL,
        }
    )


def test_is_consistent_boolean_form():
    assert ProtocolTables.is_consistent({(0, 0): LineState.D})
    assert not ProtocolTables.is_consistent(
        {(0, 0): LineState.D, (1, 0): LineState.S}
    )

"""Unit tests for the ring message model."""

from __future__ import annotations

from repro.ring.messages import MessageMode, RingMessage, SnoopKind


def make_message(**kwargs):
    defaults = dict(
        transaction_id=7,
        kind=SnoopKind.READ,
        address=0x40,
        requester=2,
    )
    defaults.update(kwargs)
    return RingMessage(**defaults)


def test_initial_state_is_combined():
    message = make_message()
    assert message.mode is MessageMode.COMBINED
    assert message.reply_time is None
    assert not message.satisfied
    assert not message.satisfied_reply
    assert message.supplier is None


def test_split_and_recombine():
    message = make_message()
    message.split(reply_departure=150)
    assert message.mode is MessageMode.SPLIT
    assert message.reply_time == 150
    message.recombine()
    assert message.mode is MessageMode.COMBINED
    assert message.reply_time is None


def test_mark_satisfied_combined():
    message = make_message()
    message.mark_satisfied_combined(supplier=5)
    assert message.satisfied
    assert message.satisfied_reply
    assert message.supplier == 5


def test_mark_satisfied_reply_only_keeps_request_live():
    message = make_message()
    message.mark_satisfied_reply_only(supplier=5)
    assert not message.satisfied  # request still induces actions
    assert message.satisfied_reply
    assert message.supplier == 5


def test_total_hops():
    message = make_message()
    message.hops_request = 8
    message.hops_reply = 7
    assert message.total_hops == 15


def test_kinds():
    read = make_message(kind=SnoopKind.READ)
    write = make_message(kind=SnoopKind.WRITE)
    assert read.kind is SnoopKind.READ
    assert write.kind is SnoopKind.WRITE

"""The array-image export seam used by the compiled-kernel core.

``WarmupController.export_cache_image`` (object core) and
``SoaRingMultiprocessor.export_cache_image`` (SoA/jit cores) must
describe the same construction-time prewarm state in the same
integer-coded format: if the images diverge, the jit kernel starts
from a different machine than the object core and bit-identical
summaries are impossible.  Diffing the images directly localizes such
a failure to the seam instead of to a full-run summary mismatch.
"""

from __future__ import annotations

import pytest

from repro.config import default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.soa import SoaRingMultiprocessor
from repro.sim.system import RingMultiprocessor
from repro.workloads.source import SyntheticSource
from repro.workloads.synthetic import SharingProfile


def _image(core) -> dict:
    image = {}
    for core_id, set_index, addresses, states in core.export_cache_image():
        assert len(addresses) == len(states)
        assert addresses, "empty sets must not be yielded"
        image[(core_id, set_index)] = (list(addresses), list(states))
    return image


@pytest.mark.parametrize("algorithm", ["lazy", "exact", "superset_con"])
@pytest.mark.parametrize("prewarm", [0.0, 0.5])
def test_object_and_soa_images_agree(algorithm, prewarm):
    profile = SharingProfile(
        name="seam",
        num_cores=4,
        cores_per_cmp=2,
        accesses_per_core=60,
        prewarm_fraction=prewarm,
        seed=11,
    )
    machine = default_machine(
        algorithm=algorithm, cores_per_cmp=2, num_cmps=2
    )
    object_core = RingMultiprocessor(
        machine, build_algorithm(algorithm), SyntheticSource(profile)
    )
    soa_core = SoaRingMultiprocessor(
        machine, build_algorithm(algorithm), SyntheticSource(profile)
    )
    object_image = _image(object_core.warmup)
    soa_image = _image(soa_core)
    assert object_image == soa_image
    if prewarm > 0.0:
        assert object_image, "prewarmed machines must export lines"


def test_soa_image_covers_pending_and_materialized_sets():
    """The memo-restore path keeps prewarm content in lazy pending
    arrays; a second construction of the same workload must export the
    identical image it did when the sets were walked eagerly."""
    profile = SharingProfile(
        name="seam-memo",
        num_cores=4,
        cores_per_cmp=1,
        accesses_per_core=60,
        prewarm_fraction=0.5,
        seed=7,
    )
    machine = default_machine(algorithm="lazy", cores_per_cmp=1, num_cmps=4)
    first = SoaRingMultiprocessor(
        machine, build_algorithm("lazy"), SyntheticSource(profile)
    )
    second = SoaRingMultiprocessor(
        machine, build_algorithm("lazy"), SyntheticSource(profile)
    )
    assert _image(first) == _image(second)

"""Unit tests for the core replay model."""

from __future__ import annotations

from repro.sim.processor import Core, build_cores
from repro.workloads.trace import Access


def make_trace(n=3):
    return [Access(address=i, is_write=False, think_time=5) for i in
            range(n)]


def test_build_cores_assigns_cmp_and_local_ids():
    cores = build_cores([make_trace() for _ in range(8)],
                        cores_per_cmp=4)
    assert len(cores) == 8
    assert cores[0].cmp_id == 0 and cores[0].local_id == 0
    assert cores[3].cmp_id == 0 and cores[3].local_id == 3
    assert cores[4].cmp_id == 1 and cores[4].local_id == 0
    assert cores[7].cmp_id == 1 and cores[7].local_id == 3


def test_core_advance_and_done():
    core = Core(core_id=0, cmp_id=0, local_id=0, trace=make_trace(2))
    assert not core.done
    assert core.current_access.address == 0
    core.advance()
    assert core.current_access.address == 1
    core.advance()
    assert core.done


def test_core_empty_trace_is_done():
    core = Core(core_id=0, cmp_id=0, local_id=0, trace=[])
    assert core.done


def test_stall_accounting():
    core = Core(core_id=0, cmp_id=0, local_id=0, trace=make_trace())
    core.block(100)
    core.unblock(160)
    assert core.stall_cycles == 60
    core.block(200)
    core.unblock(230)
    assert core.stall_cycles == 90
    # Unblock without block is a no-op.
    core.unblock(500)
    assert core.stall_cycles == 90

"""Unit tests for the Supplier Predictors (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.config import PredictorConfig
from repro.core.predictors import (
    CountingBloomFilter,
    ExactPredictor,
    NullPredictor,
    PerfectPredictor,
    SubsetPredictor,
    SupersetPredictor,
    build_predictor,
)


# ----------------------------------------------------------------------
# Factory / config


def test_build_predictor_dispatch():
    assert isinstance(
        build_predictor(PredictorConfig(kind="none")), NullPredictor
    )
    assert isinstance(
        build_predictor(PredictorConfig(kind="subset")), SubsetPredictor
    )
    assert isinstance(
        build_predictor(PredictorConfig(kind="superset")), SupersetPredictor
    )
    assert isinstance(
        build_predictor(PredictorConfig(kind="exact")), ExactPredictor
    )
    assert isinstance(
        build_predictor(PredictorConfig(kind="perfect")), PerfectPredictor
    )


def test_invalid_predictor_kind_rejected():
    with pytest.raises(ValueError):
        PredictorConfig(kind="magic")


# ----------------------------------------------------------------------
# Null predictor


def test_null_predictor_always_positive_and_free():
    predictor = NullPredictor(PredictorConfig(kind="none"))
    assert predictor.lookup(123)
    assert predictor.latency == 0
    predictor.insert(1)
    predictor.remove(1)
    assert predictor.lookup(1)


# ----------------------------------------------------------------------
# Subset predictor


def subset(entries=64, assoc=8):
    return SubsetPredictor(
        PredictorConfig(kind="subset", entries=entries, associativity=assoc)
    )


def test_subset_tracks_inserted_lines():
    predictor = subset()
    predictor.insert(10)
    assert predictor.lookup(10)
    assert not predictor.lookup(11)


def test_subset_remove_is_idempotent():
    predictor = subset()
    predictor.insert(10)
    predictor.remove(10)
    predictor.remove(10)  # no error
    assert not predictor.lookup(10)


def test_subset_no_false_positives_under_conflicts():
    """Every positive lookup must correspond to a tracked line."""
    predictor = subset(entries=16, assoc=2)
    live = set()
    for address in range(100):
        predictor.insert(address)
        live.add(address)
    # Conflict drops create false negatives, never false positives:
    for address in range(200):
        if predictor.lookup(address):
            assert address in live


def test_subset_conflict_drop_creates_false_negative():
    predictor = subset(entries=4, assoc=2)  # 2 sets, 2 ways
    # Addresses 0, 2, 4 map to set 0 (address % 2 == 0).
    predictor.insert(0)
    predictor.insert(2)
    predictor.insert(4)  # evicts 0 silently
    assert predictor.conflict_drops == 1
    assert not predictor.lookup(0)  # false negative
    assert predictor.lookup(2) and predictor.lookup(4)


def test_subset_lookup_counts():
    predictor = subset()
    predictor.lookup(1)
    predictor.lookup(2)
    assert predictor.lookups == 2
    predictor.insert(1)
    predictor.remove(1)
    assert predictor.updates == 2


# ----------------------------------------------------------------------
# Counting Bloom filter


def test_bloom_membership():
    bloom = CountingBloomFilter((4, 4, 4))
    bloom.add(0x123)
    assert bloom.query(0x123)
    bloom.discard(0x123)
    assert not bloom.query(0x123)


def test_bloom_no_false_negatives():
    bloom = CountingBloomFilter((6, 6))
    addresses = [i * 37 for i in range(200)]
    for address in addresses:
        bloom.add(address)
    for address in addresses:
        assert bloom.query(address)


def test_bloom_counts_duplicates():
    bloom = CountingBloomFilter((4,))
    bloom.add(5)
    bloom.add(5)
    bloom.discard(5)
    assert bloom.query(5)  # one reference remains
    bloom.discard(5)
    assert not bloom.query(5)


def test_bloom_underflow_raises():
    bloom = CountingBloomFilter((4,))
    with pytest.raises(ValueError):
        bloom.discard(1)


def test_bloom_aliasing_false_positive():
    # One 2-bit field: addresses 0 and 4 share counter index 0.
    bloom = CountingBloomFilter((2,))
    bloom.add(0)
    assert bloom.query(4)  # alias - false positive by construction


def test_bloom_field_geometry():
    bloom = CountingBloomFilter((10, 4, 7))  # the paper's y filter
    assert bloom.total_counters == 1024 + 16 + 128


# ----------------------------------------------------------------------
# Superset predictor


def superset(exclude_entries=16, fields=(4, 4)):
    return SupersetPredictor(
        PredictorConfig(
            kind="superset",
            bloom_fields=fields,
            exclude_entries=exclude_entries,
            exclude_associativity=4,
        )
    )


def test_superset_no_false_negatives():
    predictor = superset()
    addresses = [i * 13 for i in range(64)]
    for address in addresses:
        predictor.insert(address)
    for address in addresses:
        assert predictor.lookup(address), address


def test_superset_remove_idempotent():
    predictor = superset()
    predictor.insert(7)
    predictor.remove(7)
    predictor.remove(7)  # must not underflow the Bloom counters
    assert not predictor.lookup(7)


def test_superset_exclude_cache_masks_false_positive():
    predictor = superset(fields=(2,))
    predictor.insert(0)  # counter index 0
    assert predictor.lookup(4)  # alias -> false positive
    predictor.observe_false_positive(4)
    assert not predictor.lookup(4)  # Exclude cache hit masks it
    assert predictor.exclude_hits == 1


def test_superset_insert_invalidates_exclude_entry():
    predictor = superset(fields=(2,))
    predictor.insert(0)
    predictor.observe_false_positive(4)
    assert not predictor.lookup(4)
    predictor.insert(4)  # 4 becomes a genuine supplier line
    assert predictor.lookup(4)  # the stale Exclude entry must not hide it


def test_superset_without_exclude_cache():
    predictor = SupersetPredictor(
        PredictorConfig(kind="superset", bloom_fields=(4,),
                        exclude_entries=0)
    )
    predictor.insert(3)
    assert predictor.lookup(3)
    predictor.observe_false_positive(9)  # no-op without Exclude cache
    assert predictor.exclude is None


# ----------------------------------------------------------------------
# Exact predictor


def exact(entries=4, assoc=2, callback=None):
    predictor = ExactPredictor(
        PredictorConfig(kind="exact", entries=entries, associativity=assoc)
    )
    if callback is not None:
        predictor.set_downgrade_callback(callback)
    return predictor


def test_exact_behaves_like_subset_without_conflicts():
    predictor = exact(entries=64, assoc=8)
    predictor.insert(5)
    assert predictor.lookup(5)
    predictor.remove(5)
    assert not predictor.lookup(5)


def test_exact_conflict_triggers_downgrade_callback():
    downgraded = []
    predictor = exact(entries=4, assoc=2, callback=downgraded.append)
    predictor.insert(0)
    predictor.insert(2)
    predictor.insert(4)  # set 0 full -> victim 0 downgraded
    assert downgraded == [0]
    assert predictor.downgrades == 1
    # The victim is gone: no false positive for it.
    assert not predictor.lookup(0)


def test_exact_downgrade_callback_may_reenter_remove():
    predictor = exact(entries=4, assoc=2)
    # Simulates the cache-state-loss callback chain: the downgrade
    # removes the victim from the predictor again.
    predictor.set_downgrade_callback(predictor.remove)
    predictor.insert(0)
    predictor.insert(2)
    predictor.insert(4)
    assert predictor.lookup(2) and predictor.lookup(4)
    assert not predictor.lookup(0)


# ----------------------------------------------------------------------
# Perfect predictor


def test_perfect_predictor_uses_truth():
    predictor = PerfectPredictor(
        PredictorConfig(kind="perfect"), truth=lambda a: a % 2 == 0
    )
    assert predictor.lookup(4)
    assert not predictor.lookup(5)
    assert predictor.latency == 0


def test_perfect_predictor_requires_truth():
    predictor = PerfectPredictor(PredictorConfig(kind="perfect"))
    with pytest.raises(RuntimeError):
        predictor.lookup(1)

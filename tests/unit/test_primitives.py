"""Unit tests for the Table 2 primitive semantics."""

from __future__ import annotations

import pytest

from repro.core.primitives import Primitive, apply_primitive
from repro.ring.messages import MessageMode, RingMessage, SnoopKind

SNOOP = 55
PRED = 2


def make_message(mode=MessageMode.COMBINED, reply_time=None):
    message = RingMessage(
        transaction_id=1,
        kind=SnoopKind.READ,
        address=0x10,
        requester=0,
        mode=mode,
        reply_time=reply_time,
    )
    return message


def apply(message, primitive, now=100, supplier=False, pred=PRED):
    return apply_primitive(
        message,
        primitive,
        now=now,
        snoop_time=SNOOP,
        predictor_latency=pred,
        node_is_supplier=supplier,
        node=3,
    )


# ----------------------------------------------------------------------
# FORWARD


def test_forward_combined_passes_through():
    message = make_message()
    outcome = apply(message, Primitive.FORWARD)
    assert outcome.request_departure == 100 + PRED
    assert outcome.reply_departure is None
    assert not outcome.snooped
    assert message.mode is MessageMode.COMBINED


def test_forward_split_passes_both_forms():
    message = make_message(MessageMode.SPLIT, reply_time=90)
    outcome = apply(message, Primitive.FORWARD)
    assert outcome.request_departure == 102
    assert outcome.reply_departure == 90
    assert message.mode is MessageMode.SPLIT


def test_forward_never_supplies():
    message = make_message()
    outcome = apply(message, Primitive.FORWARD, supplier=True)
    assert not outcome.supplied  # caller must prevent this combination


# ----------------------------------------------------------------------
# SNOOP_THEN_FORWARD


def test_stf_combined_non_supplier_delays_request():
    message = make_message()
    outcome = apply(message, Primitive.SNOOP_THEN_FORWARD)
    assert outcome.snooped
    assert outcome.snoop_done == 100 + PRED + SNOOP
    assert outcome.request_departure == outcome.snoop_done
    assert outcome.reply_departure is None
    assert message.mode is MessageMode.COMBINED
    assert not message.satisfied


def test_stf_supplier_marks_combined_satisfied():
    message = make_message()
    outcome = apply(message, Primitive.SNOOP_THEN_FORWARD, supplier=True)
    assert outcome.supplied
    assert message.satisfied
    assert message.satisfied_reply
    assert message.supplier == 3
    assert message.mode is MessageMode.COMBINED
    assert outcome.request_departure == 100 + PRED + SNOOP


def test_stf_split_waits_for_trailing_reply():
    # Reply arrives later than the snoop completes.
    message = make_message(MessageMode.SPLIT, reply_time=400)
    outcome = apply(message, Primitive.SNOOP_THEN_FORWARD)
    assert outcome.request_departure == 400  # max(157, 400)
    assert message.mode is MessageMode.COMBINED  # recombined


def test_stf_split_snoop_slower_than_reply():
    message = make_message(MessageMode.SPLIT, reply_time=110)
    outcome = apply(message, Primitive.SNOOP_THEN_FORWARD)
    assert outcome.request_departure == 100 + PRED + SNOOP


def test_stf_split_discards_reply_when_supplying():
    message = make_message(MessageMode.SPLIT, reply_time=500)
    outcome = apply(message, Primitive.SNOOP_THEN_FORWARD, supplier=True)
    # The supplier does not wait for the trailing reply: it sends the
    # satisfied combined R/R at snoop completion and discards the
    # reply when it shows up.
    assert outcome.request_departure == 100 + PRED + SNOOP
    assert message.mode is MessageMode.COMBINED
    assert message.satisfied


def test_stf_merging_satisfied_trailing_reply():
    # An upstream FTS supplier put the positive outcome in the
    # trailing reply; an STF node downstream recombines and the result
    # must be a satisfied (reply) message.
    message = make_message(MessageMode.SPLIT, reply_time=120)
    message.satisfied_reply = True
    message.supplier = 1
    apply(message, Primitive.SNOOP_THEN_FORWARD)
    assert message.satisfied
    assert message.mode is MessageMode.COMBINED


# ----------------------------------------------------------------------
# FORWARD_THEN_SNOOP


def test_fts_combined_splits_message():
    message = make_message()
    outcome = apply(message, Primitive.FORWARD_THEN_SNOOP)
    assert outcome.request_departure == 100 + PRED  # not delayed by snoop
    assert outcome.reply_departure == 100 + PRED + SNOOP
    assert message.mode is MessageMode.SPLIT
    assert message.reply_time == outcome.reply_departure


def test_fts_split_merges_replies():
    message = make_message(MessageMode.SPLIT, reply_time=300)
    outcome = apply(message, Primitive.FORWARD_THEN_SNOOP)
    assert outcome.request_departure == 102
    assert outcome.reply_departure == 300  # max(157, 300)


def test_fts_supplier_satisfies_reply_only():
    message = make_message()
    outcome = apply(message, Primitive.FORWARD_THEN_SNOOP, supplier=True)
    assert outcome.supplied
    # The request racing ahead must stay live so downstream nodes keep
    # acting on it (this is why Eager snoops all N-1 nodes).
    assert not message.satisfied
    assert message.satisfied_reply
    assert message.supplier == 3
    assert message.mode is MessageMode.SPLIT


def test_fts_preserves_upstream_positive_outcome():
    message = make_message(MessageMode.SPLIT, reply_time=120)
    message.satisfied_reply = True
    message.supplier = 1
    apply(message, Primitive.FORWARD_THEN_SNOOP)
    assert message.satisfied_reply
    assert message.supplier == 1
    assert not message.satisfied


# ----------------------------------------------------------------------
# Primitive properties


def test_primitive_snoop_property():
    assert Primitive.FORWARD_THEN_SNOOP.snoops
    assert Primitive.SNOOP_THEN_FORWARD.snoops
    assert not Primitive.FORWARD.snoops


def test_zero_predictor_latency():
    message = make_message()
    outcome = apply(message, Primitive.SNOOP_THEN_FORWARD, pred=0)
    assert outcome.request_departure == 100 + SNOOP

"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import EventEngine


def test_events_fire_in_time_order():
    engine = EventEngine()
    fired = []
    engine.schedule(30, lambda: fired.append("c"))
    engine.schedule(10, lambda: fired.append("a"))
    engine.schedule(20, lambda: fired.append("b"))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_scheduling_order():
    engine = EventEngine()
    fired = []
    for label in ("first", "second", "third"):
        engine.schedule(5, lambda label=label: fired.append(label))
    engine.run()
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    engine = EventEngine()
    seen = []
    engine.schedule(42, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [42]
    assert engine.now == 42


def test_schedule_at_absolute_time():
    engine = EventEngine()
    seen = []
    engine.schedule_at(100, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [100]


def test_schedule_in_past_rejected():
    engine = EventEngine()
    engine.schedule(10, lambda: None)
    engine.step()
    with pytest.raises(ValueError):
        engine.schedule_at(5, lambda: None)
    with pytest.raises(ValueError):
        engine.schedule(-1, lambda: None)


def test_nested_scheduling_from_callback():
    engine = EventEngine()
    fired = []

    def outer():
        fired.append(("outer", engine.now))
        engine.schedule(5, lambda: fired.append(("inner", engine.now)))

    engine.schedule(10, outer)
    engine.run()
    assert fired == [("outer", 10), ("inner", 15)]


def test_cancelled_events_do_not_fire():
    engine = EventEngine()
    fired = []
    event = engine.schedule(10, lambda: fired.append("cancelled"))
    engine.schedule(20, lambda: fired.append("kept"))
    event.cancel()
    engine.run()
    assert fired == ["kept"]


def test_run_until_stops_before_later_events():
    engine = EventEngine()
    fired = []
    engine.schedule(10, lambda: fired.append(10))
    engine.schedule(50, lambda: fired.append(50))
    engine.run(until=20)
    assert fired == [10]
    assert engine.pending == 1
    engine.run()
    assert fired == [10, 50]


def test_max_events_limit():
    engine = EventEngine()
    count = []
    for _ in range(10):
        engine.schedule(1, lambda: count.append(1))
    processed = engine.run(max_events=3)
    assert processed == 3
    assert len(count) == 3


def test_peek_time_skips_cancelled():
    engine = EventEngine()
    first = engine.schedule(5, lambda: None)
    engine.schedule(9, lambda: None)
    first.cancel()
    assert engine.peek_time() == 9


def test_events_processed_counter():
    engine = EventEngine()
    for delay in (1, 2, 3):
        engine.schedule(delay, lambda: None)
    engine.run()
    assert engine.events_processed == 3


def test_step_returns_false_when_empty():
    engine = EventEngine()
    assert engine.step() is False


def test_deterministic_interleaving_with_nested_events():
    def run_once():
        engine = EventEngine()
        order = []

        def chain(n):
            order.append(n)
            if n < 5:
                engine.schedule(n + 1, lambda: chain(n + 1))

        engine.schedule(0, lambda: chain(0))
        engine.schedule(3, lambda: order.append(100))
        engine.run()
        return order

    assert run_once() == run_once()
